#include "workload/trace_io.h"

#include <bit>
#include <cerrno>
#include <charconv>
#include <cinttypes>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <type_traits>

#include "common/check.h"
#include "obs/metrics.h"

namespace costream::workload {

namespace {

using dsps::OperatorDescriptor;
using dsps::OperatorType;

constexpr char kHeader[] = "#costream-traces v1";

// --- observability -----------------------------------------------------------

obs::Counter& SaveRecordsCounter() {
  static obs::Counter& c = obs::GetCounter("workload.trace.records_written");
  return c;
}
obs::Counter& SaveBytesCounter() {
  static obs::Counter& c = obs::GetCounter("workload.trace.bytes_written");
  return c;
}
obs::Counter& LoadRecordsCounter() {
  static obs::Counter& c = obs::GetCounter("workload.trace.records_read");
  return c;
}
obs::Counter& LoadBytesCounter() {
  static obs::Counter& c = obs::GetCounter("workload.trace.bytes_read");
  return c;
}
obs::Histogram& SaveLatency() {
  static obs::Histogram& h = obs::GetHistogram("workload.trace.save_us");
  return h;
}
obs::Histogram& LoadLatency() {
  static obs::Histogram& h = obs::GetHistogram("workload.trace.load_us");
  return h;
}

// --- v1 text format ----------------------------------------------------------

void WriteOperator(std::ostream& os, int id, const OperatorDescriptor& op) {
  os << "op " << id << ' ' << static_cast<int>(op.type)
     << " win=" << op.tuple_width_in << " wout=" << op.tuple_width_out
     << " rate=" << op.input_event_rate
     << " ff=" << static_cast<int>(op.filter_function)
     << " lit=" << static_cast<int>(op.literal_data_type)
     << " wt=" << static_cast<int>(op.window.type)
     << " wp=" << static_cast<int>(op.window.policy)
     << " wsz=" << op.window.size << " wsl=" << op.window.slide
     << " af=" << static_cast<int>(op.aggregate_function)
     << " gb=" << static_cast<int>(op.group_by_type)
     << " at=" << static_cast<int>(op.aggregate_data_type)
     << " jk=" << static_cast<int>(op.join_key_type)
     << " par=" << op.parallelism << " sel=" << op.selectivity
     << " fi=" << op.frac_int
     << " fd=" << op.frac_double << " fs=" << op.frac_string << " types=";
  for (size_t i = 0; i < op.tuple_data_types.size(); ++i) {
    if (i > 0) os << ',';
    os << static_cast<int>(op.tuple_data_types[i]);
  }
  if (op.tuple_data_types.empty()) os << '-';
  os << '\n';
}

// Parses "key=value" into the value part; aborts the record on mismatch.
bool ConsumeKey(std::istringstream& is, const char* key, std::string* value) {
  std::string token;
  if (!(is >> token)) return false;
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) return false;
  *value = token.substr(prefix.size());
  return true;
}

// Parses the whole value token into T; rejects trailing garbage ("3x"),
// fractional text for integral fields ("3.7"), and out-of-range values.
// Integral fields go through int64_t rather than double so values above
// 2^53 are not silently rounded.
template <typename T>
bool ConsumeNumeric(std::istringstream& is, const char* key, T* out) {
  std::string value;
  if (!ConsumeKey(is, key, &value)) return false;
  if (value.empty()) return false;
  const char* begin = value.data();
  const char* end = begin + value.size();
  if constexpr (std::is_integral_v<T>) {
    int64_t parsed = 0;
    const auto [ptr, ec] = std::from_chars(begin, end, parsed);
    if (ec != std::errc() || ptr != end) return false;
    if (parsed < static_cast<int64_t>(std::numeric_limits<T>::min()) ||
        parsed > static_cast<int64_t>(std::numeric_limits<T>::max())) {
      return false;
    }
    *out = static_cast<T>(parsed);
  } else {
    errno = 0;
    char* parse_end = nullptr;
    const double parsed = std::strtod(begin, &parse_end);
    if (parse_end != end || errno == ERANGE) return false;
    *out = static_cast<T>(parsed);
  }
  return true;
}

bool ParseOperator(const std::string& line, int* id, OperatorDescriptor* op) {
  std::istringstream is(line);
  std::string tag;
  int type = 0;
  if (!(is >> tag >> *id >> type) || tag != "op") return false;
  op->type = static_cast<OperatorType>(type);
  int ff = 0, lit = 0, wt = 0, wp = 0, af = 0, gb = 0, at = 0, jk = 0;
  if (!ConsumeNumeric(is, "win", &op->tuple_width_in)) return false;
  if (!ConsumeNumeric(is, "wout", &op->tuple_width_out)) return false;
  if (!ConsumeNumeric(is, "rate", &op->input_event_rate)) return false;
  if (!ConsumeNumeric(is, "ff", &ff)) return false;
  if (!ConsumeNumeric(is, "lit", &lit)) return false;
  if (!ConsumeNumeric(is, "wt", &wt)) return false;
  if (!ConsumeNumeric(is, "wp", &wp)) return false;
  if (!ConsumeNumeric(is, "wsz", &op->window.size)) return false;
  if (!ConsumeNumeric(is, "wsl", &op->window.slide)) return false;
  if (!ConsumeNumeric(is, "af", &af)) return false;
  if (!ConsumeNumeric(is, "gb", &gb)) return false;
  if (!ConsumeNumeric(is, "at", &at)) return false;
  if (!ConsumeNumeric(is, "jk", &jk)) return false;
  if (!ConsumeNumeric(is, "par", &op->parallelism)) return false;
  if (!ConsumeNumeric(is, "sel", &op->selectivity)) return false;
  if (!ConsumeNumeric(is, "fi", &op->frac_int)) return false;
  if (!ConsumeNumeric(is, "fd", &op->frac_double)) return false;
  if (!ConsumeNumeric(is, "fs", &op->frac_string)) return false;
  op->filter_function = static_cast<dsps::FilterFunction>(ff);
  op->literal_data_type = static_cast<dsps::DataType>(lit);
  op->window.type = static_cast<dsps::WindowType>(wt);
  op->window.policy = static_cast<dsps::WindowPolicy>(wp);
  op->aggregate_function = static_cast<dsps::AggregateFunction>(af);
  op->group_by_type = static_cast<dsps::GroupByType>(gb);
  op->aggregate_data_type = static_cast<dsps::DataType>(at);
  op->join_key_type = static_cast<dsps::DataType>(jk);

  std::string types;
  if (!ConsumeKey(is, "types", &types)) return false;
  op->tuple_data_types.clear();
  if (types != "-") {
    std::istringstream ts(types);
    std::string item;
    while (std::getline(ts, item, ',')) {
      op->tuple_data_types.push_back(
          static_cast<dsps::DataType>(std::atoi(item.c_str())));
    }
  }
  return true;
}

// Structural validation shared by both loaders: operator ids are dense and
// in order, the query and the placement are well-formed.
bool FinalizeRecord(std::vector<std::pair<int, OperatorDescriptor>>&& ops,
                    const std::vector<std::pair<int, int>>& edges,
                    TraceRecord* record) {
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].first != static_cast<int>(i)) return false;
    record->query.AddOperator(ops[i].second);
  }
  for (const auto& [from, to] : edges) {
    if (from < 0 || from >= record->query.num_operators() || to < 0 ||
        to >= record->query.num_operators()) {
      return false;
    }
    record->query.AddEdge(from, to);
  }
  if (!record->query.Validate().empty()) return false;
  if (!sim::ValidateLinkMatrix(record->cluster).empty()) return false;
  if (!sim::ValidatePlacement(record->query, record->cluster,
                              record->placement)
           .empty()) {
    return false;
  }
  return true;
}

bool LoadTracesV1(std::istream& is, std::vector<TraceRecord>* records) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) return false;

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line != "record") return false;
    TraceRecord record;
    std::vector<std::pair<int, OperatorDescriptor>> ops;
    std::vector<std::pair<int, int>> edges;
    bool closed = false;
    while (std::getline(is, line)) {
      if (line == "end") {
        closed = true;
        break;
      }
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "template") {
        int t = 0;
        std::string filters_tag;
        if (!(ls >> t >> filters_tag >> record.num_filters) ||
            filters_tag != "filters") {
          return false;
        }
        record.template_kind = static_cast<QueryTemplate>(t);
      } else if (tag == "op") {
        int id = 0;
        OperatorDescriptor op;
        if (!ParseOperator(line, &id, &op)) return false;
        ops.emplace_back(id, op);
      } else if (tag == "edge") {
        int from = 0, to = 0;
        if (!(ls >> from >> to)) return false;
        edges.emplace_back(from, to);
      } else if (tag == "node") {
        sim::HardwareNode node;
        if (!(ls >> node.cpu_pct >> node.ram_mb >> node.bandwidth_mbits >>
              node.latency_ms)) {
          return false;
        }
        record.cluster.nodes.push_back(node);
      } else if (tag == "linkbw" || tag == "linklat") {
        std::vector<double>& dest =
            tag == "linkbw" ? record.cluster.link_bandwidth_mbits
                            : record.cluster.link_latency_ms;
        double v = 0.0;
        while (ls >> v) dest.push_back(v);
        // A non-numeric token mid-row is corruption, not end-of-line.
        if (!ls.eof()) return false;
      } else if (tag == "placement") {
        int n = 0;
        while (ls >> n) record.placement.push_back(n);
      } else if (tag == "metrics") {
        std::string k1, k2, k3, k4, k5;
        int bp = 0, success = 0;
        if (!(ls >> k1 >> record.metrics.throughput >> k2 >>
              record.metrics.processing_latency_ms >> k3 >>
              record.metrics.e2e_latency_ms >> k4 >> bp >> k5 >> success)) {
          return false;
        }
        record.metrics.backpressure = bp != 0;
        record.metrics.success = success != 0;
      } else {
        return false;
      }
    }
    if (!closed) return false;
    if (!FinalizeRecord(std::move(ops), edges, &record)) return false;
    records->push_back(std::move(record));
  }
  return true;
}

// --- v2 binary format --------------------------------------------------------
//
// Everything is little-endian with explicit byte shifts, so images are
// portable across hosts regardless of native endianness. Doubles travel as
// their IEEE-754 bit pattern (exact round-trip by construction).

constexpr char kMagicV2[8] = {'C', 'S', 'T', 'R', 'A', 'C', 'E', '2'};
constexpr uint32_t kVersionV2 = 2;
constexpr uint32_t kHeaderBytesV2 = 24;  // magic + version + size + count
// Extensible-header revision carrying a feature-flag word (+ a reserved
// word): only written when at least one record needs a flagged feature, so
// flag-free corpora stay bitwise identical to the original v2 image.
constexpr uint32_t kHeaderBytesV2Ext = kHeaderBytesV2 + 8;
// Record bodies carry a per-cluster link-matrix section (u8 presence byte,
// then 2 * num_nodes^2 doubles) after the hardware-node section.
constexpr uint32_t kHeaderFlagLinkMatrix = 1u << 0;

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF64(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

// Bounds-checked read cursor over an in-memory image. Every accessor fails
// (and stays failed) instead of reading past `end`, so a lying length prefix
// or a truncated file degrades into a clean `false` from the loader.
struct Cursor {
  const unsigned char* p;
  const unsigned char* end;

  size_t remaining() const { return static_cast<size_t>(end - p); }

  bool Skip(size_t n) {
    if (remaining() < n) return false;
    p += n;
    return true;
  }
  bool GetU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = *p++;
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (remaining() < 4) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) r |= static_cast<uint32_t>(p[i]) << (8 * i);
    p += 4;
    *v = r;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (remaining() < 8) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) r |= static_cast<uint64_t>(p[i]) << (8 * i);
    p += 8;
    *v = r;
    return true;
  }
  bool GetI32(int32_t* v) {
    uint32_t u = 0;
    if (!GetU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }
  bool GetF64(double* v) {
    uint64_t u = 0;
    if (!GetU64(&u)) return false;
    *v = std::bit_cast<double>(u);
    return true;
  }
  // Validates a section's element count against the bytes that are actually
  // left, so corrupted counts cannot trigger multi-gigabyte reserves.
  bool CountFits(uint32_t count, size_t min_elem_bytes) const {
    return min_elem_bytes == 0 || count <= remaining() / min_elem_bytes;
  }
};

// Serialized sizes used for count sanity checks.
constexpr size_t kMinOpBytes = 9 + 4 + 9 * 8 + 4;  // enums+par+doubles+types len
constexpr size_t kEdgeBytes = 8;
constexpr size_t kNodeBytes = 32;
constexpr size_t kPlacementEntryBytes = 4;

// `with_links` mirrors the image-level kHeaderFlagLinkMatrix flag: when set,
// every body carries a link-matrix section (presence byte + matrices) so the
// reader needs no per-record guessing; when clear the body layout is bitwise
// identical to the original v2 encoding.
void AppendRecordBody(const TraceRecord& record, bool with_links,
                      std::string* out) {
  PutU8(out, static_cast<uint8_t>(record.template_kind));
  PutI32(out, record.num_filters);

  PutU32(out, static_cast<uint32_t>(record.query.num_operators()));
  for (int i = 0; i < record.query.num_operators(); ++i) {
    const OperatorDescriptor& op = record.query.op(i);
    PutU8(out, static_cast<uint8_t>(op.type));
    PutU8(out, static_cast<uint8_t>(op.filter_function));
    PutU8(out, static_cast<uint8_t>(op.literal_data_type));
    PutU8(out, static_cast<uint8_t>(op.window.type));
    PutU8(out, static_cast<uint8_t>(op.window.policy));
    PutU8(out, static_cast<uint8_t>(op.aggregate_function));
    PutU8(out, static_cast<uint8_t>(op.group_by_type));
    PutU8(out, static_cast<uint8_t>(op.aggregate_data_type));
    PutU8(out, static_cast<uint8_t>(op.join_key_type));
    PutI32(out, op.parallelism);
    PutF64(out, op.tuple_width_in);
    PutF64(out, op.tuple_width_out);
    PutF64(out, op.input_event_rate);
    PutF64(out, op.window.size);
    PutF64(out, op.window.slide);
    PutF64(out, op.selectivity);
    PutF64(out, op.frac_int);
    PutF64(out, op.frac_double);
    PutF64(out, op.frac_string);
    PutU32(out, static_cast<uint32_t>(op.tuple_data_types.size()));
    for (dsps::DataType t : op.tuple_data_types) {
      PutU8(out, static_cast<uint8_t>(t));
    }
  }

  PutU32(out, static_cast<uint32_t>(record.query.edges().size()));
  for (const auto& [from, to] : record.query.edges()) {
    PutI32(out, from);
    PutI32(out, to);
  }

  PutU32(out, static_cast<uint32_t>(record.cluster.nodes.size()));
  for (const sim::HardwareNode& node : record.cluster.nodes) {
    PutF64(out, node.cpu_pct);
    PutF64(out, node.ram_mb);
    PutF64(out, node.bandwidth_mbits);
    PutF64(out, node.latency_ms);
  }

  if (with_links) {
    const bool has = record.cluster.has_link_matrix();
    PutU8(out, has ? 1 : 0);
    if (has) {
      for (double v : record.cluster.link_bandwidth_mbits) PutF64(out, v);
      for (double v : record.cluster.link_latency_ms) PutF64(out, v);
    }
  }

  PutU32(out, static_cast<uint32_t>(record.placement.size()));
  for (int n : record.placement) PutI32(out, n);

  PutF64(out, record.metrics.throughput);
  PutF64(out, record.metrics.processing_latency_ms);
  PutF64(out, record.metrics.e2e_latency_ms);
  PutU8(out, record.metrics.backpressure ? 1 : 0);
  PutU8(out, record.metrics.success ? 1 : 0);
}

bool ParseRecordBody(Cursor body, bool link_fields, TraceRecord* record) {
  uint8_t template_kind = 0;
  if (!body.GetU8(&template_kind)) return false;
  record->template_kind = static_cast<QueryTemplate>(template_kind);
  if (!body.GetI32(&record->num_filters)) return false;

  uint32_t num_ops = 0;
  if (!body.GetU32(&num_ops) || !body.CountFits(num_ops, kMinOpBytes)) {
    return false;
  }
  std::vector<std::pair<int, OperatorDescriptor>> ops;
  ops.reserve(num_ops);
  for (uint32_t i = 0; i < num_ops; ++i) {
    OperatorDescriptor op;
    uint8_t type = 0, ff = 0, lit = 0, wt = 0, wp = 0, af = 0, gb = 0, at = 0,
            jk = 0;
    if (!body.GetU8(&type) || !body.GetU8(&ff) || !body.GetU8(&lit) ||
        !body.GetU8(&wt) || !body.GetU8(&wp) || !body.GetU8(&af) ||
        !body.GetU8(&gb) || !body.GetU8(&at) || !body.GetU8(&jk)) {
      return false;
    }
    op.type = static_cast<OperatorType>(type);
    op.filter_function = static_cast<dsps::FilterFunction>(ff);
    op.literal_data_type = static_cast<dsps::DataType>(lit);
    op.window.type = static_cast<dsps::WindowType>(wt);
    op.window.policy = static_cast<dsps::WindowPolicy>(wp);
    op.aggregate_function = static_cast<dsps::AggregateFunction>(af);
    op.group_by_type = static_cast<dsps::GroupByType>(gb);
    op.aggregate_data_type = static_cast<dsps::DataType>(at);
    op.join_key_type = static_cast<dsps::DataType>(jk);
    if (!body.GetI32(&op.parallelism) || !body.GetF64(&op.tuple_width_in) ||
        !body.GetF64(&op.tuple_width_out) ||
        !body.GetF64(&op.input_event_rate) || !body.GetF64(&op.window.size) ||
        !body.GetF64(&op.window.slide) || !body.GetF64(&op.selectivity) ||
        !body.GetF64(&op.frac_int) || !body.GetF64(&op.frac_double) ||
        !body.GetF64(&op.frac_string)) {
      return false;
    }
    uint32_t num_types = 0;
    if (!body.GetU32(&num_types) || !body.CountFits(num_types, 1)) {
      return false;
    }
    op.tuple_data_types.reserve(num_types);
    for (uint32_t t = 0; t < num_types; ++t) {
      uint8_t dt = 0;
      if (!body.GetU8(&dt)) return false;
      op.tuple_data_types.push_back(static_cast<dsps::DataType>(dt));
    }
    ops.emplace_back(static_cast<int>(i), std::move(op));
  }

  uint32_t num_edges = 0;
  if (!body.GetU32(&num_edges) || !body.CountFits(num_edges, kEdgeBytes)) {
    return false;
  }
  std::vector<std::pair<int, int>> edges;
  edges.reserve(num_edges);
  for (uint32_t i = 0; i < num_edges; ++i) {
    int32_t from = 0, to = 0;
    if (!body.GetI32(&from) || !body.GetI32(&to)) return false;
    edges.emplace_back(from, to);
  }

  uint32_t num_nodes = 0;
  if (!body.GetU32(&num_nodes) || !body.CountFits(num_nodes, kNodeBytes)) {
    return false;
  }
  record->cluster.nodes.reserve(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    sim::HardwareNode node;
    if (!body.GetF64(&node.cpu_pct) || !body.GetF64(&node.ram_mb) ||
        !body.GetF64(&node.bandwidth_mbits) || !body.GetF64(&node.latency_ms)) {
      return false;
    }
    record->cluster.nodes.push_back(node);
  }

  if (link_fields) {
    uint8_t has_links = 0;
    if (!body.GetU8(&has_links) || has_links > 1) return false;
    if (has_links == 1) {
      // A flagged body must carry both full n*n matrices; a file truncated
      // mid-matrix fails closed here via the bounds-checked cursor.
      const size_t entries =
          static_cast<size_t>(num_nodes) * static_cast<size_t>(num_nodes);
      if (entries > body.remaining() / (2 * sizeof(double))) return false;
      record->cluster.link_bandwidth_mbits.reserve(entries);
      record->cluster.link_latency_ms.reserve(entries);
      for (size_t i = 0; i < entries; ++i) {
        double v = 0.0;
        if (!body.GetF64(&v)) return false;
        record->cluster.link_bandwidth_mbits.push_back(v);
      }
      for (size_t i = 0; i < entries; ++i) {
        double v = 0.0;
        if (!body.GetF64(&v)) return false;
        record->cluster.link_latency_ms.push_back(v);
      }
    }
  }

  uint32_t placement_size = 0;
  if (!body.GetU32(&placement_size) ||
      !body.CountFits(placement_size, kPlacementEntryBytes)) {
    return false;
  }
  record->placement.reserve(placement_size);
  for (uint32_t i = 0; i < placement_size; ++i) {
    int32_t n = 0;
    if (!body.GetI32(&n)) return false;
    record->placement.push_back(n);
  }

  uint8_t bp = 0, success = 0;
  if (!body.GetF64(&record->metrics.throughput) ||
      !body.GetF64(&record->metrics.processing_latency_ms) ||
      !body.GetF64(&record->metrics.e2e_latency_ms) || !body.GetU8(&bp) ||
      !body.GetU8(&success)) {
    return false;
  }
  record->metrics.backpressure = bp != 0;
  record->metrics.success = success != 0;

  // A record body that leaves trailing bytes has a lying length prefix.
  if (body.remaining() != 0) return false;
  return FinalizeRecord(std::move(ops), edges, record);
}

bool IsV2Image(const char* data, size_t size) {
  return size >= sizeof(kMagicV2) &&
         std::memcmp(data, kMagicV2, sizeof(kMagicV2)) == 0;
}

}  // namespace

void SaveTraces(std::ostream& os, const std::vector<TraceRecord>& records) {
  obs::ScopedTimer timer(SaveLatency());
  const auto start = os.tellp();
  os.precision(17);
  os << kHeader << '\n';
  for (const TraceRecord& record : records) {
    os << "record\n";
    os << "template " << static_cast<int>(record.template_kind) << " filters "
       << record.num_filters << '\n';
    for (int i = 0; i < record.query.num_operators(); ++i) {
      WriteOperator(os, i, record.query.op(i));
    }
    for (const auto& [from, to] : record.query.edges()) {
      os << "edge " << from << ' ' << to << '\n';
    }
    for (const sim::HardwareNode& node : record.cluster.nodes) {
      os << "node " << node.cpu_pct << ' ' << node.ram_mb << ' '
         << node.bandwidth_mbits << ' ' << node.latency_ms << '\n';
    }
    // Per-link matrices are written one row per line and only when present,
    // so link-free corpora remain readable by pre-extension parsers (which
    // reject unknown tags).
    if (record.cluster.has_link_matrix()) {
      const int n = record.cluster.num_nodes();
      for (int row = 0; row < n; ++row) {
        os << "linkbw";
        for (int to = 0; to < n; ++to) {
          os << ' ' << record.cluster.link_bandwidth_mbits[row * n + to];
        }
        os << '\n';
      }
      for (int row = 0; row < n; ++row) {
        os << "linklat";
        for (int to = 0; to < n; ++to) {
          os << ' ' << record.cluster.link_latency_ms[row * n + to];
        }
        os << '\n';
      }
    }
    os << "placement";
    for (int n : record.placement) os << ' ' << n;
    os << '\n';
    os << "metrics T " << record.metrics.throughput << " Lp "
       << record.metrics.processing_latency_ms << " Le "
       << record.metrics.e2e_latency_ms << " bp "
       << (record.metrics.backpressure ? 1 : 0) << " success "
       << (record.metrics.success ? 1 : 0) << '\n';
    os << "end\n";
  }
  SaveRecordsCounter().Add(records.size());
  const auto end = os.tellp();
  if (start >= 0 && end > start) {
    SaveBytesCounter().Add(static_cast<uint64_t>(end - start));
  }
}

void SaveTracesV2(std::ostream& os, const std::vector<TraceRecord>& records) {
  obs::ScopedTimer timer(SaveLatency());
  // The whole image is assembled in memory and written with one call:
  // length-prefixing each record needs its size before its bytes, and a
  // single bulk write is considerably faster than streaming thousands of
  // small field inserts through the ostream locale machinery.
  // The extended (flag-bearing) header is emitted only when some record
  // actually carries a link matrix, so link-free corpora keep producing
  // images bitwise identical to the original v2 encoding and stay loadable
  // by pre-extension readers.
  bool any_links = false;
  for (const TraceRecord& record : records) {
    COSTREAM_CHECK_MSG(sim::ValidateLinkMatrix(record.cluster).empty(),
                       "SaveTracesV2: invalid cluster link matrix");
    any_links = any_links || record.cluster.has_link_matrix();
  }

  std::string image;
  image.reserve(1024 * records.size() + kHeaderBytesV2Ext);
  image.append(kMagicV2, sizeof(kMagicV2));
  PutU32(&image, kVersionV2);
  PutU32(&image, any_links ? kHeaderBytesV2Ext : kHeaderBytesV2);
  PutU64(&image, static_cast<uint64_t>(records.size()));
  if (any_links) {
    PutU32(&image, kHeaderFlagLinkMatrix);
    PutU32(&image, 0);  // reserved
  }

  std::string body;
  for (const TraceRecord& record : records) {
    body.clear();
    AppendRecordBody(record, any_links, &body);
    PutU32(&image, static_cast<uint32_t>(body.size()));
    image.append(body);
  }
  os.write(image.data(), static_cast<std::streamsize>(image.size()));
  SaveRecordsCounter().Add(records.size());
  SaveBytesCounter().Add(image.size());
}

bool LoadTracesV2(const char* data, size_t size,
                  std::vector<TraceRecord>* records) {
  COSTREAM_CHECK(records != nullptr);
  records->clear();
  obs::ScopedTimer timer(LoadLatency());
  Cursor cur{reinterpret_cast<const unsigned char*>(data),
             reinterpret_cast<const unsigned char*>(data) + size};
  if (!IsV2Image(data, size) || !cur.Skip(sizeof(kMagicV2))) return false;
  uint32_t version = 0, header_bytes = 0;
  uint64_t record_count = 0;
  if (!cur.GetU32(&version) || version != kVersionV2) return false;
  if (!cur.GetU32(&header_bytes) || header_bytes < kHeaderBytesV2) {
    return false;
  }
  if (!cur.GetU64(&record_count)) return false;
  // Extended headers lead with a feature-flag word describing extra record
  // sections. Unknown flags change the body layout in ways this reader
  // cannot parse, so they fail closed; unknown header *tail* bytes beyond
  // the words we understand are skippable padding.
  bool link_fields = false;
  uint32_t ext_consumed = 0;
  if (header_bytes >= kHeaderBytesV2Ext) {
    uint32_t flags = 0, reserved = 0;
    if (!cur.GetU32(&flags) || !cur.GetU32(&reserved)) return false;
    if ((flags & ~kHeaderFlagLinkMatrix) != 0) return false;
    link_fields = (flags & kHeaderFlagLinkMatrix) != 0;
    ext_consumed = kHeaderBytesV2Ext - kHeaderBytesV2;
  }
  if (!cur.Skip(header_bytes - kHeaderBytesV2 - ext_consumed)) return false;
  if (!cur.CountFits(record_count > std::numeric_limits<uint32_t>::max()
                         ? std::numeric_limits<uint32_t>::max()
                         : static_cast<uint32_t>(record_count),
                     4) ||
      record_count > std::numeric_limits<uint32_t>::max()) {
    return false;
  }
  records->reserve(static_cast<size_t>(record_count));

  for (uint64_t i = 0; i < record_count; ++i) {
    uint32_t payload = 0;
    if (!cur.GetU32(&payload) || cur.remaining() < payload) return false;
    Cursor body{cur.p, cur.p + payload};
    TraceRecord record;
    if (!ParseRecordBody(body, link_fields, &record)) return false;
    cur.p += payload;
    records->push_back(std::move(record));
  }
  if (cur.remaining() != 0) return false;  // trailing garbage
  LoadRecordsCounter().Add(records->size());
  LoadBytesCounter().Add(size);
  return true;
}

bool LoadTraces(std::istream& is, std::vector<TraceRecord>* records) {
  COSTREAM_CHECK(records != nullptr);
  records->clear();
  // Peek enough bytes to tell the formats apart, then hand the stream (v1)
  // or a fully buffered image (v2) to the right parser.
  char magic[sizeof(kMagicV2)] = {};
  is.read(magic, sizeof(magic));
  const std::streamsize got = is.gcount();
  if (got == static_cast<std::streamsize>(sizeof(magic)) &&
      IsV2Image(magic, sizeof(magic))) {
    std::string image(magic, sizeof(magic));
    std::ostringstream rest;
    rest << is.rdbuf();
    image.append(rest.str());
    return LoadTracesV2(image.data(), image.size(), records);
  }
  // Text path: un-read the probe bytes and parse lines.
  is.clear();
  for (std::streamsize i = got; i > 0; --i) {
    is.putback(magic[i - 1]);
    if (is.fail()) return false;
  }
  obs::ScopedTimer timer(LoadLatency());
  const bool ok = LoadTracesV1(is, records);
  if (ok) LoadRecordsCounter().Add(records->size());
  return ok;
}

bool SaveTracesToFile(const std::string& path,
                      const std::vector<TraceRecord>& records,
                      TraceFormat format) {
  std::ofstream os(path, format == TraceFormat::kBinaryV2
                             ? std::ios::out | std::ios::binary
                             : std::ios::out);
  if (!os) return false;
  if (format == TraceFormat::kBinaryV2) {
    SaveTracesV2(os, records);
  } else {
    SaveTraces(os, records);
  }
  return os.good();
}

bool LoadTracesFromFile(const std::string& path,
                        std::vector<TraceRecord>* records) {
  COSTREAM_CHECK(records != nullptr);
  std::ifstream is(path, std::ios::in | std::ios::binary);
  if (!is) return false;
  // One buffered slurp: the v2 parser is zero-copy over the image, and even
  // the v1 text parser is faster over a memory-backed stream than over
  // line-by-line file reads.
  std::string image((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  if (IsV2Image(image.data(), image.size())) {
    return LoadTracesV2(image.data(), image.size(), records);
  }
  std::istringstream text(std::move(image));
  return LoadTraces(text, records);
}

}  // namespace costream::workload
