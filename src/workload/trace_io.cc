#include "workload/trace_io.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cinttypes>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <sstream>
#include <type_traits>

#include "common/check.h"
#include "common/codec.h"
#include "common/mmap_file.h"
#include "obs/metrics.h"
#include "workload/trace_format.h"

namespace costream::workload {

namespace {

using dsps::OperatorDescriptor;
using dsps::OperatorType;

constexpr char kHeader[] = "#costream-traces v1";

// --- observability -----------------------------------------------------------

obs::Counter& SaveRecordsCounter() {
  static obs::Counter& c = obs::GetCounter("workload.trace.records_written");
  return c;
}
obs::Counter& SaveBytesCounter() {
  static obs::Counter& c = obs::GetCounter("workload.trace.bytes_written");
  return c;
}
obs::Counter& SaveBlocksCounter() {
  static obs::Counter& c = obs::GetCounter("workload.trace.blocks_written");
  return c;
}
obs::Counter& LoadRecordsCounter() {
  static obs::Counter& c = obs::GetCounter("workload.trace.records_read");
  return c;
}
obs::Counter& LoadBytesCounter() {
  static obs::Counter& c = obs::GetCounter("workload.trace.bytes_read");
  return c;
}
obs::Histogram& SaveLatency() {
  static obs::Histogram& h = obs::GetHistogram("workload.trace.save_us");
  return h;
}
obs::Histogram& LoadLatency() {
  static obs::Histogram& h = obs::GetHistogram("workload.trace.load_us");
  return h;
}

// --- v1 text format ----------------------------------------------------------

void WriteOperator(std::ostream& os, int id, const OperatorDescriptor& op) {
  os << "op " << id << ' ' << static_cast<int>(op.type)
     << " win=" << op.tuple_width_in << " wout=" << op.tuple_width_out
     << " rate=" << op.input_event_rate
     << " ff=" << static_cast<int>(op.filter_function)
     << " lit=" << static_cast<int>(op.literal_data_type)
     << " wt=" << static_cast<int>(op.window.type)
     << " wp=" << static_cast<int>(op.window.policy)
     << " wsz=" << op.window.size << " wsl=" << op.window.slide
     << " af=" << static_cast<int>(op.aggregate_function)
     << " gb=" << static_cast<int>(op.group_by_type)
     << " at=" << static_cast<int>(op.aggregate_data_type)
     << " jk=" << static_cast<int>(op.join_key_type)
     << " par=" << op.parallelism << " sel=" << op.selectivity
     << " fi=" << op.frac_int
     << " fd=" << op.frac_double << " fs=" << op.frac_string << " types=";
  for (size_t i = 0; i < op.tuple_data_types.size(); ++i) {
    if (i > 0) os << ',';
    os << static_cast<int>(op.tuple_data_types[i]);
  }
  if (op.tuple_data_types.empty()) os << '-';
  os << '\n';
}

// Parses "key=value" into the value part; aborts the record on mismatch.
bool ConsumeKey(std::istringstream& is, const char* key, std::string* value) {
  std::string token;
  if (!(is >> token)) return false;
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) return false;
  *value = token.substr(prefix.size());
  return true;
}

// Parses the whole value token into T; rejects trailing garbage ("3x"),
// fractional text for integral fields ("3.7"), and out-of-range values.
// Integral fields go through int64_t rather than double so values above
// 2^53 are not silently rounded.
template <typename T>
bool ConsumeNumeric(std::istringstream& is, const char* key, T* out) {
  std::string value;
  if (!ConsumeKey(is, key, &value)) return false;
  if (value.empty()) return false;
  const char* begin = value.data();
  const char* end = begin + value.size();
  if constexpr (std::is_integral_v<T>) {
    int64_t parsed = 0;
    const auto [ptr, ec] = std::from_chars(begin, end, parsed);
    if (ec != std::errc() || ptr != end) return false;
    if (parsed < static_cast<int64_t>(std::numeric_limits<T>::min()) ||
        parsed > static_cast<int64_t>(std::numeric_limits<T>::max())) {
      return false;
    }
    *out = static_cast<T>(parsed);
  } else {
    errno = 0;
    char* parse_end = nullptr;
    const double parsed = std::strtod(begin, &parse_end);
    if (parse_end != end || errno == ERANGE) return false;
    *out = static_cast<T>(parsed);
  }
  return true;
}

bool ParseOperator(const std::string& line, int* id, OperatorDescriptor* op) {
  std::istringstream is(line);
  std::string tag;
  int type = 0;
  if (!(is >> tag >> *id >> type) || tag != "op") return false;
  op->type = static_cast<OperatorType>(type);
  int ff = 0, lit = 0, wt = 0, wp = 0, af = 0, gb = 0, at = 0, jk = 0;
  if (!ConsumeNumeric(is, "win", &op->tuple_width_in)) return false;
  if (!ConsumeNumeric(is, "wout", &op->tuple_width_out)) return false;
  if (!ConsumeNumeric(is, "rate", &op->input_event_rate)) return false;
  if (!ConsumeNumeric(is, "ff", &ff)) return false;
  if (!ConsumeNumeric(is, "lit", &lit)) return false;
  if (!ConsumeNumeric(is, "wt", &wt)) return false;
  if (!ConsumeNumeric(is, "wp", &wp)) return false;
  if (!ConsumeNumeric(is, "wsz", &op->window.size)) return false;
  if (!ConsumeNumeric(is, "wsl", &op->window.slide)) return false;
  if (!ConsumeNumeric(is, "af", &af)) return false;
  if (!ConsumeNumeric(is, "gb", &gb)) return false;
  if (!ConsumeNumeric(is, "at", &at)) return false;
  if (!ConsumeNumeric(is, "jk", &jk)) return false;
  if (!ConsumeNumeric(is, "par", &op->parallelism)) return false;
  if (!ConsumeNumeric(is, "sel", &op->selectivity)) return false;
  if (!ConsumeNumeric(is, "fi", &op->frac_int)) return false;
  if (!ConsumeNumeric(is, "fd", &op->frac_double)) return false;
  if (!ConsumeNumeric(is, "fs", &op->frac_string)) return false;
  op->filter_function = static_cast<dsps::FilterFunction>(ff);
  op->literal_data_type = static_cast<dsps::DataType>(lit);
  op->window.type = static_cast<dsps::WindowType>(wt);
  op->window.policy = static_cast<dsps::WindowPolicy>(wp);
  op->aggregate_function = static_cast<dsps::AggregateFunction>(af);
  op->group_by_type = static_cast<dsps::GroupByType>(gb);
  op->aggregate_data_type = static_cast<dsps::DataType>(at);
  op->join_key_type = static_cast<dsps::DataType>(jk);

  std::string types;
  if (!ConsumeKey(is, "types", &types)) return false;
  op->tuple_data_types.clear();
  if (types != "-") {
    std::istringstream ts(types);
    std::string item;
    while (std::getline(ts, item, ',')) {
      op->tuple_data_types.push_back(
          static_cast<dsps::DataType>(std::atoi(item.c_str())));
    }
  }
  return true;
}

// Structural validation shared by both loaders: operator ids are dense and
// in order, the query and the placement are well-formed.
bool FinalizeRecord(std::vector<std::pair<int, OperatorDescriptor>>&& ops,
                    const std::vector<std::pair<int, int>>& edges,
                    TraceRecord* record) {
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].first != static_cast<int>(i)) return false;
    record->query.AddOperator(ops[i].second);
  }
  for (const auto& [from, to] : edges) {
    if (from < 0 || from >= record->query.num_operators() || to < 0 ||
        to >= record->query.num_operators()) {
      return false;
    }
    record->query.AddEdge(from, to);
  }
  if (!record->query.Validate().empty()) return false;
  if (!sim::ValidateLinkMatrix(record->cluster).empty()) return false;
  if (!sim::ValidatePlacement(record->query, record->cluster,
                              record->placement)
           .empty()) {
    return false;
  }
  return true;
}

bool LoadTracesV1(std::istream& is, std::vector<TraceRecord>* records) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) return false;

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line != "record") return false;
    TraceRecord record;
    std::vector<std::pair<int, OperatorDescriptor>> ops;
    std::vector<std::pair<int, int>> edges;
    bool closed = false;
    while (std::getline(is, line)) {
      if (line == "end") {
        closed = true;
        break;
      }
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "template") {
        int t = 0;
        std::string filters_tag;
        if (!(ls >> t >> filters_tag >> record.num_filters) ||
            filters_tag != "filters") {
          return false;
        }
        record.template_kind = static_cast<QueryTemplate>(t);
      } else if (tag == "op") {
        int id = 0;
        OperatorDescriptor op;
        if (!ParseOperator(line, &id, &op)) return false;
        ops.emplace_back(id, op);
      } else if (tag == "edge") {
        int from = 0, to = 0;
        if (!(ls >> from >> to)) return false;
        edges.emplace_back(from, to);
      } else if (tag == "node") {
        sim::HardwareNode node;
        if (!(ls >> node.cpu_pct >> node.ram_mb >> node.bandwidth_mbits >>
              node.latency_ms)) {
          return false;
        }
        record.cluster.nodes.push_back(node);
      } else if (tag == "linkbw" || tag == "linklat") {
        std::vector<double>& dest =
            tag == "linkbw" ? record.cluster.link_bandwidth_mbits
                            : record.cluster.link_latency_ms;
        double v = 0.0;
        while (ls >> v) dest.push_back(v);
        // A non-numeric token mid-row is corruption, not end-of-line.
        if (!ls.eof()) return false;
      } else if (tag == "placement") {
        int n = 0;
        while (ls >> n) record.placement.push_back(n);
      } else if (tag == "metrics") {
        std::string k1, k2, k3, k4, k5;
        int bp = 0, success = 0;
        if (!(ls >> k1 >> record.metrics.throughput >> k2 >>
              record.metrics.processing_latency_ms >> k3 >>
              record.metrics.e2e_latency_ms >> k4 >> bp >> k5 >> success)) {
          return false;
        }
        record.metrics.backpressure = bp != 0;
        record.metrics.success = success != 0;
      } else {
        return false;
      }
    }
    if (!closed) return false;
    if (!FinalizeRecord(std::move(ops), edges, &record)) return false;
    records->push_back(std::move(record));
  }
  return true;
}

}  // namespace

// --- v2 binary format internals ---------------------------------------------
//
// Everything is little-endian with explicit byte shifts, so images are
// portable across hosts regardless of native endianness. Doubles travel as
// their IEEE-754 bit pattern (exact round-trip by construction). Layout
// constants and the cursor live in trace_format.h, shared with the mmap
// reader and the artifact linter.

namespace internal {

// Serialized sizes used for count sanity checks.
constexpr size_t kMinOpBytes = 9 + 4 + 9 * 8 + 4;  // enums+par+doubles+types len
constexpr size_t kEdgeBytes = 8;
constexpr size_t kNodeBytes = 32;
constexpr size_t kPlacementEntryBytes = 4;

bool ParseV2Header(Cursor* cur, HeaderInfo* info) {
  *info = HeaderInfo{};
  if (cur->remaining() < sizeof(kMagicV2) ||
      std::memcmp(cur->p, kMagicV2, sizeof(kMagicV2)) != 0) {
    return false;
  }
  cur->Skip(sizeof(kMagicV2));
  uint32_t version = 0;
  if (!cur->GetU32(&version) || version != kVersionV2) return false;
  if (!cur->GetU32(&info->header_bytes) ||
      info->header_bytes < kHeaderBytesV2) {
    return false;
  }
  if (!cur->GetU64(&info->record_count)) return false;
  // Extended headers lead with a feature-flag word describing extra record
  // sections. Unknown flags change the body layout in ways this reader
  // cannot parse, so they fail closed; unknown header *tail* bytes beyond
  // the words we understand are skippable padding.
  uint32_t ext_consumed = 0;
  if (info->header_bytes >= kHeaderBytesV2Ext) {
    uint32_t reserved = 0;
    if (!cur->GetU32(&info->flags) || !cur->GetU32(&reserved)) return false;
    if ((info->flags & ~kKnownHeaderFlags) != 0) return false;
    ext_consumed = kHeaderBytesV2Ext - kHeaderBytesV2;
  }
  return cur->Skip(info->header_bytes - kHeaderBytesV2 - ext_consumed);
}

uint64_t FrameSeed(const BlockFrame& frame) {
  std::string head;
  head.reserve(16);
  PutU32(&head, frame.compressed_bytes);
  PutU32(&head, frame.uncompressed_bytes);
  PutU32(&head, frame.record_count);
  PutU32(&head, frame.flags);
  return common::Fnv1a64(head.data(), head.size());
}

void PutBlockFrame(std::string* out, const BlockFrame& frame) {
  PutU32(out, frame.compressed_bytes);
  PutU32(out, frame.uncompressed_bytes);
  PutU32(out, frame.record_count);
  PutU32(out, frame.flags);
  PutU64(out, frame.checksum);
}

bool GetBlockFrame(Cursor* cur, BlockFrame* frame) {
  return cur->GetU32(&frame->compressed_bytes) &&
         cur->GetU32(&frame->uncompressed_bytes) &&
         cur->GetU32(&frame->record_count) && cur->GetU32(&frame->flags) &&
         cur->GetU64(&frame->checksum);
}

void PutIndexEntry(std::string* out, const IndexEntry& entry) {
  PutU64(out, entry.offset);
  PutU64(out, entry.compressed_bytes);
  PutU64(out, entry.uncompressed_bytes);
  PutU64(out, entry.first_record);
  PutU64(out, entry.record_count);
  PutU64(out, entry.checksum);
}

bool GetIndexEntry(Cursor* cur, IndexEntry* entry) {
  return cur->GetU64(&entry->offset) && cur->GetU64(&entry->compressed_bytes) &&
         cur->GetU64(&entry->uncompressed_bytes) &&
         cur->GetU64(&entry->first_record) &&
         cur->GetU64(&entry->record_count) && cur->GetU64(&entry->checksum);
}

bool ParseTrailer(const char* data, size_t size, Trailer* trailer) {
  if (size < kTrailerBytes) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data) + size - kTrailerBytes;
  if (std::memcmp(p + 24, kIndexMagic, sizeof(kIndexMagic)) != 0) return false;
  Cursor cur{p, p + kTrailerBytes};
  return cur.GetU64(&trailer->index_offset) &&
         cur.GetU64(&trailer->num_blocks) &&
         cur.GetU64(&trailer->index_checksum);
}

// `with_links` mirrors the image-level kHeaderFlagLinkMatrix flag: when set,
// every body carries a link-matrix section (presence byte + matrices) so the
// reader needs no per-record guessing; when clear the body layout is bitwise
// identical to the original v2 encoding.
void AppendRecordBody(const TraceRecord& record, bool with_links,
                      std::string* out) {
  PutU8(out, static_cast<uint8_t>(record.template_kind));
  PutI32(out, record.num_filters);

  PutU32(out, static_cast<uint32_t>(record.query.num_operators()));
  for (int i = 0; i < record.query.num_operators(); ++i) {
    const OperatorDescriptor& op = record.query.op(i);
    PutU8(out, static_cast<uint8_t>(op.type));
    PutU8(out, static_cast<uint8_t>(op.filter_function));
    PutU8(out, static_cast<uint8_t>(op.literal_data_type));
    PutU8(out, static_cast<uint8_t>(op.window.type));
    PutU8(out, static_cast<uint8_t>(op.window.policy));
    PutU8(out, static_cast<uint8_t>(op.aggregate_function));
    PutU8(out, static_cast<uint8_t>(op.group_by_type));
    PutU8(out, static_cast<uint8_t>(op.aggregate_data_type));
    PutU8(out, static_cast<uint8_t>(op.join_key_type));
    PutI32(out, op.parallelism);
    PutF64(out, op.tuple_width_in);
    PutF64(out, op.tuple_width_out);
    PutF64(out, op.input_event_rate);
    PutF64(out, op.window.size);
    PutF64(out, op.window.slide);
    PutF64(out, op.selectivity);
    PutF64(out, op.frac_int);
    PutF64(out, op.frac_double);
    PutF64(out, op.frac_string);
    PutU32(out, static_cast<uint32_t>(op.tuple_data_types.size()));
    for (dsps::DataType t : op.tuple_data_types) {
      PutU8(out, static_cast<uint8_t>(t));
    }
  }

  PutU32(out, static_cast<uint32_t>(record.query.edges().size()));
  for (const auto& [from, to] : record.query.edges()) {
    PutI32(out, from);
    PutI32(out, to);
  }

  PutU32(out, static_cast<uint32_t>(record.cluster.nodes.size()));
  for (const sim::HardwareNode& node : record.cluster.nodes) {
    PutF64(out, node.cpu_pct);
    PutF64(out, node.ram_mb);
    PutF64(out, node.bandwidth_mbits);
    PutF64(out, node.latency_ms);
  }

  if (with_links) {
    const bool has = record.cluster.has_link_matrix();
    PutU8(out, has ? 1 : 0);
    if (has) {
      for (double v : record.cluster.link_bandwidth_mbits) PutF64(out, v);
      for (double v : record.cluster.link_latency_ms) PutF64(out, v);
    }
  }

  PutU32(out, static_cast<uint32_t>(record.placement.size()));
  for (int n : record.placement) PutI32(out, n);

  PutF64(out, record.metrics.throughput);
  PutF64(out, record.metrics.processing_latency_ms);
  PutF64(out, record.metrics.e2e_latency_ms);
  PutU8(out, record.metrics.backpressure ? 1 : 0);
  PutU8(out, record.metrics.success ? 1 : 0);
}

bool ParseRecordBody(Cursor body, bool link_fields, TraceRecord* record) {
  uint8_t template_kind = 0;
  if (!body.GetU8(&template_kind)) return false;
  record->template_kind = static_cast<QueryTemplate>(template_kind);
  if (!body.GetI32(&record->num_filters)) return false;

  uint32_t num_ops = 0;
  if (!body.GetU32(&num_ops) || !body.CountFits(num_ops, kMinOpBytes)) {
    return false;
  }
  std::vector<std::pair<int, OperatorDescriptor>> ops;
  ops.reserve(num_ops);
  for (uint32_t i = 0; i < num_ops; ++i) {
    OperatorDescriptor op;
    uint8_t type = 0, ff = 0, lit = 0, wt = 0, wp = 0, af = 0, gb = 0, at = 0,
            jk = 0;
    if (!body.GetU8(&type) || !body.GetU8(&ff) || !body.GetU8(&lit) ||
        !body.GetU8(&wt) || !body.GetU8(&wp) || !body.GetU8(&af) ||
        !body.GetU8(&gb) || !body.GetU8(&at) || !body.GetU8(&jk)) {
      return false;
    }
    op.type = static_cast<OperatorType>(type);
    op.filter_function = static_cast<dsps::FilterFunction>(ff);
    op.literal_data_type = static_cast<dsps::DataType>(lit);
    op.window.type = static_cast<dsps::WindowType>(wt);
    op.window.policy = static_cast<dsps::WindowPolicy>(wp);
    op.aggregate_function = static_cast<dsps::AggregateFunction>(af);
    op.group_by_type = static_cast<dsps::GroupByType>(gb);
    op.aggregate_data_type = static_cast<dsps::DataType>(at);
    op.join_key_type = static_cast<dsps::DataType>(jk);
    if (!body.GetI32(&op.parallelism) || !body.GetF64(&op.tuple_width_in) ||
        !body.GetF64(&op.tuple_width_out) ||
        !body.GetF64(&op.input_event_rate) || !body.GetF64(&op.window.size) ||
        !body.GetF64(&op.window.slide) || !body.GetF64(&op.selectivity) ||
        !body.GetF64(&op.frac_int) || !body.GetF64(&op.frac_double) ||
        !body.GetF64(&op.frac_string)) {
      return false;
    }
    uint32_t num_types = 0;
    if (!body.GetU32(&num_types) || !body.CountFits(num_types, 1)) {
      return false;
    }
    op.tuple_data_types.reserve(num_types);
    for (uint32_t t = 0; t < num_types; ++t) {
      uint8_t dt = 0;
      if (!body.GetU8(&dt)) return false;
      op.tuple_data_types.push_back(static_cast<dsps::DataType>(dt));
    }
    ops.emplace_back(static_cast<int>(i), std::move(op));
  }

  uint32_t num_edges = 0;
  if (!body.GetU32(&num_edges) || !body.CountFits(num_edges, kEdgeBytes)) {
    return false;
  }
  std::vector<std::pair<int, int>> edges;
  edges.reserve(num_edges);
  for (uint32_t i = 0; i < num_edges; ++i) {
    int32_t from = 0, to = 0;
    if (!body.GetI32(&from) || !body.GetI32(&to)) return false;
    edges.emplace_back(from, to);
  }

  uint32_t num_nodes = 0;
  if (!body.GetU32(&num_nodes) || !body.CountFits(num_nodes, kNodeBytes)) {
    return false;
  }
  record->cluster.nodes.reserve(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    sim::HardwareNode node;
    if (!body.GetF64(&node.cpu_pct) || !body.GetF64(&node.ram_mb) ||
        !body.GetF64(&node.bandwidth_mbits) || !body.GetF64(&node.latency_ms)) {
      return false;
    }
    record->cluster.nodes.push_back(node);
  }

  if (link_fields) {
    uint8_t has_links = 0;
    if (!body.GetU8(&has_links) || has_links > 1) return false;
    if (has_links == 1) {
      // A flagged body must carry both full n*n matrices; a file truncated
      // mid-matrix fails closed here via the bounds-checked cursor.
      const size_t entries =
          static_cast<size_t>(num_nodes) * static_cast<size_t>(num_nodes);
      if (entries > body.remaining() / (2 * sizeof(double))) return false;
      record->cluster.link_bandwidth_mbits.reserve(entries);
      record->cluster.link_latency_ms.reserve(entries);
      for (size_t i = 0; i < entries; ++i) {
        double v = 0.0;
        if (!body.GetF64(&v)) return false;
        record->cluster.link_bandwidth_mbits.push_back(v);
      }
      for (size_t i = 0; i < entries; ++i) {
        double v = 0.0;
        if (!body.GetF64(&v)) return false;
        record->cluster.link_latency_ms.push_back(v);
      }
    }
  }

  uint32_t placement_size = 0;
  if (!body.GetU32(&placement_size) ||
      !body.CountFits(placement_size, kPlacementEntryBytes)) {
    return false;
  }
  record->placement.reserve(placement_size);
  for (uint32_t i = 0; i < placement_size; ++i) {
    int32_t n = 0;
    if (!body.GetI32(&n)) return false;
    record->placement.push_back(n);
  }

  uint8_t bp = 0, success = 0;
  if (!body.GetF64(&record->metrics.throughput) ||
      !body.GetF64(&record->metrics.processing_latency_ms) ||
      !body.GetF64(&record->metrics.e2e_latency_ms) || !body.GetU8(&bp) ||
      !body.GetU8(&success)) {
    return false;
  }
  record->metrics.backpressure = bp != 0;
  record->metrics.success = success != 0;

  // A record body that leaves trailing bytes has a lying length prefix.
  if (body.remaining() != 0) return false;
  return FinalizeRecord(std::move(ops), edges, record);
}

bool ParseRecordFrames(Cursor* cur, uint64_t count, bool link_fields,
                       std::vector<TraceRecord>* records) {
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t payload = 0;
    if (!cur->GetU32(&payload) || cur->remaining() < payload) return false;
    Cursor body{cur->p, cur->p + payload};
    TraceRecord record;
    if (!ParseRecordBody(body, link_fields, &record)) return false;
    cur->p += payload;
    records->push_back(std::move(record));
  }
  return true;
}

bool DecodeBlockPayload(const unsigned char* payload, const BlockFrame& frame,
                        std::string* out) {
  if ((frame.flags & ~kKnownBlockFlags) != 0) return false;
  if (frame.uncompressed_bytes > kMaxBlockUncompressedBytes) return false;
  // The checksum is seeded with the other frame fields, so a lying size or
  // count fails here — before the uncompressed allocation below.
  if (common::Fnv1a64(payload, frame.compressed_bytes, FrameSeed(frame)) !=
      frame.checksum) {
    return false;
  }
  if ((frame.flags & kBlockFlagCodec) != 0) {
    out->resize(frame.uncompressed_bytes);
    return common::DecompressBlock(reinterpret_cast<const char*>(payload),
                                   frame.compressed_bytes, out->data(),
                                   out->size());
  }
  if (frame.compressed_bytes != frame.uncompressed_bytes) return false;
  out->assign(reinterpret_cast<const char*>(payload), frame.compressed_bytes);
  return true;
}

void AppendRecordTextV1(std::ostream& os, const TraceRecord& record) {
  os << "record\n";
  os << "template " << static_cast<int>(record.template_kind) << " filters "
     << record.num_filters << '\n';
  for (int i = 0; i < record.query.num_operators(); ++i) {
    WriteOperator(os, i, record.query.op(i));
  }
  for (const auto& [from, to] : record.query.edges()) {
    os << "edge " << from << ' ' << to << '\n';
  }
  for (const sim::HardwareNode& node : record.cluster.nodes) {
    os << "node " << node.cpu_pct << ' ' << node.ram_mb << ' '
       << node.bandwidth_mbits << ' ' << node.latency_ms << '\n';
  }
  // Per-link matrices are written one row per line and only when present,
  // so link-free corpora remain readable by pre-extension parsers (which
  // reject unknown tags).
  if (record.cluster.has_link_matrix()) {
    const int n = record.cluster.num_nodes();
    for (int row = 0; row < n; ++row) {
      os << "linkbw";
      for (int to = 0; to < n; ++to) {
        os << ' ' << record.cluster.link_bandwidth_mbits[row * n + to];
      }
      os << '\n';
    }
    for (int row = 0; row < n; ++row) {
      os << "linklat";
      for (int to = 0; to < n; ++to) {
        os << ' ' << record.cluster.link_latency_ms[row * n + to];
      }
      os << '\n';
    }
  }
  os << "placement";
  for (int n : record.placement) os << ' ' << n;
  os << '\n';
  os << "metrics T " << record.metrics.throughput << " Lp "
     << record.metrics.processing_latency_ms << " Le "
     << record.metrics.e2e_latency_ms << " bp "
     << (record.metrics.backpressure ? 1 : 0) << " success "
     << (record.metrics.success ? 1 : 0) << '\n';
  os << "end\n";
}

}  // namespace internal

namespace {

// Incremental v2 image writer shared by the bulk Save* entry points and the
// TraceWriter streaming API. Plain images buffer record frames and flush in
// fixed-size chunks; compressed images buffer one block's uncompressed
// payload, flush it as a checksummed frame and collect the index entry.
// Either way peak memory is O(chunk/block), not O(corpus), and the emitted
// bytes are identical to what the former whole-image writer produced.
class V2ImageWriter {
 public:
  V2ImageWriter(std::ostream& os, bool with_links, bool compress,
                size_t block_bytes)
      : os_(os),
        with_links_(with_links),
        compress_(compress),
        block_bytes_(std::max<size_t>(block_bytes, 1)) {}

  void WriteHeader(uint64_t record_count) {
    std::string header;
    header.append(internal::kMagicV2, sizeof(internal::kMagicV2));
    internal::PutU32(&header, internal::kVersionV2);
    const bool ext = with_links_ || compress_;
    internal::PutU32(&header, ext ? internal::kHeaderBytesV2Ext
                                  : internal::kHeaderBytesV2);
    internal::PutU64(&header, record_count);
    if (ext) {
      uint32_t flags = 0;
      if (with_links_) flags |= internal::kHeaderFlagLinkMatrix;
      if (compress_) flags |= internal::kHeaderFlagCompressedBlocks;
      internal::PutU32(&header, flags);
      internal::PutU32(&header, 0);  // reserved
    }
    WriteBytes(header);
  }

  void Append(const TraceRecord& record) {
    COSTREAM_CHECK_MSG(sim::ValidateLinkMatrix(record.cluster).empty(),
                       "trace writer: invalid cluster link matrix");
    body_.clear();
    internal::AppendRecordBody(record, with_links_, &body_);
    internal::PutU32(&buffer_, static_cast<uint32_t>(body_.size()));
    buffer_.append(body_);
    ++records_total_;
    if (compress_) {
      ++records_in_block_;
      if (buffer_.size() >= block_bytes_) FlushBlock();
    } else if (buffer_.size() >= kFlushChunkBytes) {
      WriteBytes(buffer_);
      buffer_.clear();
    }
  }

  // Flushes everything pending (final partial block plus index and trailer
  // for compressed images). Returns total bytes written.
  uint64_t Finish() {
    if (compress_) {
      FlushBlock();
      std::string tail;
      const uint64_t index_offset = offset_;
      for (const internal::IndexEntry& entry : index_) {
        internal::PutIndexEntry(&tail, entry);
      }
      const uint64_t index_checksum =
          common::Fnv1a64(tail.data(), tail.size());
      internal::PutU64(&tail, index_offset);
      internal::PutU64(&tail, static_cast<uint64_t>(index_.size()));
      internal::PutU64(&tail, index_checksum);
      tail.append(internal::kIndexMagic, sizeof(internal::kIndexMagic));
      WriteBytes(tail);
    } else if (!buffer_.empty()) {
      WriteBytes(buffer_);
      buffer_.clear();
    }
    return offset_;
  }

  uint64_t records_written() const { return records_total_; }

 private:
  static constexpr size_t kFlushChunkBytes = size_t{256} << 10;

  void WriteBytes(const std::string& bytes) {
    os_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    offset_ += bytes.size();
  }

  void FlushBlock() {
    if (records_in_block_ == 0) return;
    COSTREAM_CHECK_MSG(
        buffer_.size() <= internal::kMaxBlockUncompressedBytes,
        "trace writer: block exceeds the format's uncompressed cap");
    scratch_.clear();
    common::CompressBlock(buffer_.data(), buffer_.size(), &scratch_);
    // Store raw when the codec cannot shrink the payload, so the compressed
    // format is never larger than necessary per block.
    const bool codec = scratch_.size() < buffer_.size();
    const std::string& payload = codec ? scratch_ : buffer_;
    internal::BlockFrame frame;
    frame.compressed_bytes = static_cast<uint32_t>(payload.size());
    frame.uncompressed_bytes = static_cast<uint32_t>(buffer_.size());
    frame.record_count = static_cast<uint32_t>(records_in_block_);
    frame.flags = codec ? internal::kBlockFlagCodec : 0;
    frame.checksum = common::Fnv1a64(payload.data(), payload.size(),
                                     internal::FrameSeed(frame));
    internal::IndexEntry entry;
    entry.offset = offset_;
    entry.compressed_bytes = frame.compressed_bytes;
    entry.uncompressed_bytes = frame.uncompressed_bytes;
    entry.first_record = records_total_ - records_in_block_;
    entry.record_count = frame.record_count;
    entry.checksum = frame.checksum;
    index_.push_back(entry);
    std::string head;
    internal::PutBlockFrame(&head, frame);
    WriteBytes(head);
    WriteBytes(payload);
    SaveBlocksCounter().Add(1);
    buffer_.clear();
    records_in_block_ = 0;
  }

  std::ostream& os_;
  const bool with_links_;
  const bool compress_;
  const size_t block_bytes_;
  std::string body_;     // per-record scratch
  std::string buffer_;   // pending record frames (one chunk / one block)
  std::string scratch_;  // compressed payload scratch
  std::vector<internal::IndexEntry> index_;
  uint64_t offset_ = 0;
  uint64_t records_in_block_ = 0;
  uint64_t records_total_ = 0;
};

bool AnyLinkMatrices(const std::vector<TraceRecord>& records) {
  for (const TraceRecord& record : records) {
    if (record.cluster.has_link_matrix()) return true;
  }
  return false;
}

void SaveV2Common(std::ostream& os, const std::vector<TraceRecord>& records,
                  bool compress, size_t block_bytes) {
  obs::ScopedTimer timer(SaveLatency());
  // The extended (flag-bearing) header is emitted only when a flag is
  // actually needed, so plain link-free corpora keep producing images
  // bitwise identical to the original v2 encoding and stay loadable by
  // pre-extension readers.
  V2ImageWriter writer(os, AnyLinkMatrices(records), compress, block_bytes);
  writer.WriteHeader(static_cast<uint64_t>(records.size()));
  for (const TraceRecord& record : records) writer.Append(record);
  const uint64_t bytes = writer.Finish();
  SaveRecordsCounter().Add(records.size());
  SaveBytesCounter().Add(bytes);
}

bool LoadPlainRecords(internal::Cursor cur, const internal::HeaderInfo& header,
                      std::vector<TraceRecord>* records) {
  if (header.record_count > std::numeric_limits<uint32_t>::max() ||
      !cur.CountFits(static_cast<uint32_t>(header.record_count), 4)) {
    return false;
  }
  records->reserve(static_cast<size_t>(header.record_count));
  if (!internal::ParseRecordFrames(&cur, header.record_count,
                                   header.link_matrices(), records)) {
    return false;
  }
  return cur.remaining() == 0;  // trailing garbage
}

bool LoadCompressedBlocks(internal::Cursor cur, const char* base, size_t size,
                          const internal::HeaderInfo& header,
                          std::vector<TraceRecord>* records) {
  const bool link_fields = header.link_matrices();
  const unsigned char* ubase = reinterpret_cast<const unsigned char*>(base);
  std::vector<internal::IndexEntry> walked;
  std::string payload;
  uint64_t decoded = 0;
  while (decoded < header.record_count) {
    internal::IndexEntry entry;
    entry.offset = static_cast<uint64_t>(cur.p - ubase);
    internal::BlockFrame frame;
    if (!internal::GetBlockFrame(&cur, &frame)) return false;
    if (frame.record_count == 0 ||
        frame.record_count > header.record_count - decoded) {
      return false;
    }
    if (cur.remaining() < frame.compressed_bytes) return false;
    if (!internal::DecodeBlockPayload(cur.p, frame, &payload)) return false;
    cur.Skip(frame.compressed_bytes);
    internal::Cursor body{
        reinterpret_cast<const unsigned char*>(payload.data()),
        reinterpret_cast<const unsigned char*>(payload.data()) +
            payload.size()};
    if (!internal::ParseRecordFrames(&body, frame.record_count, link_fields,
                                     records)) {
      return false;
    }
    if (body.remaining() != 0) return false;  // frame's record count lied
    entry.compressed_bytes = frame.compressed_bytes;
    entry.uncompressed_bytes = frame.uncompressed_bytes;
    entry.first_record = decoded;
    entry.record_count = frame.record_count;
    entry.checksum = frame.checksum;
    walked.push_back(entry);
    decoded += frame.record_count;
  }
  // The trailing index must agree exactly with the blocks just walked: a
  // truncated, tampered or missing index fails the load even though every
  // record decoded (callers keep what was decoded before the error).
  internal::Trailer trailer;
  if (!internal::ParseTrailer(base, size, &trailer)) return false;
  if (trailer.num_blocks != walked.size()) return false;
  if (trailer.index_offset != static_cast<uint64_t>(cur.p - ubase)) {
    return false;
  }
  const uint64_t index_bytes =
      trailer.num_blocks * internal::kIndexEntryBytes;
  if (cur.remaining() != index_bytes + internal::kTrailerBytes) return false;
  if (common::Fnv1a64(cur.p, index_bytes) != trailer.index_checksum) {
    return false;
  }
  for (const internal::IndexEntry& expect : walked) {
    internal::IndexEntry got;
    if (!internal::GetIndexEntry(&cur, &got)) return false;
    if (got.offset != expect.offset ||
        got.compressed_bytes != expect.compressed_bytes ||
        got.uncompressed_bytes != expect.uncompressed_bytes ||
        got.first_record != expect.first_record ||
        got.record_count != expect.record_count ||
        got.checksum != expect.checksum) {
      return false;
    }
  }
  return true;
}

}  // namespace

void SaveTraces(std::ostream& os, const std::vector<TraceRecord>& records) {
  obs::ScopedTimer timer(SaveLatency());
  const auto start = os.tellp();
  os.precision(17);
  os << kHeader << '\n';
  for (const TraceRecord& record : records) {
    internal::AppendRecordTextV1(os, record);
  }
  SaveRecordsCounter().Add(records.size());
  const auto end = os.tellp();
  if (start >= 0 && end > start) {
    SaveBytesCounter().Add(static_cast<uint64_t>(end - start));
  }
}

void SaveTracesV2(std::ostream& os, const std::vector<TraceRecord>& records) {
  SaveV2Common(os, records, /*compress=*/false, /*block_bytes=*/0);
}

void SaveTracesV2Compressed(std::ostream& os,
                            const std::vector<TraceRecord>& records,
                            size_t block_bytes) {
  SaveV2Common(os, records, /*compress=*/true, block_bytes);
}

bool LoadTracesV2(const char* data, size_t size,
                  std::vector<TraceRecord>* records) {
  COSTREAM_CHECK(records != nullptr);
  records->clear();
  obs::ScopedTimer timer(LoadLatency());
  internal::Cursor cur{reinterpret_cast<const unsigned char*>(data),
                       reinterpret_cast<const unsigned char*>(data) + size};
  internal::HeaderInfo header;
  if (!internal::ParseV2Header(&cur, &header)) return false;
  const bool ok = header.compressed()
                      ? LoadCompressedBlocks(cur, data, size, header, records)
                      : LoadPlainRecords(cur, header, records);
  if (!ok) return false;
  LoadRecordsCounter().Add(records->size());
  LoadBytesCounter().Add(size);
  return true;
}

bool LoadTraces(std::istream& is, std::vector<TraceRecord>* records) {
  COSTREAM_CHECK(records != nullptr);
  records->clear();
  // Peek enough bytes to tell the formats apart, then hand the stream (v1)
  // or a fully buffered image (v2) to the right parser.
  char magic[sizeof(internal::kMagicV2)] = {};
  is.read(magic, sizeof(magic));
  const std::streamsize got = is.gcount();
  if (got == static_cast<std::streamsize>(sizeof(magic)) &&
      internal::IsV2Image(magic, sizeof(magic))) {
    std::string image(magic, sizeof(magic));
    std::ostringstream rest;
    rest << is.rdbuf();
    image.append(rest.str());
    return LoadTracesV2(image.data(), image.size(), records);
  }
  // Text path: un-read the probe bytes and parse lines.
  is.clear();
  for (std::streamsize i = got; i > 0; --i) {
    is.putback(magic[i - 1]);
    if (is.fail()) return false;
  }
  obs::ScopedTimer timer(LoadLatency());
  const bool ok = LoadTracesV1(is, records);
  if (ok) LoadRecordsCounter().Add(records->size());
  return ok;
}

bool SaveTracesToFile(const std::string& path,
                      const std::vector<TraceRecord>& records,
                      TraceFormat format) {
  const bool binary = format != TraceFormat::kTextV1;
  std::ofstream os(path, binary ? std::ios::out | std::ios::binary
                                : std::ios::out);
  if (!os) return false;
  switch (format) {
    case TraceFormat::kTextV1:
      SaveTraces(os, records);
      break;
    case TraceFormat::kBinaryV2:
      SaveTracesV2(os, records);
      break;
    case TraceFormat::kBinaryV2Compressed:
      SaveTracesV2Compressed(os, records);
      break;
  }
  return os.good();
}

bool LoadTracesFromFile(const std::string& path,
                        std::vector<TraceRecord>* records) {
  COSTREAM_CHECK(records != nullptr);
  // The file is memory-mapped so the v2 parser runs zero-copy over it; the
  // v1 text parser still needs a stream, which costs one copy.
  common::MappedFile file;
  if (!file.Open(path)) return false;
  if (internal::IsV2Image(file.data(), file.size())) {
    return LoadTracesV2(file.data(), file.size(), records);
  }
  std::istringstream text(std::string(file.data(), file.size()));
  return LoadTraces(text, records);
}

// --- TraceWriter -------------------------------------------------------------

struct TraceWriter::Impl {
  std::ofstream os;
  Options options;
  std::unique_ptr<V2ImageWriter> v2;  // null for the v1 text format
  uint64_t records = 0;
  bool open = false;
};

TraceWriter::TraceWriter() = default;

TraceWriter::~TraceWriter() {
  if (impl_ != nullptr && impl_->open) Finish();
}

bool TraceWriter::Open(const std::string& path) {
  return Open(path, Options{});
}

bool TraceWriter::Open(const std::string& path, const Options& options) {
  COSTREAM_CHECK_MSG(impl_ == nullptr || !impl_->open,
                     "TraceWriter::Open: writer already open");
  impl_ = std::make_unique<Impl>();
  impl_->options = options;
  const bool binary = options.format != TraceFormat::kTextV1;
  impl_->os.open(path, binary ? std::ios::out | std::ios::binary
                              : std::ios::out);
  if (!impl_->os) {
    impl_.reset();
    return false;
  }
  if (binary) {
    impl_->v2 = std::make_unique<V2ImageWriter>(
        impl_->os, options.link_sections,
        options.format == TraceFormat::kBinaryV2Compressed,
        options.block_bytes);
    // The true record count is unknown until Finish(), which back-patches
    // the u64 at byte offset 16.
    impl_->v2->WriteHeader(0);
  } else {
    impl_->os.precision(17);
    impl_->os << kHeader << '\n';
  }
  impl_->open = true;
  return impl_->os.good();
}

bool TraceWriter::Append(const TraceRecord& record) {
  COSTREAM_CHECK_MSG(impl_ != nullptr && impl_->open,
                     "TraceWriter::Append: writer not open");
  if (impl_->v2 != nullptr) {
    // Link matrices change every body's layout, so they must be declared at
    // Open time; a surprise linked record cannot be encoded mid-stream.
    if (!impl_->options.link_sections && record.cluster.has_link_matrix()) {
      return false;
    }
    impl_->v2->Append(record);
  } else {
    internal::AppendRecordTextV1(impl_->os, record);
  }
  ++impl_->records;
  return impl_->os.good();
}

bool TraceWriter::Finish() {
  if (impl_ == nullptr || !impl_->open) return false;
  impl_->open = false;
  if (impl_->v2 != nullptr) {
    const uint64_t bytes = impl_->v2->Finish();
    std::string count;
    internal::PutU64(&count, impl_->records);
    impl_->os.seekp(16);  // header record-count slot
    impl_->os.write(count.data(),
                    static_cast<std::streamsize>(count.size()));
    SaveBytesCounter().Add(bytes);
  } else {
    const auto end = impl_->os.tellp();
    if (end > 0) SaveBytesCounter().Add(static_cast<uint64_t>(end));
  }
  SaveRecordsCounter().Add(impl_->records);
  impl_->os.flush();
  const bool ok = impl_->os.good();
  impl_->os.close();
  return ok;
}

uint64_t TraceWriter::records_written() const {
  return impl_ != nullptr ? impl_->records : 0;
}

// --- InspectTraceFile --------------------------------------------------------

bool InspectTraceFile(const std::string& path, TraceFileInfo* info) {
  COSTREAM_CHECK(info != nullptr);
  *info = TraceFileInfo{};
  common::MappedFile file;
  if (!file.Open(path)) return false;
  info->file_bytes = file.size();

  if (internal::IsV2Image(file.data(), file.size())) {
    internal::Cursor cur{
        reinterpret_cast<const unsigned char*>(file.data()),
        reinterpret_cast<const unsigned char*>(file.data()) + file.size()};
    internal::HeaderInfo header;
    if (!internal::ParseV2Header(&cur, &header)) return false;
    info->version = 2;
    info->header_bytes = header.header_bytes;
    info->record_count = header.record_count;
    info->link_matrices = header.link_matrices();
    info->compressed = header.compressed();
    if (!header.compressed()) return true;

    // Locate and checksum-verify the trailing block index. Semantic
    // validation of the entries is deliberately not done here — the lint
    // rules (TR002+) and the mmap reader make their own judgments from the
    // raw entries this returns.
    internal::Trailer trailer;
    if (!internal::ParseTrailer(file.data(), file.size(), &trailer)) {
      return true;  // readable file, broken index: index_ok stays false
    }
    const uint64_t trailer_offset = file.size() - internal::kTrailerBytes;
    if (trailer.index_offset < header.header_bytes ||
        trailer.index_offset > trailer_offset) {
      return true;
    }
    const uint64_t index_bytes = trailer_offset - trailer.index_offset;
    if (index_bytes % internal::kIndexEntryBytes != 0 ||
        trailer.num_blocks != index_bytes / internal::kIndexEntryBytes) {
      return true;
    }
    const unsigned char* index_begin =
        reinterpret_cast<const unsigned char*>(file.data()) +
        trailer.index_offset;
    if (common::Fnv1a64(index_begin, index_bytes) != trailer.index_checksum) {
      return true;
    }
    internal::Cursor icur{index_begin, index_begin + index_bytes};
    info->blocks.reserve(static_cast<size_t>(trailer.num_blocks));
    for (uint64_t b = 0; b < trailer.num_blocks; ++b) {
      internal::IndexEntry entry;
      if (!internal::GetIndexEntry(&icur, &entry)) return true;
      TraceBlockInfo block;
      block.offset = entry.offset;
      block.compressed_bytes = entry.compressed_bytes;
      block.uncompressed_bytes = entry.uncompressed_bytes;
      block.first_record = entry.first_record;
      block.record_count = entry.record_count;
      block.checksum = entry.checksum;
      info->blocks.push_back(block);
    }
    info->index_offset = trailer.index_offset;
    info->index_ok = true;
    return true;
  }

  // v1 text: match the header line, then count record stanzas.
  const size_t header_len = sizeof(kHeader) - 1;
  if (file.size() < header_len ||
      std::memcmp(file.data(), kHeader, header_len) != 0 ||
      (file.size() > header_len && file.data()[header_len] != '\n')) {
    return false;
  }
  info->version = 1;
  info->header_bytes = header_len + 1;
  const char* data = file.data();
  const size_t size = file.size();
  size_t line_start = info->header_bytes;
  while (line_start < size) {
    const char* nl = static_cast<const char*>(
        std::memchr(data + line_start, '\n', size - line_start));
    const size_t line_len =
        (nl != nullptr ? static_cast<size_t>(nl - data) : size) - line_start;
    if (line_len == 6 && std::memcmp(data + line_start, "record", 6) == 0) {
      ++info->record_count;
    }
    if (nl == nullptr) break;
    line_start = static_cast<size_t>(nl - data) + 1;
  }
  return true;
}

}  // namespace costream::workload
