#include "workload/trace_io.h"

#include <cerrno>
#include <charconv>
#include <cinttypes>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <type_traits>

#include "common/check.h"

namespace costream::workload {

namespace {

using dsps::OperatorDescriptor;
using dsps::OperatorType;

constexpr char kHeader[] = "#costream-traces v1";

void WriteOperator(std::ostream& os, int id, const OperatorDescriptor& op) {
  os << "op " << id << ' ' << static_cast<int>(op.type)
     << " win=" << op.tuple_width_in << " wout=" << op.tuple_width_out
     << " rate=" << op.input_event_rate
     << " ff=" << static_cast<int>(op.filter_function)
     << " lit=" << static_cast<int>(op.literal_data_type)
     << " wt=" << static_cast<int>(op.window.type)
     << " wp=" << static_cast<int>(op.window.policy)
     << " wsz=" << op.window.size << " wsl=" << op.window.slide
     << " af=" << static_cast<int>(op.aggregate_function)
     << " gb=" << static_cast<int>(op.group_by_type)
     << " at=" << static_cast<int>(op.aggregate_data_type)
     << " jk=" << static_cast<int>(op.join_key_type)
     << " par=" << op.parallelism << " sel=" << op.selectivity
     << " fi=" << op.frac_int
     << " fd=" << op.frac_double << " fs=" << op.frac_string << " types=";
  for (size_t i = 0; i < op.tuple_data_types.size(); ++i) {
    if (i > 0) os << ',';
    os << static_cast<int>(op.tuple_data_types[i]);
  }
  if (op.tuple_data_types.empty()) os << '-';
  os << '\n';
}

// Parses "key=value" into the value part; aborts the record on mismatch.
bool ConsumeKey(std::istringstream& is, const char* key, std::string* value) {
  std::string token;
  if (!(is >> token)) return false;
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) return false;
  *value = token.substr(prefix.size());
  return true;
}

// Parses the whole value token into T; rejects trailing garbage ("3x"),
// fractional text for integral fields ("3.7"), and out-of-range values.
// Integral fields go through int64_t rather than double so values above
// 2^53 are not silently rounded.
template <typename T>
bool ConsumeNumeric(std::istringstream& is, const char* key, T* out) {
  std::string value;
  if (!ConsumeKey(is, key, &value)) return false;
  if (value.empty()) return false;
  const char* begin = value.data();
  const char* end = begin + value.size();
  if constexpr (std::is_integral_v<T>) {
    int64_t parsed = 0;
    const auto [ptr, ec] = std::from_chars(begin, end, parsed);
    if (ec != std::errc() || ptr != end) return false;
    if (parsed < static_cast<int64_t>(std::numeric_limits<T>::min()) ||
        parsed > static_cast<int64_t>(std::numeric_limits<T>::max())) {
      return false;
    }
    *out = static_cast<T>(parsed);
  } else {
    errno = 0;
    char* parse_end = nullptr;
    const double parsed = std::strtod(begin, &parse_end);
    if (parse_end != end || errno == ERANGE) return false;
    *out = static_cast<T>(parsed);
  }
  return true;
}

bool ParseOperator(const std::string& line, int* id, OperatorDescriptor* op) {
  std::istringstream is(line);
  std::string tag;
  int type = 0;
  if (!(is >> tag >> *id >> type) || tag != "op") return false;
  op->type = static_cast<OperatorType>(type);
  int ff = 0, lit = 0, wt = 0, wp = 0, af = 0, gb = 0, at = 0, jk = 0;
  if (!ConsumeNumeric(is, "win", &op->tuple_width_in)) return false;
  if (!ConsumeNumeric(is, "wout", &op->tuple_width_out)) return false;
  if (!ConsumeNumeric(is, "rate", &op->input_event_rate)) return false;
  if (!ConsumeNumeric(is, "ff", &ff)) return false;
  if (!ConsumeNumeric(is, "lit", &lit)) return false;
  if (!ConsumeNumeric(is, "wt", &wt)) return false;
  if (!ConsumeNumeric(is, "wp", &wp)) return false;
  if (!ConsumeNumeric(is, "wsz", &op->window.size)) return false;
  if (!ConsumeNumeric(is, "wsl", &op->window.slide)) return false;
  if (!ConsumeNumeric(is, "af", &af)) return false;
  if (!ConsumeNumeric(is, "gb", &gb)) return false;
  if (!ConsumeNumeric(is, "at", &at)) return false;
  if (!ConsumeNumeric(is, "jk", &jk)) return false;
  if (!ConsumeNumeric(is, "par", &op->parallelism)) return false;
  if (!ConsumeNumeric(is, "sel", &op->selectivity)) return false;
  if (!ConsumeNumeric(is, "fi", &op->frac_int)) return false;
  if (!ConsumeNumeric(is, "fd", &op->frac_double)) return false;
  if (!ConsumeNumeric(is, "fs", &op->frac_string)) return false;
  op->filter_function = static_cast<dsps::FilterFunction>(ff);
  op->literal_data_type = static_cast<dsps::DataType>(lit);
  op->window.type = static_cast<dsps::WindowType>(wt);
  op->window.policy = static_cast<dsps::WindowPolicy>(wp);
  op->aggregate_function = static_cast<dsps::AggregateFunction>(af);
  op->group_by_type = static_cast<dsps::GroupByType>(gb);
  op->aggregate_data_type = static_cast<dsps::DataType>(at);
  op->join_key_type = static_cast<dsps::DataType>(jk);

  std::string types;
  if (!ConsumeKey(is, "types", &types)) return false;
  op->tuple_data_types.clear();
  if (types != "-") {
    std::istringstream ts(types);
    std::string item;
    while (std::getline(ts, item, ',')) {
      op->tuple_data_types.push_back(
          static_cast<dsps::DataType>(std::atoi(item.c_str())));
    }
  }
  return true;
}

}  // namespace

void SaveTraces(std::ostream& os, const std::vector<TraceRecord>& records) {
  os.precision(17);
  os << kHeader << '\n';
  for (const TraceRecord& record : records) {
    os << "record\n";
    os << "template " << static_cast<int>(record.template_kind) << " filters "
       << record.num_filters << '\n';
    for (int i = 0; i < record.query.num_operators(); ++i) {
      WriteOperator(os, i, record.query.op(i));
    }
    for (const auto& [from, to] : record.query.edges()) {
      os << "edge " << from << ' ' << to << '\n';
    }
    for (const sim::HardwareNode& node : record.cluster.nodes) {
      os << "node " << node.cpu_pct << ' ' << node.ram_mb << ' '
         << node.bandwidth_mbits << ' ' << node.latency_ms << '\n';
    }
    os << "placement";
    for (int n : record.placement) os << ' ' << n;
    os << '\n';
    os << "metrics T " << record.metrics.throughput << " Lp "
       << record.metrics.processing_latency_ms << " Le "
       << record.metrics.e2e_latency_ms << " bp "
       << (record.metrics.backpressure ? 1 : 0) << " success "
       << (record.metrics.success ? 1 : 0) << '\n';
    os << "end\n";
  }
}

bool LoadTraces(std::istream& is, std::vector<TraceRecord>* records) {
  COSTREAM_CHECK(records != nullptr);
  records->clear();
  std::string line;
  if (!std::getline(is, line) || line != kHeader) return false;

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line != "record") return false;
    TraceRecord record;
    std::vector<std::pair<int, OperatorDescriptor>> ops;
    std::vector<std::pair<int, int>> edges;
    bool closed = false;
    while (std::getline(is, line)) {
      if (line == "end") {
        closed = true;
        break;
      }
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "template") {
        int t = 0;
        std::string filters_tag;
        if (!(ls >> t >> filters_tag >> record.num_filters) ||
            filters_tag != "filters") {
          return false;
        }
        record.template_kind = static_cast<QueryTemplate>(t);
      } else if (tag == "op") {
        int id = 0;
        OperatorDescriptor op;
        if (!ParseOperator(line, &id, &op)) return false;
        ops.emplace_back(id, op);
      } else if (tag == "edge") {
        int from = 0, to = 0;
        if (!(ls >> from >> to)) return false;
        edges.emplace_back(from, to);
      } else if (tag == "node") {
        sim::HardwareNode node;
        if (!(ls >> node.cpu_pct >> node.ram_mb >> node.bandwidth_mbits >>
              node.latency_ms)) {
          return false;
        }
        record.cluster.nodes.push_back(node);
      } else if (tag == "placement") {
        int n = 0;
        while (ls >> n) record.placement.push_back(n);
      } else if (tag == "metrics") {
        std::string k1, k2, k3, k4, k5;
        int bp = 0, success = 0;
        if (!(ls >> k1 >> record.metrics.throughput >> k2 >>
              record.metrics.processing_latency_ms >> k3 >>
              record.metrics.e2e_latency_ms >> k4 >> bp >> k5 >> success)) {
          return false;
        }
        record.metrics.backpressure = bp != 0;
        record.metrics.success = success != 0;
      } else {
        return false;
      }
    }
    if (!closed) return false;
    // Operators must arrive in id order for ids to stay stable.
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].first != static_cast<int>(i)) return false;
      record.query.AddOperator(ops[i].second);
    }
    for (const auto& [from, to] : edges) record.query.AddEdge(from, to);
    if (!record.query.Validate().empty()) return false;
    if (sim::ValidatePlacement(record.query, record.cluster, record.placement)
            .empty() == false) {
      return false;
    }
    records->push_back(std::move(record));
  }
  return true;
}

bool SaveTracesToFile(const std::string& path,
                      const std::vector<TraceRecord>& records) {
  std::ofstream os(path);
  if (!os) return false;
  SaveTraces(os, records);
  return os.good();
}

bool LoadTracesFromFile(const std::string& path,
                        std::vector<TraceRecord>* records) {
  std::ifstream is(path);
  if (!is) return false;
  return LoadTraces(is, records);
}

}  // namespace costream::workload
