#ifndef COSTREAM_WORKLOAD_GRIDS_H_
#define COSTREAM_WORKLOAD_GRIDS_H_

#include <vector>

#include "dsps/types.h"

namespace costream::workload {

// Hardware feature grids (paper Table II / Table IV / Table V). Clusters are
// sampled by picking each node's features uniformly from these grids.
struct HardwareGrid {
  std::vector<double> cpu_pct;
  std::vector<double> ram_mb;
  std::vector<double> bandwidth_mbits;
  std::vector<double> latency_ms;

  // Geo-distribution axis: probability that a generated cluster is a
  // multi-region topology carrying a per-link WAN matrix (nodes are split
  // into regions; cross-region links are capped by the WAN profile). The
  // default of 0 skips all geo sampling, keeping legacy corpora bitwise
  // reproducible.
  double geo_probability = 0.0;
  std::vector<int> geo_region_choices = {2, 3};
  std::vector<double> wan_bandwidth_mbits = {50.0, 100.0, 200.0};
  std::vector<double> wan_latency_ms = {40.0, 80.0, 160.0};

  // Training grid of Table II.
  static HardwareGrid Training();
  // Unseen in-range evaluation grid of Table IV (A) (Exp 3).
  static HardwareGrid Interpolation();
};

// Workload feature grids (paper Table II).
struct WorkloadGrid {
  std::vector<double> event_rate_linear;
  std::vector<double> event_rate_two_way;
  std::vector<double> event_rate_three_way;
  std::vector<int> tuple_width;  // number of attributes, [3 .. 10]
  std::vector<dsps::FilterFunction> filter_functions;
  std::vector<dsps::DataType> literal_types;
  std::vector<dsps::WindowType> window_types;
  std::vector<dsps::WindowPolicy> window_policies;
  std::vector<double> window_count_sizes;  // tuples
  std::vector<double> window_time_sizes;   // seconds
  double slide_fraction_min = 0.3;  // slide = fraction * window length
  double slide_fraction_max = 0.7;
  std::vector<dsps::DataType> join_key_types;
  std::vector<dsps::AggregateFunction> aggregate_functions;
  std::vector<dsps::GroupByType> group_by_types;
  std::vector<dsps::DataType> aggregate_data_types;

  static WorkloadGrid Training();
};

// Distribution of the number of filters per query (paper Section VI: 35% of
// queries have 1, 34% have 2, 24% have 3, 6% have 4 filters).
inline constexpr double kFilterCountWeights[] = {0.35, 0.34, 0.24, 0.06};

}  // namespace costream::workload

#endif  // COSTREAM_WORKLOAD_GRIDS_H_
