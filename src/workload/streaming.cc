#include "workload/streaming.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace costream::workload {

StreamingCorpus::StreamingCorpus(TraceReader* reader,
                                 std::vector<int64_t> record_indices,
                                 sim::Metric metric,
                                 const StreamingCorpusOptions& options)
    : reader_(reader), metric_(metric), options_(options) {
  COSTREAM_CHECK(reader_ != nullptr);
  static obs::Histogram& scan_us =
      obs::GetHistogram("workload.streaming.scan_us");
  obs::ScopedTimer timer(scan_us);

  const bool regression = sim::IsRegressionMetric(metric_);
  const size_t n = record_indices.size();
  // Visit records in file order so each compressed block decodes exactly
  // once during the scan; keep/label land in slots addressed by the split
  // position, so the sample order below is the split order regardless.
  std::vector<size_t> by_file(n);
  std::iota(by_file.begin(), by_file.end(), size_t{0});
  std::sort(by_file.begin(), by_file.end(), [&](size_t a, size_t b) {
    return record_indices[a] < record_indices[b];
  });
  std::vector<char> keep(n, 0);
  std::vector<char> label(n, 0);
  for (size_t p : by_file) {
    TraceRecord record;
    COSTREAM_CHECK(reader_->Get(record_indices[p], &record));
    if (regression && !record.metrics.success) continue;
    keep[p] = 1;
    // Regression samples leave TrainSample::label false (FeaturizeRecord
    // never sets it), so they must not count as positives here either.
    if (!regression && sim::BinaryLabel(record.metrics, metric_)) {
      label[p] = 1;
    }
  }
  sample_to_record_.reserve(n);
  for (size_t p = 0; p < n; ++p) {
    if (!keep[p]) {
      ++dropped_;
      continue;
    }
    sample_to_record_.push_back(record_indices[p]);
    positives_ += label[p];
  }
}

StreamingCorpus::StreamingCorpus(TraceReader* reader,
                                 std::vector<int64_t> record_indices,
                                 sim::Metric metric)
    : StreamingCorpus(reader, std::move(record_indices), metric,
                      StreamingCorpusOptions{}) {}

void StreamingCorpus::Fetch(const int64_t* ids, int count,
                            const core::TrainSample** out) {
  static obs::Counter& fetched =
      obs::GetCounter("workload.streaming.samples_fetched");
  COSTREAM_CHECK(count >= 0);
  std::vector<int64_t> record_ids(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    COSTREAM_CHECK(ids[i] >= 0 && ids[i] < size());
    record_ids[static_cast<size_t>(i)] =
        sample_to_record_[static_cast<size_t>(ids[i])];
  }
  // Decode the batch's blocks concurrently before the featurize pass, which
  // then hits the cache (or re-decodes if evicted — slower, never wrong).
  reader_->Prefetch(record_ids.data(), record_ids.size());
  buffer_.assign(static_cast<size_t>(count), core::TrainSample{});
  std::atomic<bool> ok{true};
  common::ParallelFor(options_.num_threads, count, [&](int i) {
    TraceRecord record;
    if (!reader_->Get(record_ids[static_cast<size_t>(i)], &record)) {
      ok.store(false, std::memory_order_relaxed);
      return;
    }
    // The scan already established this record survives featurization.
    if (!FeaturizeRecord(record, metric_, options_.mode,
                         &buffer_[static_cast<size_t>(i)])) {
      ok.store(false, std::memory_order_relaxed);
    }
  });
  // A block that validated at Open can only fail here if the file mutated
  // underneath the mapping; training on silently-missing samples would be
  // worse than dying.
  COSTREAM_CHECK(ok.load());
  for (int i = 0; i < count; ++i) out[i] = &buffer_[static_cast<size_t>(i)];
  fetched.Add(static_cast<uint64_t>(count));
}

}  // namespace costream::workload
