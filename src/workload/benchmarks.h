#ifndef COSTREAM_WORKLOAD_BENCHMARKS_H_
#define COSTREAM_WORKLOAD_BENCHMARKS_H_

#include "nn/random.h"
#include "workload/corpus.h"

namespace costream::workload {

// Real-world benchmark queries from DSPBench [36] used by Exp 6. The paper
// runs each benchmark 100 times with random event rates and placements; the
// queries carry data distributions unlike the synthetic training workload
// (skewed selectivities, off-grid rates, and — for the smart grid — a window
// length outside the training range).
enum class BenchmarkQuery {
  // Click/impression streams joined in a window after filtering the clicks.
  kAdvertisement,
  // Sensor stream -> sliding moving average -> spike filter (low, skewed
  // selectivity).
  kSpikeDetection,
  // Global energy consumption: sliding time window aggregate without
  // group-by; window length (30 s) extrapolates beyond the training grid.
  kSmartGridGlobal,
  // Local energy consumption: the same window grouped by household.
  kSmartGridLocal,
};

const char* ToString(BenchmarkQuery q);

// Builds one randomized instance of the benchmark query (random rates /
// skewed selectivities / random conforming placement on a random cluster)
// and labels it with the fluid engine.
TraceRecord MakeBenchmarkTrace(BenchmarkQuery q, const GeneratorConfig& config,
                               nn::Rng& rng);

}  // namespace costream::workload

#endif  // COSTREAM_WORKLOAD_BENCHMARKS_H_
