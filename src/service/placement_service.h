#ifndef COSTREAM_SERVICE_PLACEMENT_SERVICE_H_
#define COSTREAM_SERVICE_PLACEMENT_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/ensemble.h"
#include "dsps/query_graph.h"
#include "nn/quantized.h"
#include "service/load_ledger.h"
#include "sim/cost_metrics.h"
#include "sim/hardware.h"

namespace costream::service {

class ScoringEngine;

// How a query's initial placement is chosen at admission.
enum class AdmissionPolicy {
  // Learned scoring (PlacementScorer over the load-adjusted cluster view)
  // with negotiated-congestion penalties. The production policy.
  kLearned,
  // Co-locate every operator on the first node (by index) with enough
  // residual capacity, falling back to the least-utilized node. The baseline
  // the convergence property test and bench compare against.
  kGreedyFirstFit,
};

struct ServiceConfig {
  // Optimization objective; throughput is maximized, latencies minimized.
  sim::Metric target = sim::Metric::kThroughput;
  AdmissionPolicy policy = AdmissionPolicy::kLearned;
  // Candidate enumeration per (re-)placement.
  int num_candidates = 16;
  int num_bins = 3;
  // Base seed; per-placement enumeration seeds are splitmix64-derived from
  // (seed, query id, iteration), so decisions depend on nothing but the
  // admission history — never on thread count or wall clock.
  uint64_t seed = 1;
  // Worker threads for candidate scoring (<= 0: all hardware threads).
  // Results are bitwise-identical for every value (per-candidate slots,
  // selection in enumeration order).
  int num_threads = 0;
  // Rip-up iteration cap of Converge().
  int max_iterations = 16;
  // Scales the congestion term when penalizing candidate scores.
  double penalty_weight = 1.0;
  // Interval pre-pass (verify/interval_analysis.h): candidates whose proven
  // memory lower bound already exceeds a node's crash threshold on the bare
  // cluster skip GEMM scoring (counted in service.scoring.pruned). Decisions
  // are bitwise-unchanged by construction on the full-precision path: proven-
  // crash candidates are demoted below every unproven candidate in BOTH
  // modes, so their scores can never influence which candidate wins, and
  // they are only scored (and can only win) when every candidate is proven
  // to crash.
  bool interval_pruning = true;
  LedgerConfig ledger;

  // --- Scoring fast path (service/scoring_engine.h) ---
  // Pools per-structure scoring workspaces and forward plans across requests
  // and caches candidate scores on (query, view, co-location signature).
  // Decisions stay bitwise identical to the unpooled path.
  bool fast_path = true;
  // Rank candidates with the low-precision tier (bf16/int8 weight copies)
  // and re-score only the top rank_top_k in full precision. Changes which
  // candidates reach the full model — decisions agree with the
  // full-precision path within the benched agreement gate — so it is off by
  // default; latency-sensitive deployments opt in.
  bool quantized_ranking = false;
  nn::QuantKind quant_kind = nn::QuantKind::kInt8;
  int rank_top_k = 4;
  // Ensemble members the ranking tier snapshots (0 = all; a subset is
  // cheaper but measurably costs top-1 agreement).
  int rank_members = 0;
  // Doubling rounds the infeasible-head fallback may widen the re-scored
  // set by before resolving best-any over what it scored (< 0: scan to the
  // exact full-precision best-any). See FastPathConfig::rank_widen_rounds.
  int rank_widen_rounds = 2;
  bool candidate_cache = true;
};

struct AdmitResult {
  int64_t id = -1;
  sim::Placement placement;
  // Prediction of the target ensemble for the chosen candidate (on the
  // load-adjusted view at admission time).
  double predicted = 0.0;
  // `predicted` adjusted by the congestion penalties of the used nodes —
  // what the admission actually minimized/maximized.
  double penalized = 0.0;
  // True when the chosen candidate survived the success/backpressure filter.
  bool feasible = false;
  int candidates_evaluated = 0;
};

struct ConvergeResult {
  // Rip-up iterations executed (0 when the ledger was already clean).
  int iterations = 0;
  // Query re-placements across all iterations.
  int ripups = 0;
  bool converged = false;
  // Nodes still overflowed when the loop stopped (empty iff converged).
  std::vector<int> overflowed_nodes;
};

// Aggregate steady-state throughput of the live queries, each evaluated on
// the cluster derated by everyone else's demand.
struct AggregateThroughput {
  int queries = 0;          // queries actually evaluated (<= live)
  double predicted = 0.0;   // sum of learned predictions
  double des = 0.0;         // sum of DES sink throughputs
};

// Long-lived multi-tenant placement service (ROADMAP: negotiated-congestion
// re-placement). Queries arrive (Admit) and depart (Retire) continuously;
// node load is shared state in a ClusterLoadLedger; and contended nodes
// reprice over Converge() iterations: every overflowed node's history and
// overflow penalties escalate, the queries touching it are ripped up, and
// each is re-placed with the learned scorer against the load-adjusted view —
// candidates using expensive nodes score worse, so queries negotiate their
// way off contended hardware until no node exceeds capacity or the iteration
// cap hits.
//
// All decisions are deterministic in (config.seed, admission history) and
// bitwise-identical for every num_threads.
class PlacementService {
 public:
  // `target` must be a regression ensemble matching `config.target`;
  // `success` / `backpressure` may be null to skip the sanity filter. The
  // ensembles must outlive the service.
  PlacementService(sim::Cluster cluster, const core::Ensemble* target,
                   const core::Ensemble* success,
                   const core::Ensemble* backpressure,
                   const ServiceConfig& config);
  ~PlacementService();

  // Places `query` against the current loaded view and records it in the
  // ledger. The query is copied (re-placement needs it after the caller
  // moves on).
  AdmitResult Admit(const dsps::QueryGraph& query);

  // Async admission queue. AdmitAsync enqueues `query` and returns the id it
  // will be admitted under (assigned at submission, so sync and async
  // admissions interleave deterministically); DrainAdmissions then admits
  // every queued query in FIFO order against ONE consistent snapshot of the
  // loaded view, batching all same-structure requests' candidates into
  // shared ranking GEMMs. Ledger updates still apply sequentially per
  // request, so later requests in a batch see earlier ones through the
  // congestion penalties; only the derated node features are shared. A batch
  // of one is bitwise identical to a synchronous Admit.
  int64_t AdmitAsync(const dsps::QueryGraph& query);
  std::vector<AdmitResult> DrainAdmissions();
  int pending_admissions() const { return static_cast<int>(pending_.size()); }

  // Admits `query` at a forced `placement` (no scoring). Used to replay
  // recorded decisions and to build adversarial contention fixtures.
  AdmitResult AdmitWithPlacement(const dsps::QueryGraph& query,
                                 const sim::Placement& placement);

  // Removes the query from the service and its demand from the ledger.
  // Returns false when `id` is not live.
  bool Retire(int64_t id);

  // Rip-up-and-re-place until no node exceeds capacity or
  // config.max_iterations is reached.
  ConvergeResult Converge();

  // Evaluates up to `max_queries` live queries (deterministic stride over the
  // ascending id order; <= 0 means all): the learned prediction and a DES run
  // of `des_duration_s` simulated seconds, both on the cluster derated by the
  // other queries' demand.
  AggregateThroughput MeasureAggregateThroughput(int max_queries,
                                                 double des_duration_s) const;

  const ClusterLoadLedger& ledger() const { return ledger_; }
  const ServiceConfig& config() const { return config_; }
  int live_queries() const { return ledger_.live_queries(); }
  // Ids of the live queries, ascending.
  std::vector<int64_t> QueryIds() const { return ledger_.QueryIds(); }
  // `id` must be live.
  const sim::Placement& PlacementOf(int64_t id) const;
  const dsps::QueryGraph& QueryOf(int64_t id) const;

 private:
  struct Entry {
    dsps::QueryGraph query;
    sim::Placement placement;
  };

  struct Choice {
    sim::Placement placement;
    double predicted = 0.0;
    double penalized = 0.0;
    bool feasible = false;
    int candidates_evaluated = 0;
  };

  // One learned (or greedy) placement decision for `query` against `view`.
  Choice PlaceOne(const dsps::QueryGraph& query, const sim::Cluster& view,
                  uint64_t salt) const;
  // Interval pre-pass: mask[i] is 1 when candidate i is *proven* to crash a
  // node (memory lower bound above the crash threshold) on the bare cluster
  // with no background load — a query-intrinsic property, so the mask never
  // depends on the admission history.
  std::vector<char> ProvenCrashMask(
      const dsps::QueryGraph& query,
      const std::vector<sim::Placement>& candidates) const;
  // Scores `candidates` through the engine (ranked non-null: quantized
  // pre-ranking results) and selects under the congestion-penalized
  // objective, in enumeration order. `demoted` (the proven-crash mask, may
  // be null) ranks below every unproven candidate; with interval_pruning on,
  // demoted candidates are not scored at all unless every candidate is
  // demoted.
  Choice SelectCandidates(const dsps::QueryGraph& query,
                          const sim::Cluster& view,
                          const std::vector<sim::Placement>& candidates,
                          const std::vector<double>* ranked,
                          const std::vector<char>* demoted) const;
  Choice PlaceGreedyFirstFit(const dsps::QueryGraph& query) const;
  // Congestion multiplier of a candidate: the ledger's present-congestion
  // price of adding the candidate's steady-state demand, scaled by
  // config.penalty_weight.
  double CandidatePenaltyFactor(const dsps::QueryGraph& query,
                                const sim::Placement& placement,
                                const sim::BackgroundLoad& total) const;
  AdmitResult Record(int64_t id, const dsps::QueryGraph& query,
                     const Choice& choice);

  const core::Ensemble* target_;
  const core::Ensemble* success_;
  const core::Ensemble* backpressure_;
  ServiceConfig config_;
  ClusterLoadLedger ledger_;
  std::map<int64_t, Entry> entries_;
  int64_t next_id_ = 0;
  std::vector<std::pair<int64_t, dsps::QueryGraph>> pending_;
  // Cross-request scoring state (pooled workspaces, candidate cache,
  // quantized weight snapshots). Mutable because placement decisions are
  // logically const; the service's public API is externally serialized.
  mutable std::unique_ptr<ScoringEngine> engine_;
};

}  // namespace costream::service

#endif  // COSTREAM_SERVICE_PLACEMENT_SERVICE_H_
