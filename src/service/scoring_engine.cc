#include "service/scoring_engine.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/featurizer.h"
#include "obs/metrics.h"

namespace costream::service {

namespace {

// FNV-1a 64; doubles hash by bit pattern so a hash-equal view is bit-equal.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffull;
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t FnvMixDouble(uint64_t h, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return FnvMix(h, bits);
}

// Hash over everything the joint-graph STRUCTURE depends on: operator kinds,
// dataflow edges, and the cluster size. Two queries agreeing here produce
// identically shaped graphs and forward plans for every candidate, so their
// scoring state is interchangeable (features are rebound per request).
uint64_t StructureHash(const core::JointGraph& op_graph,
                       const sim::Cluster& view) {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, static_cast<uint64_t>(op_graph.nodes.size()));
  for (const core::JointNode& node : op_graph.nodes) {
    h = FnvMix(h, static_cast<uint64_t>(node.kind));
  }
  for (const auto& [from, to] : op_graph.dataflow_edges) {
    h = FnvMix(h, static_cast<uint64_t>(from));
    h = FnvMix(h, static_cast<uint64_t>(to));
  }
  h = FnvMix(h, static_cast<uint64_t>(view.num_nodes()));
  return h;
}

// Hash over the score-relevant CONTENTS of one (query, view) pair: operator
// feature values plus every hardware node's raw features. Candidate scores
// are pure functions of this plus the candidate signature, so the cache is
// valid exactly as long as this key is.
uint64_t SessionKey(const core::JointGraph& op_graph,
                    const sim::Cluster& view) {
  uint64_t h = kFnvOffset;
  for (const core::JointNode& node : op_graph.nodes) {
    h = FnvMix(h, static_cast<uint64_t>(node.features.size()));
    for (double f : node.features) h = FnvMixDouble(h, f);
  }
  for (const sim::HardwareNode& node : view.nodes) {
    h = FnvMixDouble(h, node.cpu_pct);
    h = FnvMixDouble(h, node.ram_mb);
    h = FnvMixDouble(h, node.bandwidth_mbits);
    h = FnvMixDouble(h, node.latency_ms);
  }
  return h;
}

// Equivalence classes of the view's hardware nodes: nodes with identical raw
// features get the same class id (first-occurrence order). Swapping a
// candidate's node for a same-class one yields an element-identical joint
// graph, so such candidates share one cache entry ("interchangeable nodes").
void HostClasses(const sim::Cluster& view, std::vector<int>& classes) {
  classes.assign(view.num_nodes(), -1);
  std::vector<int> reps;
  for (int i = 0; i < view.num_nodes(); ++i) {
    const sim::HardwareNode& a = view.nodes[i];
    for (size_t c = 0; c < reps.size(); ++c) {
      const sim::HardwareNode& b = view.nodes[reps[c]];
      if (a.cpu_pct == b.cpu_pct && a.ram_mb == b.ram_mb &&
          a.bandwidth_mbits == b.bandwidth_mbits &&
          a.latency_ms == b.latency_ms) {
        classes[i] = static_cast<int>(c);
        break;
      }
    }
    if (classes[i] < 0) {
      classes[i] = static_cast<int>(reps.size());
      reps.push_back(i);
    }
  }
}

// Canonical candidate signature: the per-operator host slot in first-use
// order (the co-location pattern, exactly how Bind/BuildJointGraph number
// hosts) followed by each slot's host class. Equal signatures imply
// element-identical joint graphs under the current view, hence bitwise-equal
// scores.
void BuildSignature(const sim::Placement& placement,
                    const std::vector<int>& host_class,
                    std::vector<int>& hw_slot_scratch,
                    std::vector<int32_t>& sig) {
  const int n = static_cast<int>(placement.size());
  sig.clear();
  sig.reserve(2 * n + 2);
  hw_slot_scratch.assign(host_class.size(), -1);
  std::vector<int32_t> slot_class;
  for (int op = 0; op < n; ++op) {
    const int hw = placement[op];
    if (hw_slot_scratch[hw] < 0) {
      hw_slot_scratch[hw] = static_cast<int>(slot_class.size());
      slot_class.push_back(static_cast<int32_t>(host_class[hw]));
    }
    sig.push_back(static_cast<int32_t>(hw_slot_scratch[hw]));
  }
  sig.push_back(-1);
  sig.insert(sig.end(), slot_class.begin(), slot_class.end());
}

uint64_t HashSignature(const std::vector<int32_t>& sig) {
  uint64_t h = kFnvOffset;
  for (int32_t v : sig) h = FnvMix(h, static_cast<uint64_t>(
                                          static_cast<uint32_t>(v)));
  return h;
}

obs::Counter& CacheHitCounter() {
  static obs::Counter& c = obs::GetCounter("service.scoring.cache_hits");
  return c;
}
obs::Counter& CacheMissCounter() {
  static obs::Counter& c = obs::GetCounter("service.scoring.cache_misses");
  return c;
}
obs::Counter& RankCacheHitCounter() {
  static obs::Counter& c = obs::GetCounter("service.scoring.rank_cache_hits");
  return c;
}
obs::Counter& RankCacheMissCounter() {
  static obs::Counter& c =
      obs::GetCounter("service.scoring.rank_cache_misses");
  return c;
}

// Content hash of a candidate list (placements as raw op -> node vectors).
uint64_t CandidatesHash(const std::vector<sim::Placement>& candidates) {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, static_cast<uint64_t>(candidates.size()));
  for (const sim::Placement& p : candidates) {
    h = FnvMix(h, static_cast<uint64_t>(p.size()));
    for (int node : p) h = FnvMix(h, static_cast<uint64_t>(node));
  }
  return h;
}

}  // namespace

ScoringEngine::ScoringEngine(const core::Ensemble* target,
                             const core::Ensemble* success,
                             const core::Ensemble* backpressure,
                             const FastPathConfig& config)
    : target_(target),
      success_(success),
      backpressure_(backpressure),
      config_(config) {
  COSTREAM_CHECK(target_ != nullptr);
  COSTREAM_CHECK(config_.rank_top_k > 0);
}

ScoringEngine::~ScoringEngine() = default;

bool ScoringEngine::RankingActive(int num_candidates) const {
  return config_.enabled && config_.quantized_ranking &&
         num_candidates > config_.rank_top_k &&
         placement::QuantizedRanker::CanRank(*target_);
}

const placement::QuantizedEnsemble& ScoringEngine::QuantizedTarget() {
  if (quantized_ == nullptr) {
    quantized_ = std::make_unique<placement::QuantizedEnsemble>(
        *target_, config_.quant_kind, config_.rank_members);
  }
  return *quantized_;
}

ScoringEngine::StructurePool& ScoringEngine::PoolFor(uint64_t structure_hash) {
  // Backstop against unbounded growth under adversarial structure churn; a
  // real service sees a handful of query shapes.
  if (pools_.size() > 64 && pools_.find(structure_hash) == pools_.end()) {
    pools_.clear();
  }
  return pools_[structure_hash];
}

void ScoringEngine::RankRequests(
    const std::vector<const dsps::QueryGraph*>& queries,
    const std::vector<const std::vector<sim::Placement>*>& candidates,
    const sim::Cluster& view, std::vector<std::vector<double>>& ranked) {
  ranked.clear();
  COSTREAM_CHECK(queries.size() == candidates.size());
  if (queries.empty()) return;
  bool any = false;
  for (const std::vector<sim::Placement>* c : candidates) {
    if (RankingActive(static_cast<int>(c->size()))) any = true;
  }
  if (!any) return;

  static obs::Counter& metric_ranked =
      obs::GetCounter("service.scoring.ranked_candidates");
  static obs::Counter& metric_batches =
      obs::GetCounter("service.scoring.rank_batches");

  ranked.resize(queries.size());
  // Group same-structure requests so their candidates share stage GEMMs
  // (std::map iteration keeps the group order deterministic). Requests whose
  // rank vector is memoized from an earlier wave never enter a group: a
  // rip-up re-ranking an unchanged (query, view, candidates) triple is pure
  // lookup. Cached and freshly computed vectors are bitwise identical (rank
  // rows are row-independent and deterministic), so memoization cannot move
  // a decision.
  const bool use_rank_cache = config_.candidate_cache;
  std::vector<uint64_t> keys(queries.size(), 0);
  std::vector<uint64_t> sessions(queries.size(), 0);
  std::vector<uint64_t> cand_hashes(queries.size(), 0);
  std::map<uint64_t, std::vector<int>> groups;
  for (size_t r = 0; r < queries.size(); ++r) {
    const core::JointGraph op_graph = core::BuildOperatorGraph(*queries[r]);
    if (use_rank_cache) {
      sessions[r] = SessionKey(op_graph, view);
      cand_hashes[r] = CandidatesHash(*candidates[r]);
      keys[r] = FnvMix(FnvMix(kFnvOffset, sessions[r]), cand_hashes[r]);
      const auto it = rank_cache_.find(keys[r]);
      if (it != rank_cache_.end() && it->second.session == sessions[r] &&
          it->second.cand_hash == cand_hashes[r] &&
          it->second.count == candidates[r]->size()) {
        ranked[r] = it->second.ranked;
        RankCacheHitCounter().Increment();
        continue;
      }
      RankCacheMissCounter().Increment();
    }
    groups[StructureHash(op_graph, view)].push_back(static_cast<int>(r));
  }

  if (use_rank_cache && rank_cache_.size() > 512) rank_cache_.clear();

  const placement::QuantizedEnsemble& weights = QuantizedTarget();
  for (const auto& [hash, members] : groups) {
    placement::QuantizedRanker ranker(*queries[members[0]], view, target_,
                                      &weights);
    std::vector<placement::QuantizedRanker::Request> requests;
    requests.reserve(members.size());
    for (size_t j = 0; j < members.size(); ++j) {
      placement::QuantizedRanker::Request request;
      request.query_slot =
          j == 0 ? 0 : ranker.AddQuery(*queries[members[j]]);
      request.candidates = candidates[members[j]];
      requests.push_back(request);
    }
    std::vector<std::vector<double>> costs;
    ranker.RankBatch(requests, costs);
    metric_batches.Increment();
    for (size_t j = 0; j < members.size(); ++j) {
      const int r = members[j];
      metric_ranked.Add(costs[j].size());
      ranked[r] = std::move(costs[j]);
      if (use_rank_cache) {
        RankCacheEntry& entry = rank_cache_[keys[r]];
        entry.session = sessions[r];
        entry.cand_hash = cand_hashes[r];
        entry.count = candidates[r]->size();
        entry.ranked = ranked[r];
      }
    }
  }
}

void ScoringEngine::ScoreSubset(
    const placement::PlacementScorer& scorer, StructurePool* pool,
    std::vector<placement::PlacementScorer::Workspace>& workspaces,
    const std::vector<sim::Placement>& candidates,
    const std::vector<int>& indices, const std::vector<int>& host_class,
    ScoreResult& out) {
  const bool use_cache = pool != nullptr && config_.candidate_cache;
  struct Miss {
    int idx;
    uint64_t hash;
    std::vector<int32_t> signature;
  };
  std::vector<Miss> misses;
  std::vector<Miss> dups;

  if (!use_cache) {
    misses.reserve(indices.size());
    for (int idx : indices) misses.push_back({idx, 0, {}});
  } else {
    std::vector<int> hw_slot_scratch;
    std::unordered_map<uint64_t, size_t> seen_this_call;
    for (int idx : indices) {
      BuildSignature(candidates[idx], host_class, hw_slot_scratch,
                     sig_scratch_);
      const uint64_t hash = HashSignature(sig_scratch_);
      const auto it = pool->scores.find(hash);
      if (it != pool->scores.end() && it->second.signature == sig_scratch_) {
        out.scored[idx] = it->second.score;
        out.have_full[idx] = 1;
        CacheHitCounter().Increment();
        continue;
      }
      const auto seen = seen_this_call.find(hash);
      if (seen != seen_this_call.end() &&
          misses[seen->second].signature == sig_scratch_) {
        dups.push_back({idx, hash, sig_scratch_});
        continue;
      }
      seen_this_call.emplace(hash, misses.size());
      misses.push_back({idx, hash, sig_scratch_});
    }
  }

  if (!misses.empty()) {
    const int count = static_cast<int>(misses.size());
    const int threads =
        std::min(static_cast<int>(workspaces.size()), count);
    common::ParallelForIndexed(threads, count, [&](int worker, int k) {
      out.scored[misses[k].idx] =
          scorer.Score(workspaces[worker], candidates[misses[k].idx]);
    });
    for (const Miss& miss : misses) {
      out.have_full[miss.idx] = 1;
      if (use_cache) {
        CacheMissCounter().Increment();
        StructurePool::CachedScore& entry = pool->scores[miss.hash];
        entry.signature = miss.signature;
        entry.score = out.scored[miss.idx];
      }
    }
  }
  for (const Miss& dup : dups) {
    const auto it = pool->scores.find(dup.hash);
    COSTREAM_CHECK(it != pool->scores.end());
    out.scored[dup.idx] = it->second.score;
    out.have_full[dup.idx] = 1;
    CacheHitCounter().Increment();
  }
}

ScoringEngine::ScoreResult ScoringEngine::ScoreRequest(
    const dsps::QueryGraph& query, const sim::Cluster& view,
    const std::vector<sim::Placement>& candidates,
    const std::vector<double>& penalty_factors, bool maximize,
    const std::vector<double>& ranked) {
  const int n = static_cast<int>(candidates.size());
  ScoreResult out;
  out.scored.resize(n);
  out.have_full.assign(n, 0);
  if (n == 0) return out;
  COSTREAM_CHECK(static_cast<int>(penalty_factors.size()) == n);

  const placement::PlacementScorer scorer(query, view, target_, success_,
                                          backpressure_);
  const int threads = std::max(
      1, std::min(common::ResolveNumThreads(config_.num_threads), n));

  if (!config_.enabled) {
    // Pre-engine behavior, bit for bit: fresh workspaces, score everything.
    std::vector<placement::PlacementScorer::Workspace> workspaces;
    workspaces.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workspaces.push_back(scorer.MakeWorkspace());
    }
    common::ParallelForIndexed(threads, n, [&](int worker, int i) {
      out.scored[i] = scorer.Score(workspaces[worker], candidates[i]);
    });
    std::fill(out.have_full.begin(), out.have_full.end(), 1);
    out.full_scored = n;
    return out;
  }

  const core::JointGraph op_graph = core::BuildOperatorGraph(query);
  StructurePool& pool = PoolFor(StructureHash(op_graph, view));

  const uint64_t session = SessionKey(op_graph, view);
  if (!pool.session_valid || pool.session_key != session) {
    pool.scores.clear();
    pool.session_key = session;
    pool.session_valid = true;
  }

  std::vector<int> host_class;
  HostClasses(view, host_class);

  // Warm per-structure workspaces: reuse (re-targeted) where they exist,
  // allocate the rest once and keep them pooled for the next tenant.
  const size_t existing =
      std::min(pool.workspaces.size(), static_cast<size_t>(threads));
  for (size_t t = 0; t < existing; ++t) {
    scorer.ResetWorkspace(pool.workspaces[t]);
  }
  while (pool.workspaces.size() < static_cast<size_t>(threads)) {
    pool.workspaces.push_back(scorer.MakeWorkspace());
  }

  const bool use_ranking = static_cast<int>(ranked.size()) == n &&
                           RankingActive(n);
  if (!use_ranking) {
    std::vector<int> all(n);
    for (int i = 0; i < n; ++i) all[i] = i;
    ScoreSubset(scorer, &pool, pool.workspaces, candidates, all, host_class,
                out);
  } else {
    static obs::Counter& metric_rescored =
        obs::GetCounter("service.scoring.rescored_candidates");
    static obs::Counter& metric_fallbacks =
        obs::GetCounter("service.scoring.rank_fallbacks");
    // Top-k by penalized rank — the same congestion-priced objective the
    // final selection uses, so an expensive-but-contended candidate cannot
    // crowd feasible cheap ones out of the re-scoring set.
    std::vector<int> order(n);
    for (int i = 0; i < n; ++i) order[i] = i;
    const auto better = [&](int a, int b) {
      const double pa =
          maximize ? ranked[a] / penalty_factors[a] : ranked[a] * penalty_factors[a];
      const double pb =
          maximize ? ranked[b] / penalty_factors[b] : ranked[b] * penalty_factors[b];
      if (pa != pb) return maximize ? pa > pb : pa < pb;
      return a < b;  // deterministic tie-break: enumeration order
    };
    const int k = std::min(config_.rank_top_k, n);
    std::partial_sort(order.begin(), order.begin() + k, order.end(), better);
    std::vector<int> top(order.begin(), order.begin() + k);
    std::sort(top.begin(), top.end());
    metric_rescored.Add(static_cast<uint64_t>(k));
    ScoreSubset(scorer, &pool, pool.workspaces, candidates, top, host_class,
                out);
    bool any_feasible = false;
    for (int idx : top) any_feasible |= out.scored[idx].feasible;
    if (!any_feasible && k < n) {
      // Infeasible head: widen geometrically down the ranked order until a
      // feasible candidate appears instead of re-scoring everything — under
      // sparse feasibility the expected extra work stays O(k). The widening
      // budget bounds the damage of fully infeasible requests: once it runs
      // out the request resolves best-any over the scored head (negative
      // budget: scan to the exact full-precision best-any).
      metric_fallbacks.Increment();
      std::sort(order.begin() + k, order.end(), better);
      int covered = k;
      // Window sizes k, 2k, 4k, ...: the doubling happens AFTER a window is
      // consumed, so the cumulative full-scored total after r rounds is
      // exactly k * 2^r — the documented budget. (Doubling before the first
      // window would score k * (2^(r+1) - 1) and blow the budget on every
      // short or fully infeasible candidate list.)
      int window = k;
      int rounds_left = config_.rank_widen_rounds;
      while (!any_feasible && covered < n && rounds_left != 0) {
        if (rounds_left > 0) --rounds_left;
        const int take = std::min(window, n - covered);
        std::vector<int> next(order.begin() + covered,
                              order.begin() + covered + take);
        std::sort(next.begin(), next.end());
        metric_rescored.Add(static_cast<uint64_t>(take));
        ScoreSubset(scorer, &pool, pool.workspaces, candidates, next,
                    host_class, out);
        for (int idx : next) any_feasible |= out.scored[idx].feasible;
        covered += take;
        window *= 2;
      }
    }
  }

  for (int i = 0; i < n; ++i) out.full_scored += out.have_full[i] ? 1 : 0;
  return out;
}

}  // namespace costream::service
