#include "service/placement_service.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "placement/enumeration.h"
#include "placement/scorer.h"
#include "service/scoring_engine.h"
#include "sim/des.h"
#include "verify/interval_analysis.h"

namespace costream::service {

namespace {

// splitmix64 (same mixer as the corpus pipeline's per-record seeds): every
// enumeration seed is a pure function of (service seed, query id, iteration),
// so decisions replay bitwise from the admission history alone.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t DeriveSeed(uint64_t seed, uint64_t id, uint64_t iteration) {
  return Mix64(seed ^ Mix64(id + 1) ^ Mix64((iteration + 1) << 20));
}

}  // namespace

PlacementService::PlacementService(sim::Cluster cluster,
                                   const core::Ensemble* target,
                                   const core::Ensemble* success,
                                   const core::Ensemble* backpressure,
                                   const ServiceConfig& config)
    : target_(target),
      success_(success),
      backpressure_(backpressure),
      config_(config),
      ledger_(std::move(cluster), config.ledger) {
  COSTREAM_CHECK(sim::IsRegressionMetric(config_.target));
  if (config_.policy == AdmissionPolicy::kLearned) {
    COSTREAM_CHECK(target_ != nullptr);
    COSTREAM_CHECK(target_->head() == core::HeadKind::kRegression);
  }
  if (success_ != nullptr) {
    COSTREAM_CHECK(success_->head() == core::HeadKind::kClassification);
  }
  if (backpressure_ != nullptr) {
    COSTREAM_CHECK(backpressure_->head() == core::HeadKind::kClassification);
  }
  COSTREAM_CHECK(config_.num_candidates > 0);
  COSTREAM_CHECK(config_.max_iterations > 0);
  COSTREAM_CHECK(config_.penalty_weight >= 0.0);
  if (config_.policy == AdmissionPolicy::kLearned) {
    FastPathConfig fast;
    fast.enabled = config_.fast_path;
    fast.quantized_ranking = config_.quantized_ranking;
    fast.quant_kind = config_.quant_kind;
    fast.rank_top_k = config_.rank_top_k;
    fast.rank_members = config_.rank_members;
    fast.rank_widen_rounds = config_.rank_widen_rounds;
    fast.candidate_cache = config_.candidate_cache;
    fast.num_threads = config_.num_threads;
    engine_ = std::make_unique<ScoringEngine>(target_, success_,
                                              backpressure_, fast);
  }
}

PlacementService::~PlacementService() = default;

double PlacementService::CandidatePenaltyFactor(
    const dsps::QueryGraph& query, const sim::Placement& placement,
    const sim::BackgroundLoad& total) const {
  // Present congestion: the candidate is priced with its own steady-state
  // demand added to the current ledger totals, so overflow a candidate
  // *would* cause costs immediately — not only after the next repricing.
  const double price = ledger_.PlacementPenalty(
      sim::ComputeBackgroundLoad(query, ledger_.cluster(), placement), total);
  return 1.0 + config_.penalty_weight * (price - 1.0);
}

PlacementService::Choice PlacementService::PlaceOne(
    const dsps::QueryGraph& query, const sim::Cluster& view,
    uint64_t salt) const {
  if (config_.policy == AdmissionPolicy::kGreedyFirstFit) {
    return PlaceGreedyFirstFit(query);
  }

  placement::EnumerationConfig ec;
  ec.num_candidates = config_.num_candidates;
  ec.num_bins = config_.num_bins;
  ec.seed = salt;
  ec.num_threads = config_.num_threads;
  const std::vector<sim::Placement> candidates =
      placement::EnumerateCandidates(query, view, ec);
  COSTREAM_CHECK(!candidates.empty());

  std::vector<std::vector<double>> ranked;
  engine_->RankRequests({&query}, {&candidates}, view, ranked);
  const std::vector<char> demoted = ProvenCrashMask(query, candidates);
  return SelectCandidates(query, view, candidates,
                          ranked.empty() ? nullptr : &ranked[0], &demoted);
}

std::vector<char> PlacementService::ProvenCrashMask(
    const dsps::QueryGraph& query,
    const std::vector<sim::Placement>& candidates) const {
  std::vector<char> mask(candidates.size(), 0);
  // Bare cluster, no background: the proof is query-intrinsic. Admitted
  // load only adds memory on top, so a candidate proven to crash when alone
  // crashes a fortiori under contention.
  const verify::QueryIntervalSummary intervals = verify::AnalyzeQueryIntervals(
      query, verify::IntervalOptions{}, nullptr);
  if (intervals.diverged || intervals.inconsistent_source) return mask;
  for (size_t i = 0; i < candidates.size(); ++i) {
    mask[i] = verify::AnalyzePlacementIntervals(query, ledger_.cluster(),
                                                candidates[i], intervals,
                                                nullptr, nullptr)
                  .proven_crash
                  ? 1
                  : 0;
  }
  return mask;
}

PlacementService::Choice PlacementService::SelectCandidates(
    const dsps::QueryGraph& query, const sim::Cluster& view,
    const std::vector<sim::Placement>& candidates,
    const std::vector<double>* ranked,
    const std::vector<char>* demoted) const {
  const bool maximize = config_.target == sim::Metric::kThroughput;
  const int n = static_cast<int>(candidates.size());

  // Proven-crash candidates rank strictly below every unproven one (in both
  // pruning modes — that invariance is what makes skipping their scores
  // decision-neutral). With pruning on they are not scored at all, unless
  // every candidate is proven to crash and one of them must be chosen.
  const bool has_mask = demoted != nullptr &&
                        static_cast<int>(demoted->size()) == n;
  auto is_demoted = [&](int i) { return has_mask && (*demoted)[i] != 0; };
  bool any_unproven = !has_mask;
  for (int i = 0; i < n && !any_unproven; ++i) {
    any_unproven = !is_demoted(i);
  }
  const bool prune = config_.interval_pruning && has_mask && any_unproven;
  std::vector<int> to_score;
  to_score.reserve(n);
  for (int i = 0; i < n; ++i) {
    if (prune && is_demoted(i)) continue;
    to_score.push_back(i);
  }
  const int m = static_cast<int>(to_score.size());
  if (m < n) {
    static obs::Counter& metric_pruned =
        obs::GetCounter("service.scoring.pruned");
    metric_pruned.Add(static_cast<uint64_t>(n - m));
  }

  // Congestion factors first: the engine's top-k pre-selection ranks under
  // the same penalized objective the final selection uses. Skipped
  // candidates need no factor either (they cannot win).
  std::vector<double> factors(m);
  const sim::BackgroundLoad total = ledger_.TotalLoad();
  const int threads =
      std::max(1, std::min(common::ResolveNumThreads(config_.num_threads), m));
  common::ParallelForIndexed(threads, m, [&](int /*worker*/, int j) {
    factors[j] = CandidatePenaltyFactor(query, candidates[to_score[j]], total);
  });

  // Batched scoring against the load-adjusted view, exactly like the one-shot
  // optimizer: per-candidate slots, selection in enumeration order, so the
  // decision is identical for every thread count.
  static const std::vector<double> kNoRank;
  std::vector<sim::Placement> subset;
  std::vector<double> subset_ranked;
  const std::vector<sim::Placement>* to_score_candidates = &candidates;
  const std::vector<double>* to_score_ranked =
      ranked != nullptr ? ranked : &kNoRank;
  if (m < n) {
    subset.reserve(m);
    for (int j = 0; j < m; ++j) subset.push_back(candidates[to_score[j]]);
    to_score_candidates = &subset;
    if (ranked != nullptr && static_cast<int>(ranked->size()) == n) {
      subset_ranked.reserve(m);
      for (int j = 0; j < m; ++j) subset_ranked.push_back((*ranked)[to_score[j]]);
      to_score_ranked = &subset_ranked;
    }
  }
  const ScoringEngine::ScoreResult result = engine_->ScoreRequest(
      query, view, *to_score_candidates, factors, maximize, *to_score_ranked);
  const std::vector<placement::PlacementScorer::CandidateScore>& scored =
      result.scored;

  Choice choice;
  choice.candidates_evaluated = n;
  // Four preference tiers: unproven-feasible > unproven-any >
  // demoted-feasible > demoted-any. "Any" ranges over every scored candidate
  // of the tier, so with an all-false mask this reduces exactly to the
  // original best-feasible-else-best-any selection.
  constexpr int kTiers = 4;
  const double worst = maximize ? -std::numeric_limits<double>::infinity()
                                : std::numeric_limits<double>::infinity();
  double best[kTiers] = {worst, worst, worst, worst};
  int best_idx[kTiers] = {-1, -1, -1, -1};
  std::vector<double> penalized(m);
  for (int j = 0; j < m; ++j) {
    // The quantized tier may have skipped candidates outside the re-scored
    // top-k; they have no full-precision score and never win. When none of
    // the scored head was feasible the engine widened down the ranked order
    // until the widening budget ran out, so best-any here ranges over that
    // scored head — the exact best-any only under a negative
    // rank_widen_rounds (unbounded widening scans the full list).
    if (!result.have_full[j]) continue;
    // Negotiated congestion: the learned prediction is repriced by the
    // penalties of the nodes the candidate uses. Minimized metrics get more
    // expensive on contended nodes, maximized ones less attractive.
    penalized[j] =
        maximize ? scored[j].cost / factors[j] : scored[j].cost * factors[j];
    const int base = is_demoted(to_score[j]) ? 2 : 0;
    const bool better_any =
        maximize ? penalized[j] > best[base + 1] : penalized[j] < best[base + 1];
    if (better_any || best_idx[base + 1] < 0) {
      best[base + 1] = penalized[j];
      best_idx[base + 1] = j;
    }
    if (!scored[j].feasible) continue;
    const bool better =
        maximize ? penalized[j] > best[base] : penalized[j] < best[base];
    if (better || best_idx[base] < 0) {
      best[base] = penalized[j];
      best_idx[base] = j;
    }
  }
  int tier = 0;
  while (tier < kTiers - 1 && best_idx[tier] < 0) ++tier;
  const int chosen = best_idx[tier];
  choice.placement = candidates[to_score[chosen]];
  choice.predicted = scored[chosen].cost;
  choice.penalized = penalized[chosen];
  choice.feasible = tier == 0 || tier == 2;
  return choice;
}

PlacementService::Choice PlacementService::PlaceGreedyFirstFit(
    const dsps::QueryGraph& query) const {
  const sim::Cluster& cluster = ledger_.cluster();
  const sim::BackgroundLoad total = ledger_.TotalLoad();
  const double margin = config_.ledger.capacity_margin;

  Choice choice;
  choice.feasible = false;
  int fallback = 0;
  double fallback_util = std::numeric_limits<double>::infinity();
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    const sim::Placement all_on_n(query.num_operators(), n);
    const sim::BackgroundLoad extra =
        sim::ComputeBackgroundLoad(query, cluster, all_on_n);
    const sim::NodeCapacity cap = sim::CapacityOf(cluster.nodes[n]);
    double cpu = extra.cpu_load_us[n];
    double net = extra.out_bytes_per_s[n];
    double mem = extra.memory_mb[n];
    if (!total.empty()) {
      cpu += total.cpu_load_us[n];
      net += total.out_bytes_per_s[n];
      mem += total.memory_mb[n];
    }
    const double util =
        std::max({cpu / cap.cpu_us_per_s, net / cap.net_bytes_per_s,
                  mem / std::max(cap.ram_mb, 1.0)});
    if (util <= margin) {
      choice.placement = all_on_n;
      choice.feasible = true;
      choice.candidates_evaluated = n + 1;
      return choice;
    }
    if (util < fallback_util) {
      fallback_util = util;
      fallback = n;
    }
  }
  // Nothing fits: least-loaded node (first-fit semantics still deterministic).
  choice.placement.assign(query.num_operators(), fallback);
  choice.candidates_evaluated = cluster.num_nodes();
  return choice;
}

AdmitResult PlacementService::Record(int64_t id, const dsps::QueryGraph& query,
                                     const Choice& choice) {
  static obs::Counter& metric_admissions =
      obs::GetCounter("service.admissions");
  static obs::Gauge& metric_live = obs::GetGauge("service.live_queries");
  ledger_.Admit(id, sim::ComputeBackgroundLoad(query, ledger_.cluster(),
                                               choice.placement));
  entries_.emplace(id, Entry{query, choice.placement});
  metric_admissions.Increment();
  metric_live.Set(static_cast<double>(ledger_.live_queries()));
  AdmitResult result;
  result.id = id;
  result.placement = choice.placement;
  result.predicted = choice.predicted;
  result.penalized = choice.penalized;
  result.feasible = choice.feasible;
  result.candidates_evaluated = choice.candidates_evaluated;
  return result;
}

AdmitResult PlacementService::Admit(const dsps::QueryGraph& query) {
  static obs::Histogram& metric_admit_us =
      obs::GetHistogram("service.admit_us");
  obs::ScopedTimer timer(metric_admit_us);
  const int64_t id = next_id_++;
  const sim::Cluster view = ledger_.LoadedView();
  const Choice choice =
      PlaceOne(query, view, DeriveSeed(config_.seed, id, 0));
  return Record(id, query, choice);
}

int64_t PlacementService::AdmitAsync(const dsps::QueryGraph& query) {
  static obs::Counter& metric_enqueued =
      obs::GetCounter("service.async_admissions_enqueued");
  const int64_t id = next_id_++;
  pending_.emplace_back(id, query);
  metric_enqueued.Increment();
  return id;
}

std::vector<AdmitResult> PlacementService::DrainAdmissions() {
  static obs::Histogram& metric_batch =
      obs::GetHistogram("service.async_drain_batch");
  static obs::Histogram& metric_drain_us =
      obs::GetHistogram("service.async_drain_us");
  std::vector<AdmitResult> results;
  if (pending_.empty()) return results;
  obs::ScopedTimer timer(metric_drain_us);
  metric_batch.Record(static_cast<double>(pending_.size()));
  results.reserve(pending_.size());

  if (config_.policy == AdmissionPolicy::kGreedyFirstFit) {
    for (const auto& [id, query] : pending_) {
      results.push_back(Record(id, query, PlaceGreedyFirstFit(query)));
    }
    pending_.clear();
    return results;
  }

  // One consistent snapshot for the whole batch: every request enumerates
  // and scores against the drain-start view (a batch of one is therefore
  // bitwise identical to a synchronous Admit). Congestion penalties still
  // read the live ledger at each request's turn, so requests of one batch
  // price each other's load.
  const sim::Cluster snapshot = ledger_.LoadedView();
  std::vector<std::vector<sim::Placement>> candidates(pending_.size());
  std::vector<const dsps::QueryGraph*> queries(pending_.size());
  std::vector<const std::vector<sim::Placement>*> candidate_ptrs(
      pending_.size());
  for (size_t r = 0; r < pending_.size(); ++r) {
    placement::EnumerationConfig ec;
    ec.num_candidates = config_.num_candidates;
    ec.num_bins = config_.num_bins;
    ec.seed = DeriveSeed(config_.seed,
                         static_cast<uint64_t>(pending_[r].first), 0);
    ec.num_threads = config_.num_threads;
    candidates[r] =
        placement::EnumerateCandidates(pending_[r].second, snapshot, ec);
    COSTREAM_CHECK(!candidates[r].empty());
    queries[r] = &pending_[r].second;
    candidate_ptrs[r] = &candidates[r];
  }

  // Cross-request ranking: all same-structure requests share stage GEMMs.
  std::vector<std::vector<double>> ranked;
  engine_->RankRequests(queries, candidate_ptrs, snapshot, ranked);

  for (size_t r = 0; r < pending_.size(); ++r) {
    const std::vector<char> demoted =
        ProvenCrashMask(pending_[r].second, candidates[r]);
    const Choice choice =
        SelectCandidates(pending_[r].second, snapshot, candidates[r],
                         ranked.empty() ? nullptr : &ranked[r], &demoted);
    results.push_back(Record(pending_[r].first, pending_[r].second, choice));
  }
  pending_.clear();
  return results;
}

AdmitResult PlacementService::AdmitWithPlacement(
    const dsps::QueryGraph& query, const sim::Placement& placement) {
  COSTREAM_CHECK_MSG(
      sim::ValidatePlacement(query, ledger_.cluster(), placement).empty(),
      "invalid forced placement");
  const int64_t id = next_id_++;
  Choice choice;
  choice.placement = placement;
  return Record(id, query, choice);
}

bool PlacementService::Retire(int64_t id) {
  static obs::Counter& metric_retirements =
      obs::GetCounter("service.retirements");
  static obs::Gauge& metric_live = obs::GetGauge("service.live_queries");
  if (!ledger_.Retire(id)) return false;
  entries_.erase(id);
  metric_retirements.Increment();
  metric_live.Set(static_cast<double>(ledger_.live_queries()));
  return true;
}

ConvergeResult PlacementService::Converge() {
  static obs::Counter& metric_calls = obs::GetCounter("service.converge_calls");
  static obs::Counter& metric_ripups = obs::GetCounter("service.ripups");
  static obs::Counter& metric_overflow_events =
      obs::GetCounter("service.overflow_node_events");
  static obs::Histogram& metric_iterations =
      obs::GetHistogram("service.converge_iterations");
  static obs::Histogram& metric_converge_us =
      obs::GetHistogram("service.converge_us");
  metric_calls.Increment();
  obs::ScopedTimer timer(metric_converge_us);

  ConvergeResult result;
  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    // Reprice: overflowed nodes gain history, overflow counts refresh from
    // the current demand, and the escalating penalty table makes staying on
    // a contended node progressively less attractive.
    const std::vector<int> overflowed = ledger_.UpdateCongestion();
    if (overflowed.empty()) break;
    ++result.iterations;
    metric_overflow_events.Add(overflowed.size());

    std::vector<char> node_overflowed(ledger_.num_nodes(), 0);
    for (int n : overflowed) node_overflowed[n] = 1;
    // Rip up every query touching an overflowed node, ascending id (the
    // entries_ map order), and re-place each against the view without it.
    std::vector<int64_t> victims;
    for (const auto& [id, entry] : entries_) {
      for (int node : entry.placement) {
        if (node_overflowed[node]) {
          victims.push_back(id);
          break;
        }
      }
    }
    for (int64_t id : victims) {
      Entry& entry = entries_.at(id);
      ledger_.Retire(id);
      const sim::Cluster view = ledger_.LoadedView();
      const Choice choice = PlaceOne(
          entry.query, view,
          DeriveSeed(config_.seed, static_cast<uint64_t>(id), iter + 1));
      entry.placement = choice.placement;
      ledger_.Admit(id, sim::ComputeBackgroundLoad(
                            entry.query, ledger_.cluster(), entry.placement));
      ++result.ripups;
    }
  }
  result.overflowed_nodes = ledger_.OverflowedNodes();
  result.converged = result.overflowed_nodes.empty();
  metric_ripups.Add(static_cast<uint64_t>(result.ripups));
  metric_iterations.Record(static_cast<double>(result.iterations));
  return result;
}

AggregateThroughput PlacementService::MeasureAggregateThroughput(
    int max_queries, double des_duration_s) const {
  AggregateThroughput agg;
  const std::vector<int64_t> ids = ledger_.QueryIds();
  if (ids.empty()) return agg;
  const size_t take = max_queries <= 0
                          ? ids.size()
                          : std::min(ids.size(),
                                     static_cast<size_t>(max_queries));
  for (size_t k = 0; k < take; ++k) {
    // Deterministic stride over the ascending id order.
    const int64_t id = ids[k * ids.size() / take];
    const Entry& entry = entries_.at(id);
    const sim::Cluster view = ledger_.LoadedViewExcluding(id);
    if (target_ != nullptr) {
      const placement::PlacementScorer scorer(entry.query, view, target_,
                                              nullptr, nullptr);
      placement::PlacementScorer::Workspace ws = scorer.MakeWorkspace();
      agg.predicted +=
          std::max(scorer.PredictTarget(ws, entry.placement), 0.0);
    }
    sim::DesConfig dc;
    dc.duration_s = des_duration_s;
    dc.seed = Mix64(static_cast<uint64_t>(id) + 0x5157ull);
    const sim::DesReport des =
        sim::RunDes(entry.query, view, entry.placement, dc);
    agg.des += des.metrics.throughput;
    ++agg.queries;
  }
  return agg;
}

const sim::Placement& PlacementService::PlacementOf(int64_t id) const {
  const auto it = entries_.find(id);
  COSTREAM_CHECK(it != entries_.end());
  return it->second.placement;
}

const dsps::QueryGraph& PlacementService::QueryOf(int64_t id) const {
  const auto it = entries_.find(id);
  COSTREAM_CHECK(it != entries_.end());
  return it->second.query;
}

}  // namespace costream::service
