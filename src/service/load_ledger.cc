#include "service/load_ledger.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace costream::service {

ClusterLoadLedger::ClusterLoadLedger(sim::Cluster cluster,
                                     const LedgerConfig& config)
    : cluster_(std::move(cluster)), config_(config) {
  COSTREAM_CHECK(cluster_.num_nodes() > 0);
  COSTREAM_CHECK(config_.capacity_margin > 0.0);
  COSTREAM_CHECK(config_.history_weight >= 0.0);
  COSTREAM_CHECK(config_.overflow_growth >= 1.0);
  capacity_.reserve(cluster_.nodes.size());
  for (const sim::HardwareNode& node : cluster_.nodes) {
    capacity_.push_back(sim::CapacityOf(node));
  }
  he_.assign(cluster_.num_nodes(), 0);
  of_.assign(cluster_.num_nodes(), 0);
  overflow_table_.resize(kOverflowTableSize);
  double penalty = 1.0;
  for (int k = 0; k < kOverflowTableSize; ++k) {
    overflow_table_[k] = std::min(penalty, config_.max_penalty);
    penalty *= config_.overflow_growth;
  }
}

void ClusterLoadLedger::Admit(int64_t id, const sim::BackgroundLoad& load) {
  COSTREAM_CHECK(!Contains(id));
  COSTREAM_CHECK(static_cast<int>(load.cpu_load_us.size()) == num_nodes());
  COSTREAM_CHECK(static_cast<int>(load.out_bytes_per_s.size()) == num_nodes());
  COSTREAM_CHECK(static_cast<int>(load.memory_mb.size()) == num_nodes());
  loads_.emplace(id, load);
}

bool ClusterLoadLedger::Retire(int64_t id) { return loads_.erase(id) > 0; }

std::vector<int64_t> ClusterLoadLedger::QueryIds() const {
  std::vector<int64_t> ids;
  ids.reserve(loads_.size());
  for (const auto& [id, load] : loads_) ids.push_back(id);
  return ids;
}

const sim::BackgroundLoad& ClusterLoadLedger::LoadOf(int64_t id) const {
  const auto it = loads_.find(id);
  COSTREAM_CHECK(it != loads_.end());
  return it->second;
}

sim::BackgroundLoad ClusterLoadLedger::TotalLoad() const {
  return TotalLoadExcluding(std::numeric_limits<int64_t>::min());
}

sim::BackgroundLoad ClusterLoadLedger::TotalLoadExcluding(int64_t id) const {
  sim::BackgroundLoad total;
  // Ascending-id summation: the total is a pure function of the live set,
  // never of the admission/retirement history.
  for (const auto& [query_id, load] : loads_) {
    if (query_id == id) continue;
    sim::AccumulateBackgroundLoad(load, num_nodes(), &total);
  }
  return total;
}

sim::Cluster ClusterLoadLedger::LoadedView() const {
  return sim::DerateCluster(cluster_, TotalLoad());
}

sim::Cluster ClusterLoadLedger::LoadedViewExcluding(int64_t id) const {
  return sim::DerateCluster(cluster_, TotalLoadExcluding(id));
}

double ClusterLoadLedger::NodeUtilization(int n) const {
  COSTREAM_CHECK(n >= 0 && n < num_nodes());
  const sim::BackgroundLoad total = TotalLoad();
  if (total.empty()) return 0.0;
  const sim::NodeCapacity& cap = capacity_[n];
  const double cpu = total.cpu_load_us[n] / cap.cpu_us_per_s;
  const double net = total.out_bytes_per_s[n] / cap.net_bytes_per_s;
  const double ram = total.memory_mb[n] / std::max(cap.ram_mb, 1.0);
  return std::max({cpu, net, ram});
}

std::vector<int> ClusterLoadLedger::OverflowedNodes() const {
  std::vector<int> overflowed;
  for (int n = 0; n < num_nodes(); ++n) {
    if (NodeUtilization(n) > config_.capacity_margin) overflowed.push_back(n);
  }
  return overflowed;
}

int ClusterLoadLedger::OverflowMagnitude(double util) const {
  const double excess = util - config_.capacity_margin;
  if (excess <= 0.0) return 0;
  // Margin-quarters, so a node 2x over capacity prices several table steps
  // above one barely over.
  return std::min<int>(
      static_cast<int>(std::ceil(excess / (0.25 * config_.capacity_margin))),
      kOverflowTableSize - 1);
}

std::vector<int> ClusterLoadLedger::UpdateCongestion() {
  std::vector<int> overflowed;
  for (int n = 0; n < num_nodes(); ++n) {
    const double util = NodeUtilization(n);
    of_[n] = OverflowMagnitude(util);
    if (of_[n] > 0) {
      overflowed.push_back(n);
      ++he_[n];
    }
  }
  return overflowed;
}

double ClusterLoadLedger::NodePenalty(int n) const {
  COSTREAM_CHECK(n >= 0 && n < num_nodes());
  const double penalty =
      (1.0 + config_.history_weight * he_[n]) * overflow_table_[of_[n]];
  return std::min(penalty, config_.max_penalty);
}

double ClusterLoadLedger::PlacementPenalty(
    const sim::BackgroundLoad& extra) const {
  return PlacementPenalty(extra, TotalLoad());
}

double ClusterLoadLedger::PlacementPenalty(
    const sim::BackgroundLoad& extra, const sim::BackgroundLoad& total) const {
  COSTREAM_CHECK(static_cast<int>(extra.cpu_load_us.size()) == num_nodes());
  double sum = 0.0;
  int touched = 0;
  for (int n = 0; n < num_nodes(); ++n) {
    if (extra.cpu_load_us[n] <= 0.0 && extra.out_bytes_per_s[n] <= 0.0 &&
        extra.memory_mb[n] <= 0.0) {
      continue;
    }
    double cpu = extra.cpu_load_us[n];
    double net = extra.out_bytes_per_s[n];
    double ram = extra.memory_mb[n];
    if (!total.empty()) {
      cpu += total.cpu_load_us[n];
      net += total.out_bytes_per_s[n];
      ram += total.memory_mb[n];
    }
    const sim::NodeCapacity& cap = capacity_[n];
    const double util =
        std::max({cpu / cap.cpu_us_per_s, net / cap.net_bytes_per_s,
                  ram / std::max(cap.ram_mb, 1.0)});
    const int of_projected = std::max(of_[n], OverflowMagnitude(util));
    const double penalty = (1.0 + config_.history_weight * he_[n]) *
                           overflow_table_[of_projected];
    sum += std::min(penalty, config_.max_penalty);
    ++touched;
  }
  return touched == 0 ? 1.0 : sum / static_cast<double>(touched);
}

void ClusterLoadLedger::ResetCongestion() {
  std::fill(he_.begin(), he_.end(), 0);
  std::fill(of_.begin(), of_.end(), 0);
}

std::string ClusterLoadLedger::CheckInvariants() const {
  std::ostringstream error;
  for (const auto& [id, load] : loads_) {
    if (static_cast<int>(load.cpu_load_us.size()) != num_nodes() ||
        static_cast<int>(load.out_bytes_per_s.size()) != num_nodes() ||
        static_cast<int>(load.memory_mb.size()) != num_nodes()) {
      error << "query " << id << ": load not sized to the cluster";
      return error.str();
    }
    for (int n = 0; n < num_nodes(); ++n) {
      if (load.cpu_load_us[n] < 0.0 || load.out_bytes_per_s[n] < 0.0 ||
          load.memory_mb[n] < 0.0 || !std::isfinite(load.cpu_load_us[n]) ||
          !std::isfinite(load.out_bytes_per_s[n]) ||
          !std::isfinite(load.memory_mb[n])) {
        error << "query " << id << ": negative or non-finite load on node "
              << n;
        return error.str();
      }
    }
  }
  // The aggregate must equal the ascending-id sum of the live loads exactly
  // (TotalLoad is defined as that sum, so this guards the bookkeeping path,
  // not floating-point identities).
  const sim::BackgroundLoad total = TotalLoad();
  sim::BackgroundLoad recomputed;
  for (const auto& [id, load] : loads_) {
    sim::AccumulateBackgroundLoad(load, num_nodes(), &recomputed);
  }
  if (total.empty() != recomputed.empty()) {
    return "total/recomputed emptiness mismatch";
  }
  for (int n = 0; n < num_nodes() && !total.empty(); ++n) {
    if (total.cpu_load_us[n] != recomputed.cpu_load_us[n] ||
        total.out_bytes_per_s[n] != recomputed.out_bytes_per_s[n] ||
        total.memory_mb[n] != recomputed.memory_mb[n]) {
      error << "aggregated demand diverges from the live-set sum on node "
            << n;
      return error.str();
    }
  }
  return "";
}

}  // namespace costream::service
