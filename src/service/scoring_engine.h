#ifndef COSTREAM_SERVICE_SCORING_ENGINE_H_
#define COSTREAM_SERVICE_SCORING_ENGINE_H_

// Cross-request scoring fast path of the placement service. The engine owns
// everything that is worth sharing between admissions:
//
//   - per-structure pools of PlacementScorer workspaces, so two tenants with
//     the same query shape reuse each other's warm graphs, forward plans and
//     encoder caches instead of re-allocating them,
//   - a candidate score cache keyed on (query contents, loaded view,
//     canonical candidate signature): a rip-up that re-enumerates an already
//     scored placement — or a candidate using a different but
//     feature-identical node — returns the cached bits without touching the
//     model (observable via service.scoring.cache_{hits,misses}),
//   - one pooled low-precision weight snapshot (QuantizedEnsemble) per
//     target ensemble, feeding the quantized ranking tier: all candidates of
//     all same-structure requests in a batch are ranked by shared GEMMs and
//     only the top-k by penalized rank are re-scored in full precision.
//
// Determinism: ranking is single-threaded with fixed accumulation orders;
// full scoring uses per-candidate slots; cached scores are bitwise equal to
// recomputed ones (equal signatures imply element-identical joint graphs).
// Decisions therefore never depend on thread count, batch composition, or
// whether the cache is warm. With the quantized tier off, decisions are
// bitwise identical to the plain scorer path.

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/ensemble.h"
#include "dsps/query_graph.h"
#include "placement/rank_scorer.h"
#include "placement/scorer.h"
#include "sim/hardware.h"

namespace costream::service {

struct FastPathConfig {
  // Master switch: off = fresh workspaces per request, no cache, no ranking
  // (the pre-engine behavior, bit for bit).
  bool enabled = true;
  // Rank with the low-precision tier, full-score only the top-k.
  bool quantized_ranking = false;
  nn::QuantKind quant_kind = nn::QuantKind::kInt8;
  int rank_top_k = 4;
  // Ensemble members the ranking tier snapshots (0 = all). Ranking is a
  // preselection heuristic — the decision always comes from full-precision
  // rescoring — but a member subset ranks by a different mean than the full
  // ensemble scores by, which measurably costs top-1 agreement; the default
  // keeps every member and leaves the subset as an explicit cheapness knob.
  int rank_members = 0;
  // Widening budget of the infeasible-head fallback, in doubling rounds:
  // at most rank_top_k * 2^rounds candidates get full-scored hunting for a
  // feasible one. A request that exhausts the budget resolves best-any over
  // the scored subset — the same approximation the ranking tier already
  // makes — instead of degenerating to a full scan on fully infeasible
  // requests. Negative: unbounded (exact best-any, full scan worst case).
  int rank_widen_rounds = 2;
  bool candidate_cache = true;
  // Worker threads for full-precision scoring (<= 0: all hardware threads).
  int num_threads = 0;
};

class ScoringEngine {
 public:
  // Ensembles must outlive the engine; `success` / `backpressure` may be
  // null. Not thread-safe: callers (the placement service) are externally
  // serialized; internal scoring still fans out over num_threads workers.
  ScoringEngine(const core::Ensemble* target, const core::Ensemble* success,
                const core::Ensemble* backpressure,
                const FastPathConfig& config);
  ~ScoringEngine();

  // True when the quantized ranking tier will run for this configuration.
  bool RankingActive(int num_candidates) const;

  // Ranks every request's candidates against `view` with the quantized
  // tier, batching all same-structure requests into shared GEMMs.
  // `ranked[r][c]` approximates the target prediction of request r's
  // candidate c; `ranked` is left empty when the tier is inactive. Rank
  // values for a request are bitwise independent of which other requests
  // share its batch (GEMM rows are row-independent), so a drain batch of
  // one ranks exactly like a synchronous admission. With the candidate
  // cache on, rank vectors are also memoized per (query contents, view,
  // candidate list): a rip-up re-ranking an unchanged request skips the
  // GEMMs entirely (service.scoring.rank_cache_{hits,misses}).
  void RankRequests(const std::vector<const dsps::QueryGraph*>& queries,
                    const std::vector<const std::vector<sim::Placement>*>&
                        candidates,
                    const sim::Cluster& view,
                    std::vector<std::vector<double>>& ranked);

  struct ScoreResult {
    std::vector<placement::PlacementScorer::CandidateScore> scored;
    // scored[i] is meaningful iff have_full[i]; ranking-skipped candidates
    // have neither a score nor a feasibility verdict.
    std::vector<char> have_full;
    int full_scored = 0;
  };

  // Full-precision scores for one request. With the fast path and a
  // non-empty `ranked`, only the top-k candidates by penalized rank
  // (maximize ? rank / factor : rank * factor) are scored; if none of them
  // is feasible, the scored set widens geometrically down the ranked order
  // until a feasible candidate appears or the widening budget
  // (rank_widen_rounds) runs out; an exhausted budget resolves best-any
  // over the scored head, an unbounded one (< 0) scans to the exact
  // best-any choice.
  ScoreResult ScoreRequest(const dsps::QueryGraph& query,
                           const sim::Cluster& view,
                           const std::vector<sim::Placement>& candidates,
                           const std::vector<double>& penalty_factors,
                           bool maximize, const std::vector<double>& ranked);

  const FastPathConfig& config() const { return config_; }

 private:
  struct StructurePool {
    std::vector<placement::PlacementScorer::Workspace> workspaces;
    // Candidate score cache, valid for one (query contents, view) session.
    uint64_t session_key = 0;
    bool session_valid = false;
    struct CachedScore {
      std::vector<int32_t> signature;  // collision guard
      placement::PlacementScorer::CandidateScore score;
    };
    std::unordered_map<uint64_t, CachedScore> scores;
  };

  StructurePool& PoolFor(uint64_t structure_hash);
  const placement::QuantizedEnsemble& QuantizedTarget();

  // Scores `indices` (ascending) through the cache into `out`.
  void ScoreSubset(const placement::PlacementScorer& scorer,
                   StructurePool* pool,
                   std::vector<placement::PlacementScorer::Workspace>&
                       workspaces,
                   const std::vector<sim::Placement>& candidates,
                   const std::vector<int>& indices,
                   const std::vector<int>& host_class, ScoreResult& out);

  const core::Ensemble* target_;
  const core::Ensemble* success_;
  const core::Ensemble* backpressure_;
  FastPathConfig config_;
  std::map<uint64_t, StructurePool> pools_;
  std::unique_ptr<placement::QuantizedEnsemble> quantized_;

  // Memoized rank vectors. Keyed on a 64-bit mix of (session key, candidate
  // list hash); entries store both components and the candidate count, so a
  // hit requires a three-way match. Kept engine-wide (not per pool) because
  // drain waves interleave same-structure requests with different sessions.
  struct RankCacheEntry {
    uint64_t session = 0;
    uint64_t cand_hash = 0;
    size_t count = 0;
    std::vector<double> ranked;
  };
  std::unordered_map<uint64_t, RankCacheEntry> rank_cache_;

  // Per-call scratch.
  std::vector<int32_t> sig_scratch_;
};

}  // namespace costream::service

#endif  // COSTREAM_SERVICE_SCORING_ENGINE_H_
