#ifndef COSTREAM_SERVICE_LOAD_LEDGER_H_
#define COSTREAM_SERVICE_LOAD_LEDGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/fluid_engine.h"
#include "sim/hardware.h"

namespace costream::service {

// Congestion parameters of the ledger (negotiated-congestion pricing in the
// style of PathFinder-class routers: per-node history `he` and overflow `of`
// terms with a precomputed escalating penalty table).
struct LedgerConfig {
  // A node counts as overflowed when any resource's demand exceeds
  // margin * capacity. 1.0 = the fluid engine's backpressure boundary.
  double capacity_margin = 1.0;
  // Weight of the history term: penalty *= (1 + history_weight * he).
  double history_weight = 0.5;
  // Base of the precomputed overflow table: table[of] = growth^of (clamped).
  double overflow_growth = 2.0;
  // Penalties never exceed this (keeps scores finite on hopeless fixtures).
  double max_penalty = 1e6;
};

// Shared per-node load state of a long-lived multi-tenant cluster. Every live
// query contributes the steady-state BackgroundLoad of its placement; the
// ledger aggregates demand per node, detects overflow against the absolute
// sim::NodeCapacity, and maintains the negotiated-congestion state (history
// and overflow counts with escalating penalties) that the placement service
// uses to reprice contended nodes across rip-up iterations.
//
// Determinism: totals are recomputed by summing the per-query loads in
// ascending id order, so they are a pure function of the live set — admitting
// and then retiring a query restores the previous totals bitwise, and the
// result never depends on the order in which queries arrived or departed.
class ClusterLoadLedger {
 public:
  explicit ClusterLoadLedger(sim::Cluster cluster,
                             const LedgerConfig& config = LedgerConfig());

  const sim::Cluster& cluster() const { return cluster_; }
  int num_nodes() const { return cluster_.num_nodes(); }
  const LedgerConfig& config() const { return config_; }

  // --- Live-set bookkeeping -------------------------------------------------

  // Registers `load` under `id`. `id` must not be live; loads must be sized
  // to the cluster.
  void Admit(int64_t id, const sim::BackgroundLoad& load);
  // Removes `id` from the live set. Returns false when `id` was not live.
  bool Retire(int64_t id);
  bool Contains(int64_t id) const { return loads_.count(id) > 0; }
  int live_queries() const { return static_cast<int>(loads_.size()); }
  // Ascending.
  std::vector<int64_t> QueryIds() const;
  // `id` must be live.
  const sim::BackgroundLoad& LoadOf(int64_t id) const;

  // --- Aggregated demand ----------------------------------------------------

  // Sum of all live loads (empty BackgroundLoad when no query is live).
  sim::BackgroundLoad TotalLoad() const;
  // Sum of all live loads except `id` (which may or may not be live).
  sim::BackgroundLoad TotalLoadExcluding(int64_t id) const;

  // The cluster as a *new* query sees it: capacities derated by the total
  // demand (sim::DerateCluster).
  sim::Cluster LoadedView() const;
  sim::Cluster LoadedViewExcluding(int64_t id) const;

  // max over resources of demand / capacity for node `n` under TotalLoad().
  double NodeUtilization(int n) const;
  // Nodes whose utilization exceeds the capacity margin, ascending.
  std::vector<int> OverflowedNodes() const;

  // --- Negotiated congestion ------------------------------------------------

  // One repricing step: recomputes per-node overflow counts `of` from the
  // current demand (how many margin-fractions the node is over capacity) and
  // increments the history `he` of every currently-overflowed node. Returns
  // the overflowed nodes, ascending. Penalties escalate monotonically in the
  // number of iterations a node stays contended.
  std::vector<int> UpdateCongestion();

  // Current price multiplier of node `n`:
  //   (1 + history_weight * he[n]) * overflow_table[of[n]]   (>= 1).
  double NodePenalty(int n) const;
  // Price of adding `extra` demand on top of the current total: mean, over
  // the nodes `extra` touches, of the node's history term times the overflow
  // table indexed by max(of[n], projected overflow with `extra` included).
  // Unlike NodePenalty this reflects *present* congestion — including the
  // candidate's own contribution and everything re-placed since the last
  // UpdateCongestion() — so within one rip-up iteration sequentially
  // re-placed queries immediately price each other's landings (PathFinder's
  // present-congestion p(n) term, on top of the lagged history term).
  double PlacementPenalty(const sim::BackgroundLoad& extra) const;
  // Same, against a caller-precomputed `total` (must be TotalLoad() or a
  // TotalLoadExcluding(...) of this ledger) — hot scoring loops compute the
  // total once and price every candidate against it.
  double PlacementPenalty(const sim::BackgroundLoad& extra,
                          const sim::BackgroundLoad& total) const;
  int history(int n) const { return he_[n]; }
  int overflow_count(int n) const { return of_[n]; }
  // Forgets all congestion state (demand bookkeeping is untouched).
  void ResetCongestion();

  // --- Self-check (tests, costream_serve --check) ---------------------------

  // Verifies the ledger's internal invariants: every stored load is sized to
  // the cluster and non-negative, and the aggregated totals equal the sum of
  // the live per-query loads exactly. Returns "" when consistent.
  std::string CheckInvariants() const;

 private:
  static constexpr int kOverflowTableSize = 64;

  // Overflow magnitude of a utilization value, in margin-quarters over
  // capacity (0 when within the margin), clamped to the table.
  int OverflowMagnitude(double util) const;

  sim::Cluster cluster_;
  LedgerConfig config_;
  std::vector<sim::NodeCapacity> capacity_;
  // Live loads keyed by query id; std::map keeps iteration (and therefore
  // summation) in ascending-id order.
  std::map<int64_t, sim::BackgroundLoad> loads_;
  std::vector<int> he_;  // history: iterations a node has spent overflowed
  std::vector<int> of_;  // current overflow magnitude (margin-fractions over)
  // Precomputed escalating overflow penalties: table[k] = growth^k, clamped
  // to max_penalty (cf. the VLSIGR router's cost_pe table).
  std::vector<double> overflow_table_;
};

}  // namespace costream::service

#endif  // COSTREAM_SERVICE_LOAD_LEDGER_H_
