// Cost-based initial operator placement for an IoT scenario: a smart
// factory correlates machine vibration and temperature streams and raises
// alerts over a heterogeneous edge-fog-cloud landscape.
//
// The example trains a COSTREAM latency ensemble plus the success /
// backpressure sanity classifiers, enumerates rule-conforming placement
// candidates (Fig. 5), picks the best (Fig. 4), and compares the result
// against the Governor-style heuristic placement and the median candidate.
//
// Usage: ./build/examples/smart_factory_placement [corpus_size]
#include <cstdio>
#include <cstdlib>

#include "baselines/heuristic.h"
#include "dsps/query_builder.h"
#include "placement/optimizer.h"
#include "sim/fluid_engine.h"
#include "workload/corpus.h"

using namespace costream;

namespace {

dsps::QueryGraph SmartFactoryQuery() {
  dsps::QueryBuilder b;
  // Vibration sensors: (machine id, amplitude, frequency).
  auto vibration = b.Source(4000.0, {dsps::DataType::kInt,
                                     dsps::DataType::kDouble,
                                     dsps::DataType::kDouble});
  // Temperature sensors: (machine id, celsius).
  auto temperature =
      b.Source(2000.0, {dsps::DataType::kInt, dsps::DataType::kDouble});
  // Only strong vibrations are interesting.
  auto strong = b.Filter(vibration, dsps::FilterFunction::kGreater,
                         dsps::DataType::kDouble, 0.15);
  // Correlate readings of the same machine within a short window (alerts
  // must be fresh, so the latency floor stays low and placement dominates).
  dsps::WindowSpec window;
  window.type = dsps::WindowType::kSliding;
  window.policy = dsps::WindowPolicy::kCountBased;
  window.size = 80;
  window.slide = 40;
  auto correlated = b.WindowedJoin(strong, temperature, window,
                                   dsps::DataType::kInt, 2e-3);
  // Aggregate alerts per machine.
  dsps::WindowSpec alert_window;
  alert_window.type = dsps::WindowType::kTumbling;
  alert_window.policy = dsps::WindowPolicy::kCountBased;
  alert_window.size = 40;
  auto alerts = b.WindowedAggregate(correlated, alert_window,
                                    dsps::AggregateFunction::kMax,
                                    dsps::GroupByType::kInt,
                                    dsps::DataType::kDouble, 0.05);
  return b.Sink(alerts);
}

sim::Cluster SmartFactoryCluster() {
  sim::Cluster cluster;
  cluster.nodes.push_back({50.0, 1000.0, 25.0, 40.0});     // sensor hub A
  cluster.nodes.push_back({100.0, 2000.0, 50.0, 40.0});    // sensor hub B
  cluster.nodes.push_back({300.0, 8000.0, 400.0, 10.0});   // factory server
  cluster.nodes.push_back({400.0, 8000.0, 800.0, 10.0});   // factory server
  cluster.nodes.push_back({800.0, 32000.0, 10000.0, 2.0}); // cloud VM
  return cluster;
}

const char* NodeName(int n) {
  static const char* kNames[] = {"hub-a", "hub-b", "factory-1", "factory-2",
                                 "cloud"};
  return kNames[n];
}

double MeasureLp(const dsps::QueryGraph& q, const sim::Cluster& c,
                 const sim::Placement& p) {
  sim::FluidConfig config;
  config.noise_sigma = 0.0;
  return sim::EvaluateFluid(q, c, p, config).metrics.processing_latency_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const int corpus_size = argc > 1 ? std::atoi(argv[1]) : 2000;

  const dsps::QueryGraph query = SmartFactoryQuery();
  const sim::Cluster cluster = SmartFactoryCluster();
  std::printf("query: %s\n", query.DebugString().c_str());

  std::printf("training cost models on %d traces...\n", corpus_size);
  workload::CorpusConfig config;
  config.num_queries = corpus_size;
  const auto records = workload::BuildCorpus(config);
  const auto split =
      workload::SplitCorpus(static_cast<int64_t>(records.size()), 0.9, 0.1, 3);
  const auto train_recs = workload::Gather(records, split.train);
  const auto val_recs = workload::Gather(records, split.val);

  core::TrainConfig tc;
  tc.epochs = 16;
  core::Ensemble latency(core::CostModelConfig{}, 3);
  latency.Train(
      workload::ToTrainSamples(train_recs, sim::Metric::kProcessingLatency),
      workload::ToTrainSamples(val_recs, sim::Metric::kProcessingLatency),
      tc);
  core::CostModelConfig cls;
  cls.head = core::HeadKind::kClassification;
  core::Ensemble success(cls, 3);
  success.Train(workload::ToTrainSamples(train_recs, sim::Metric::kSuccess),
                workload::ToTrainSamples(val_recs, sim::Metric::kSuccess),
                tc);
  core::Ensemble backpressure(cls, 3);
  backpressure.Train(
      workload::ToTrainSamples(train_recs, sim::Metric::kBackpressure),
      workload::ToTrainSamples(val_recs, sim::Metric::kBackpressure), tc);

  placement::PlacementOptimizer optimizer(&latency, &success, &backpressure);
  placement::OptimizerConfig oc;
  oc.target = sim::Metric::kProcessingLatency;
  oc.enumeration.num_candidates = 60;
  const placement::OptimizerResult result =
      optimizer.Optimize(query, cluster, oc);

  std::printf("\nchosen placement (predicted L_p %.1f ms, %d candidates, "
              "%d filtered by sanity checks):\n",
              result.predicted_cost, result.candidates_evaluated,
              result.candidates_filtered);
  for (int op = 0; op < query.num_operators(); ++op) {
    std::printf("  %-9s -> %s\n", dsps::ToString(query.op(op).type),
                NodeName(result.best[op]));
  }

  const double lp_optimized = MeasureLp(query, cluster, result.best);
  const sim::Placement heuristic =
      baselines::GovernorHeuristicPlacement(query, cluster);
  const double lp_heuristic = MeasureLp(query, cluster, heuristic);

  // Median candidate as a neutral reference point.
  const auto candidates =
      placement::EnumerateCandidates(query, cluster, oc.enumeration);
  std::vector<double> lps;
  for (const auto& candidate : candidates) {
    lps.push_back(MeasureLp(query, cluster, candidate));
  }
  const double lp_median = eval::Quantile(lps, 0.5);

  std::printf("\nmeasured processing latency (fluid engine):\n");
  std::printf("  optimized placement  %8.1f ms\n", lp_optimized);
  std::printf("  heuristic placement  %8.1f ms  (%.1fx slower)\n",
              lp_heuristic, lp_heuristic / lp_optimized);
  std::printf("  median candidate     %8.1f ms  (%.1fx slower)\n", lp_median,
              lp_median / lp_optimized);
  return 0;
}
