// Command-line front end for the COSTREAM toolchain — the workflow a
// downstream user runs without writing C++:
//
//   costream_cli generate --n 3000 --seed 7 --threads 0 --out traces.bin
//   costream_cli train    --traces traces.bin --metric throughput
//                         --epochs 24 --out throughput.bin
//   costream_cli evaluate --traces traces.bin --metric throughput
//                         --model throughput.bin
//   costream_cli inspect  --traces traces.bin
//
// Traces use the versioned formats of workload/trace_io.h (binary v2 by
// default; --format v1 writes the human-diffable text format, and readers
// auto-detect either). Models are the binary format of nn/serialize.h.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/trainer.h"
#include "eval/table.h"
#include "workload/corpus.h"
#include "workload/trace_io.h"

using namespace costream;

namespace {

// Minimal --key value parser.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

bool ParseMetric(const std::string& name, sim::Metric* metric) {
  for (sim::Metric m : {sim::Metric::kThroughput, sim::Metric::kE2eLatency,
                        sim::Metric::kProcessingLatency,
                        sim::Metric::kBackpressure, sim::Metric::kSuccess}) {
    if (name == sim::ToString(m)) {
      *metric = m;
      return true;
    }
  }
  return false;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  costream_cli generate --n <queries> [--seed S] [--threads T]\n"
      "                        [--format v1|v2|v2c] [--compress 1]\n"
      "                        [--block-bytes N] --out <traces>\n"
      "  costream_cli train    --traces <file> --metric <m> [--epochs E]\n"
      "                        --out <model>\n"
      "  costream_cli evaluate --traces <file> --metric <m> --model <file>\n"
      "  costream_cli inspect  --traces <file>\n"
      "metrics: throughput | e2e-latency | processing-latency |\n"
      "         backpressure | query-success\n"
      "--threads 0 uses every hardware thread (output is identical for any\n"
      "thread count); --format defaults to the v2 binary trace format\n"
      "(v2c or --compress 1 writes block-compressed v2 with a trailing\n"
      "index, --block-bytes sets the uncompressed block size), readers\n"
      "auto-detect every format\n");
  return 1;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  workload::CorpusConfig config;
  config.num_queries = std::atoi(FlagOr(flags, "n", "1000").c_str());
  config.seed = std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  config.num_threads = std::atoi(FlagOr(flags, "threads", "0").c_str());
  std::string format_name = FlagOr(flags, "format", "v2");
  if (FlagOr(flags, "compress", "0") == "1") format_name = "v2c";
  if (format_name != "v1" && format_name != "v2" && format_name != "v2c")
    return Usage();
  workload::TraceWriter::Options writer_options;
  writer_options.format = format_name == "v1"
                              ? workload::TraceFormat::kTextV1
                          : format_name == "v2"
                              ? workload::TraceFormat::kBinaryV2
                              : workload::TraceFormat::kBinaryV2Compressed;
  const long long block_bytes =
      std::atoll(FlagOr(flags, "block-bytes", "0").c_str());
  if (block_bytes > 0) {
    writer_options.block_bytes = static_cast<size_t>(block_bytes);
  }
  const std::string out = FlagOr(flags, "out", "");
  if (out.empty() || config.num_queries <= 0) return Usage();
  std::printf("generating %d traces (seed %llu, %s)...\n", config.num_queries,
              static_cast<unsigned long long>(config.seed),
              format_name.c_str());
  const auto records = workload::BuildCorpus(config);
  for (const auto& r : records) {
    if (r.cluster.has_link_matrix()) {
      writer_options.link_sections = true;
      break;
    }
  }
  workload::TraceWriter writer;
  bool ok = writer.Open(out, writer_options);
  for (size_t i = 0; ok && i < records.size(); ++i) {
    ok = writer.Append(records[i]);
  }
  ok = ok && writer.Finish();
  if (!ok) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  int failures = 0, backpressured = 0;
  for (const auto& r : records) {
    failures += !r.metrics.success;
    backpressured += r.metrics.backpressure;
  }
  std::printf("wrote %zu traces to %s (%d backpressured, %d failed)\n",
              records.size(), out.c_str(), backpressured, failures);
  return 0;
}

bool LoadRecords(const std::map<std::string, std::string>& flags,
                 std::vector<workload::TraceRecord>* records) {
  const std::string path = FlagOr(flags, "traces", "");
  if (path.empty()) return false;
  if (!workload::LoadTracesFromFile(path, records)) {
    std::fprintf(stderr, "error: cannot parse %s\n", path.c_str());
    return false;
  }
  return true;
}

int CmdTrain(const std::map<std::string, std::string>& flags) {
  std::vector<workload::TraceRecord> records;
  if (!LoadRecords(flags, &records)) return Usage();
  sim::Metric metric;
  if (!ParseMetric(FlagOr(flags, "metric", ""), &metric)) return Usage();
  const std::string out = FlagOr(flags, "out", "");
  if (out.empty()) return Usage();
  const int epochs = std::atoi(FlagOr(flags, "epochs", "24").c_str());

  const auto split = workload::SplitCorpus(
      static_cast<int64_t>(records.size()), 0.9, 0.1, 17);
  const auto train = workload::ToTrainSamples(
      workload::Gather(records, split.train), metric);
  const auto val =
      workload::ToTrainSamples(workload::Gather(records, split.val), metric);
  std::printf("training %s on %zu samples (%d epochs)...\n",
              sim::ToString(metric), train.size(), epochs);

  core::CostModelConfig model_config;
  model_config.head = sim::IsRegressionMetric(metric)
                          ? core::HeadKind::kRegression
                          : core::HeadKind::kClassification;
  core::CostModel model(model_config);
  core::TrainConfig tc;
  tc.epochs = epochs;
  const core::TrainResult result = core::TrainModel(model, train, val, tc);
  std::printf("best validation loss %.4f (epoch %d)\n", result.best_val_loss,
              result.best_epoch);
  if (!model.Save(out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("model saved to %s\n", out.c_str());
  return 0;
}

int CmdEvaluate(const std::map<std::string, std::string>& flags) {
  std::vector<workload::TraceRecord> records;
  if (!LoadRecords(flags, &records)) return Usage();
  sim::Metric metric;
  if (!ParseMetric(FlagOr(flags, "metric", ""), &metric)) return Usage();
  const std::string model_path = FlagOr(flags, "model", "");
  if (model_path.empty()) return Usage();

  core::CostModelConfig model_config;
  model_config.head = sim::IsRegressionMetric(metric)
                          ? core::HeadKind::kRegression
                          : core::HeadKind::kClassification;
  core::CostModel model(model_config);
  if (!model.Load(model_path)) {
    std::fprintf(stderr, "error: cannot load %s (architecture mismatch?)\n",
                 model_path.c_str());
    return 1;
  }
  const auto samples = workload::ToTrainSamples(records, metric);
  if (sim::IsRegressionMetric(metric)) {
    const auto q = core::EvaluateRegression(model, samples);
    std::printf("%s on %d samples: q50 %.2f, q95 %.2f\n",
                sim::ToString(metric), q.count, q.q50, q.q95);
  } else {
    const double acc = core::EvaluateClassification(model, samples);
    std::printf("%s on %zu samples: accuracy %.1f%%\n", sim::ToString(metric),
                samples.size(), acc * 100.0);
  }
  return 0;
}

int CmdInspect(const std::map<std::string, std::string>& flags) {
  std::vector<workload::TraceRecord> records;
  if (!LoadRecords(flags, &records)) return Usage();
  std::map<std::string, int> by_template;
  int failures = 0, backpressured = 0;
  double min_t = 1e300, max_t = 0.0;
  for (const auto& r : records) {
    ++by_template[ToString(r.template_kind)];
    failures += !r.metrics.success;
    backpressured += r.metrics.backpressure;
    if (r.metrics.success) {
      min_t = std::min(min_t, r.metrics.throughput);
      max_t = std::max(max_t, r.metrics.throughput);
    }
  }
  eval::Table table({"Property", "Value"});
  table.AddRow({"traces", std::to_string(records.size())});
  for (const auto& [name, count] : by_template) {
    table.AddRow({"  " + name, std::to_string(count)});
  }
  table.AddRow({"backpressured", std::to_string(backpressured)});
  table.AddRow({"failed", std::to_string(failures)});
  table.AddRow({"throughput range",
                eval::Table::Num(min_t, 3) + " .. " +
                    eval::Table::Num(max_t, 1) + " tuples/s"});
  std::printf("%s", table.ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "inspect") return CmdInspect(flags);
  return Usage();
}
