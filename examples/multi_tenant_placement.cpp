// Multi-query (multi-tenant) placement: a new query is placed on a cluster
// that already runs other queries. The background load of the deployed
// queries is aggregated, the cluster's *remaining* capacities are presented
// to the zero-shot cost model via placement::EffectiveCluster, and the
// optimizer picks a placement that avoids the busy nodes — no model
// retraining required (the transferable-feature property of the paper).
//
// Usage: ./build/examples/multi_tenant_placement [corpus_size]
#include <cstdio>
#include <cstdlib>

#include "dsps/query_builder.h"
#include "placement/multi_query.h"
#include "placement/optimizer.h"
#include "workload/corpus.h"

using namespace costream;

namespace {

// The tenant already occupying part of the cluster: a heavy ingest query
// with parallel instances that saturate most of the cloud node.
dsps::QueryGraph TenantQuery() {
  dsps::QueryBuilder b;
  auto s = b.Source(25600.0, std::vector<dsps::DataType>(
                                  10, dsps::DataType::kString));
  auto f = b.Filter(s, dsps::FilterFunction::kStartsWith,
                    dsps::DataType::kString, 0.9);
  dsps::QueryGraph q = b.Sink(f);
  for (int id = 0; id < q.num_operators(); ++id) {
    q.mutable_op(id).parallelism = 8;  // use the cloud node's cores
  }
  return q;
}

// The new query to be placed.
dsps::QueryGraph NewQuery() {
  dsps::QueryBuilder b;
  auto s = b.Source(3200.0, {dsps::DataType::kInt, dsps::DataType::kDouble});
  auto f = b.Filter(s, dsps::FilterFunction::kGreater,
                    dsps::DataType::kDouble, 0.3);
  return b.Sink(f);
}

sim::Cluster SharedCluster() {
  sim::Cluster cluster;
  cluster.nodes.push_back({200.0, 4000.0, 200.0, 20.0});   // edge A
  cluster.nodes.push_back({200.0, 4000.0, 200.0, 20.0});   // edge B
  cluster.nodes.push_back({400.0, 8000.0, 1600.0, 5.0});   // fog
  cluster.nodes.push_back({800.0, 32000.0, 10000.0, 2.0}); // cloud
  return cluster;
}

}  // namespace

int main(int argc, char** argv) {
  const int corpus_size = argc > 1 ? std::atoi(argv[1]) : 1800;

  const sim::Cluster cluster = SharedCluster();
  const dsps::QueryGraph tenant = TenantQuery();
  // The tenant occupies the *cloud* node — the node every latency-optimal
  // placement would otherwise pick.
  const sim::Placement tenant_placement(tenant.num_operators(), 3);
  const dsps::QueryGraph query = NewQuery();

  std::printf("training the latency ensemble on %d traces...\n", corpus_size);
  workload::CorpusConfig config;
  config.num_queries = corpus_size;
  const auto records = workload::BuildCorpus(config);
  core::Ensemble latency(core::CostModelConfig{}, 1);
  core::TrainConfig tc;
  tc.epochs = 16;
  latency.Train(
      workload::ToTrainSamples(records, sim::Metric::kProcessingLatency), {},
      tc);
  placement::PlacementOptimizer optimizer(&latency, nullptr, nullptr);
  placement::OptimizerConfig oc;
  oc.enumeration.num_candidates = 40;

  // Placement as if the cluster were idle.
  const auto idle_result = optimizer.Optimize(query, cluster, oc);

  // Placement aware of the tenants' load (two instances of the ingest
  // pipeline share the cloud node, leaving almost no headroom there).
  const sim::BackgroundLoad background = placement::AggregateLoad(
      {{&tenant, &tenant_placement}, {&tenant, &tenant_placement}}, cluster);
  const sim::Cluster effective =
      placement::EffectiveCluster(cluster, background);
  const auto aware_result = optimizer.Optimize(query, effective, oc);

  // Judge both with the fluid oracle under the true background load.
  sim::FluidConfig fluid;
  fluid.noise_sigma = 0.0;
  fluid.background = background;
  const double lp_idle =
      sim::EvaluateFluid(query, cluster, idle_result.best, fluid)
          .metrics.processing_latency_ms;
  const double lp_aware =
      sim::EvaluateFluid(query, cluster, aware_result.best, fluid)
          .metrics.processing_latency_ms;

  std::printf("\nbackground: tenant queries occupy the cloud node "
              "(%.2f cores of load)\n",
              background.cpu_load_us[3] / 1e6);
  std::printf("new query placed assuming an idle cluster:   L_p %8.1f ms\n",
              lp_idle);
  std::printf("new query placed with background awareness:  L_p %8.1f ms\n",
              lp_aware);
  std::printf("\nplacements (node per operator):\n  idle-assumption: ");
  for (int n : idle_result.best) std::printf("%d ", n);
  std::printf("\n  load-aware:      ");
  for (int n : aware_result.best) std::printf("%d ", n);
  std::printf("\n");
  return 0;
}
