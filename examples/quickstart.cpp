// Quickstart: the COSTREAM public API in one file.
//
//  1. Build a streaming query with the fluent QueryBuilder.
//  2. Describe an edge-cloud cluster and place the operators.
//  3. Execute the placed query on the discrete-event simulator.
//  4. Train a small COSTREAM cost model and predict the execution costs of
//     the same placement *without* running it.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/trainer.h"
#include "dsps/query_builder.h"
#include "sim/des.h"
#include "sim/fluid_engine.h"
#include "workload/corpus.h"

using namespace costream;

int main() {
  // --- 1. A streaming query: temperature sensors, filtered, averaged ------
  dsps::QueryBuilder builder;
  auto sensors = builder.Source(
      /*event_rate=*/2000.0,
      {dsps::DataType::kInt, dsps::DataType::kDouble, dsps::DataType::kString});
  auto hot = builder.Filter(sensors, dsps::FilterFunction::kGreater,
                            dsps::DataType::kDouble, /*selectivity=*/0.2);
  dsps::WindowSpec window;
  window.type = dsps::WindowType::kSliding;
  window.policy = dsps::WindowPolicy::kTimeBased;
  window.size = 4.0;   // seconds
  window.slide = 2.0;
  auto averaged = builder.WindowedAggregate(
      hot, window, dsps::AggregateFunction::kMean, dsps::GroupByType::kInt,
      dsps::DataType::kDouble, /*selectivity=*/0.1);
  dsps::QueryGraph query = builder.Sink(averaged);
  std::printf("query: %s\n", query.DebugString().c_str());

  // --- 2. An edge-cloud cluster and a placement ---------------------------
  sim::Cluster cluster;
  cluster.nodes.push_back({100.0, 2000.0, 100.0, 20.0});    // edge gateway
  cluster.nodes.push_back({800.0, 32000.0, 10000.0, 1.0});  // cloud server
  // Source + filter at the edge, the windowed aggregation + sink in the
  // cloud (operator ids follow insertion order: src, filter, window, agg,
  // sink).
  sim::Placement placement = {0, 0, 1, 1, 1};

  // --- 3. Execute on the tuple-level simulator ----------------------------
  sim::DesConfig des_config;
  des_config.duration_s = 10.0;
  const sim::DesReport executed = RunDes(query, cluster, placement, des_config);
  std::printf("\nexecuted on the discrete-event simulator (%.0fs):\n",
              executed.simulated_s);
  std::printf("  throughput        %8.2f tuples/s\n",
              executed.metrics.throughput);
  std::printf("  processing latency%8.1f ms\n",
              executed.metrics.processing_latency_ms);
  std::printf("  e2e latency       %8.1f ms\n",
              executed.metrics.e2e_latency_ms);
  std::printf("  backpressure      %8s\n",
              executed.metrics.backpressure ? "yes" : "no");

  // --- 4. Predict the same costs with a learned model ---------------------
  std::printf("\ntraining a small COSTREAM throughput model...\n");
  workload::CorpusConfig corpus_config;
  corpus_config.num_queries = 800;
  const auto records = workload::BuildCorpus(corpus_config);
  const auto samples =
      workload::ToTrainSamples(records, sim::Metric::kThroughput);

  core::CostModel model(core::CostModelConfig{});
  core::TrainConfig train_config;
  train_config.epochs = 12;
  core::TrainModel(model, samples, {}, train_config);

  const core::JointGraph graph =
      core::BuildJointGraph(query, cluster, placement);
  const double predicted = model.PredictRegression(graph);
  std::printf("predicted throughput: %.2f tuples/s (executed: %.2f)\n",
              predicted, executed.metrics.throughput);
  std::printf(
      "\nSee examples/train_cost_model.cpp for full-quality training and\n"
      "examples/smart_factory_placement.cpp for cost-based placement.\n");
  return 0;
}
