// Compares the two simulation substrates on the same placed queries: the
// analytical fluid cost engine (used for label generation) and the
// tuple-level discrete-event simulator. Agreement between them is the
// evidence that fluid-model labels stand in for real executions (see
// DESIGN.md, "Substitutions").
//
// Usage: ./build/examples/compare_simulators [num_queries]
#include <cstdio>
#include <cstdlib>

#include "eval/table.h"
#include "placement/enumeration.h"
#include "sim/des.h"
#include "sim/fluid_engine.h"
#include "workload/generator.h"

using namespace costream;

int main(int argc, char** argv) {
  const int num_queries = argc > 1 ? std::atoi(argv[1]) : 8;

  workload::GeneratorConfig generator_config;
  // Moderate rates keep the tuple-level simulation fast.
  generator_config.workload.event_rate_linear = {200, 400, 800, 1600};
  generator_config.workload.event_rate_two_way = {100, 250, 500};
  generator_config.workload.event_rate_three_way = {50, 100, 200};
  workload::QueryGenerator generator(generator_config);
  nn::Rng rng(11);

  eval::Table table({"Query", "T fluid", "T DES", "L_p fluid (ms)",
                     "L_p DES (ms)", "BP fluid", "BP DES"});
  for (int i = 0; i < num_queries; ++i) {
    const auto kind = static_cast<workload::QueryTemplate>(i % 3);
    const dsps::QueryGraph query = generator.Generate(kind, rng);
    const sim::Cluster cluster = generator.GenerateCluster(rng);
    const auto bins = placement::CapabilityBins(cluster);
    const sim::Placement placement =
        placement::SamplePlacement(query, cluster, bins, rng);

    sim::FluidConfig fluid_config;
    fluid_config.noise_sigma = 0.0;
    const sim::FluidReport fluid =
        sim::EvaluateFluid(query, cluster, placement, fluid_config);

    sim::DesConfig des_config;
    des_config.duration_s = 20.0;
    des_config.seed = rng.Fork();
    const sim::DesReport des = RunDes(query, cluster, placement, des_config);

    table.AddRow({ToString(kind),
                  eval::Table::Num(fluid.metrics.throughput, 1),
                  eval::Table::Num(des.metrics.throughput, 1),
                  eval::Table::Num(fluid.metrics.processing_latency_ms, 1),
                  eval::Table::Num(des.metrics.processing_latency_ms, 1),
                  fluid.metrics.backpressure ? "yes" : "no",
                  des.metrics.backpressure ? "yes" : "no"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nNote: the fluid engine reports steady-state expectations while the\n"
      "DES measures a finite stochastic run, so small deviations are "
      "expected.\n");
  return 0;
}
