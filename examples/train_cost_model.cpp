// Full training pipeline: regenerate a cost-estimation corpus, train all
// five COSTREAM metric models, report held-out quality, and persist the
// models to ./models/.
//
// Usage: ./build/examples/train_cost_model [num_queries] [epochs] [threads]
// `threads` sets TrainConfig::num_threads (0 = all hardware threads; results
// are bitwise-identical for every value).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/trainer.h"
#include "eval/table.h"
#include "workload/corpus.h"

using namespace costream;

int main(int argc, char** argv) {
  const int num_queries = argc > 1 ? std::atoi(argv[1]) : 3000;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 22;
  const int num_threads = argc > 3 ? std::atoi(argv[3]) : 0;

  std::printf("generating %d labelled query traces...\n", num_queries);
  workload::CorpusConfig config;
  config.num_queries = num_queries;
  const auto records = workload::BuildCorpus(config);
  const auto split = workload::SplitCorpus(
      static_cast<int64_t>(records.size()), 0.8, 0.1, 9);
  const auto train_recs = workload::Gather(records, split.train);
  const auto val_recs = workload::Gather(records, split.val);
  const auto test_recs = workload::Gather(records, split.test);

  std::error_code ec;
  std::filesystem::create_directories("models", ec);

  eval::Table table({"Metric", "Result on test split"});
  for (sim::Metric metric :
       {sim::Metric::kThroughput, sim::Metric::kE2eLatency,
        sim::Metric::kProcessingLatency, sim::Metric::kBackpressure,
        sim::Metric::kSuccess}) {
    std::printf("training %s model (%d epochs)...\n", sim::ToString(metric),
                epochs);
    core::CostModelConfig model_config;
    model_config.head = sim::IsRegressionMetric(metric)
                            ? core::HeadKind::kRegression
                            : core::HeadKind::kClassification;
    core::CostModel model(model_config);

    core::TrainConfig tc;
    tc.epochs = epochs;
    tc.num_threads = num_threads;
    core::TrainModel(model, workload::ToTrainSamples(train_recs, metric),
                     workload::ToTrainSamples(val_recs, metric), tc);

    std::string result;
    if (sim::IsRegressionMetric(metric)) {
      const auto q = core::EvaluateRegression(
          model, workload::ToTrainSamples(test_recs, metric));
      result = "q50 " + eval::Table::Num(q.q50) + ", q95 " +
               eval::Table::Num(q.q95);
    } else {
      const double acc = core::EvaluateClassification(
          model, workload::ToTrainSamples(test_recs, metric));
      result = "accuracy " + eval::Table::Percent(acc);
    }
    table.AddRow({sim::ToString(metric), result});

    const std::string path =
        std::string("models/") + sim::ToString(metric) + ".bin";
    if (model.Save(path)) {
      std::printf("  saved to %s\n", path.c_str());
    }
  }
  std::printf("\n%s", table.ToString().c_str());
  return 0;
}
