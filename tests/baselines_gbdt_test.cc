#include "baselines/gbdt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/random.h"

namespace costream::baselines {
namespace {

TEST(GbdtTest, FitsConstantFunction) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(5.0);
  }
  Gbdt gbdt(GbdtConfig{}, GbdtObjective::kSquaredError);
  gbdt.Fit(x, y);
  EXPECT_NEAR(gbdt.Predict({50.0}), 5.0, 1e-6);
}

TEST(GbdtTest, FitsStepFunction) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    const double v = i / 400.0;
    x.push_back({v});
    y.push_back(v < 0.5 ? 1.0 : 10.0);
  }
  GbdtConfig config;
  config.subsample = 1.0;
  Gbdt gbdt(config, GbdtObjective::kSquaredError);
  gbdt.Fit(x, y);
  EXPECT_NEAR(gbdt.Predict({0.2}), 1.0, 0.3);
  EXPECT_NEAR(gbdt.Predict({0.8}), 10.0, 0.3);
}

TEST(GbdtTest, FitsSmoothNonlinearFunction) {
  nn::Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 1500; ++i) {
    const double a = rng.Uniform(-2.0, 2.0);
    const double b = rng.Uniform(-2.0, 2.0);
    x.push_back({a, b});
    y.push_back(a * a + std::sin(b));
  }
  GbdtConfig config;
  config.num_trees = 200;
  Gbdt gbdt(config, GbdtObjective::kSquaredError);
  gbdt.Fit(x, y);
  double mae = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Uniform(-1.8, 1.8);
    const double b = rng.Uniform(-1.8, 1.8);
    mae += std::fabs(gbdt.Predict({a, b}) - (a * a + std::sin(b)));
  }
  EXPECT_LT(mae / 200.0, 0.25);
}

TEST(GbdtTest, SquaredLogErrorHandlesWideRanges) {
  nn::Rng rng(2);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 1000; ++i) {
    const double e = rng.Uniform(0.0, 6.0);
    x.push_back({e});
    y.push_back(std::pow(10.0, e));  // 1 .. 1e6
  }
  Gbdt gbdt(GbdtConfig{}, GbdtObjective::kSquaredLogError);
  gbdt.Fit(x, y);
  // Relative (q-error style) accuracy across the whole range.
  for (double e : {0.5, 2.0, 4.0, 5.5}) {
    const double predicted = gbdt.Predict({e});
    const double actual = std::pow(10.0, e);
    const double q = std::max(predicted / actual, actual / predicted);
    EXPECT_LT(q, 1.5) << "exponent " << e;
  }
}

TEST(GbdtTest, LogisticSeparatesClasses) {
  nn::Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 600; ++i) {
    const double a = rng.Uniform(-1.0, 1.0);
    const double b = rng.Uniform(-1.0, 1.0);
    x.push_back({a, b});
    y.push_back(a + b > 0.0 ? 1.0 : 0.0);
  }
  Gbdt gbdt(GbdtConfig{}, GbdtObjective::kLogistic);
  gbdt.Fit(x, y);
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Uniform(-1.0, 1.0);
    const double b = rng.Uniform(-1.0, 1.0);
    const bool predicted = gbdt.Predict({a, b}) >= 0.5;
    if (predicted == (a + b > 0.0)) ++correct;
  }
  EXPECT_GT(correct, 180);
}

TEST(GbdtTest, LogisticOutputsProbabilities) {
  std::vector<std::vector<double>> x = {{0.0}, {1.0}, {0.0}, {1.0}};
  std::vector<double> y = {0.0, 1.0, 0.0, 1.0};
  GbdtConfig config;
  config.num_trees = 10;
  config.min_samples_leaf = 1;
  config.subsample = 1.0;
  Gbdt gbdt(config, GbdtObjective::kLogistic);
  gbdt.Fit(x, y);
  const double p0 = gbdt.Predict({0.0});
  const double p1 = gbdt.Predict({1.0});
  EXPECT_GE(p0, 0.0);
  EXPECT_LE(p0, 1.0);
  EXPECT_LT(p0, p1);
}

TEST(GbdtTest, DeterministicForSameSeed) {
  nn::Rng rng(4);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Uniform(0.0, 1.0);
    x.push_back({a});
    y.push_back(3.0 * a);
  }
  Gbdt a(GbdtConfig{}, GbdtObjective::kSquaredError);
  Gbdt b(GbdtConfig{}, GbdtObjective::kSquaredError);
  a.Fit(x, y);
  b.Fit(x, y);
  for (double v : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(a.Predict({v}), b.Predict({v}));
  }
}

TEST(GbdtTest, RespectsMinSamplesLeaf) {
  // With min_samples_leaf = n, no split is possible: prediction = mean.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i < 10 ? 0.0 : 10.0);
  }
  GbdtConfig config;
  config.min_samples_leaf = 20;
  config.subsample = 1.0;
  Gbdt gbdt(config, GbdtObjective::kSquaredError);
  gbdt.Fit(x, y);
  EXPECT_NEAR(gbdt.Predict({0.0}), 5.0, 1e-6);
  EXPECT_NEAR(gbdt.Predict({19.0}), 5.0, 1e-6);
}

TEST(GbdtDeathTest, PredictBeforeFitAborts) {
  Gbdt gbdt(GbdtConfig{}, GbdtObjective::kSquaredError);
  EXPECT_DEATH(gbdt.Predict({1.0}), "COSTREAM_CHECK");
}

}  // namespace
}  // namespace costream::baselines
