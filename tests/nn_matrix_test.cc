#include "nn/matrix.h"

#include <gtest/gtest.h>

namespace costream::nn {
namespace {

TEST(MatrixTest, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ConstructionZeroInitializes) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(MatrixTest, InitializerListLayoutIsRowMajor) {
  Matrix m(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
  EXPECT_EQ(m.data()[2], 3.0);
}

TEST(MatrixTest, ElementAssignment) {
  Matrix m(2, 2);
  m(1, 0) = 7.5;
  EXPECT_EQ(m(1, 0), 7.5);
}

TEST(MatrixTest, ResizeZeroDiscardsContents) {
  Matrix m(1, 2, {5.0, 6.0});
  m.ResizeZero(3, 1);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 1);
  for (int r = 0; r < 3; ++r) EXPECT_EQ(m(r, 0), 0.0);
}

TEST(MatrixTest, Fill) {
  Matrix m(2, 2);
  m.Fill(3.25);
  for (int i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 3.25);
}

TEST(MatrixTest, ScalarFactory) {
  Matrix m = Matrix::Scalar(-2.0);
  EXPECT_EQ(m.rows(), 1);
  EXPECT_EQ(m.cols(), 1);
  EXPECT_EQ(m(0, 0), -2.0);
}

TEST(MatrixTest, RowFactoryFromInitializerList) {
  Matrix m = Matrix::Row({1.0, 2.0, 3.0});
  EXPECT_EQ(m.rows(), 1);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(0, 2), 3.0);
}

TEST(MatrixTest, RowFactoryFromVector) {
  std::vector<double> v = {4.0, 5.0};
  Matrix m = Matrix::Row(v);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m(0, 1), 5.0);
}

TEST(MatrixTest, SameShape) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  Matrix c(3, 2);
  EXPECT_TRUE(a.SameShape(b));
  EXPECT_FALSE(a.SameShape(c));
}

TEST(MatrixDeathTest, OutOfBoundsAccessAborts) {
  // Element bounds checks are COSTREAM_DCHECKs: active in Debug and
  // sanitizer (COSTREAM_FORCE_CHECKS) builds, compiled out of plain Release.
#if !defined(NDEBUG) || defined(COSTREAM_FORCE_CHECKS)
  Matrix m(2, 2);
  EXPECT_DEATH(m(2, 0), "COSTREAM_CHECK");
  EXPECT_DEATH(m(0, -1), "COSTREAM_CHECK");
#else
  GTEST_SKIP() << "bounds DCHECKs compiled out in Release";
#endif
}

}  // namespace
}  // namespace costream::nn
