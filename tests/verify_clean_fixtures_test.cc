// The flip side of the defect fixtures: every artifact the repo itself
// produces — generated queries, sampled clusters, rule-conforming placements,
// corpus records, serialized traces and model files — must pass the static
// analyzer with zero error diagnostics (and, for heuristic placements, zero
// diagnostics at all).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/codec.h"

#include "core/model.h"
#include "nn/random.h"
#include "placement/enumeration.h"
#include "verify/artifact_lint.h"
#include "verify/placement_rules.h"
#include "verify/plan_rules.h"
#include "workload/corpus.h"
#include "workload/generator.h"
#include "workload/trace_io.h"

namespace costream::verify {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

int CountErrors(const VerifyReport& report) {
  int n = 0;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

TEST(VerifyCleanFixturesTest, GeneratedQueriesAndHeuristicPlacementsAreClean) {
  workload::GeneratorConfig config;
  workload::QueryGenerator generator(config);
  nn::Rng rng(7);
  const workload::QueryTemplate templates[] = {
      workload::QueryTemplate::kLinear, workload::QueryTemplate::kTwoWayJoin,
      workload::QueryTemplate::kThreeWayJoin,
      workload::QueryTemplate::kFilterChain};
  for (const workload::QueryTemplate t : templates) {
    for (int i = 0; i < 8; ++i) {
      const dsps::QueryGraph query = generator.Generate(t, rng);
      const sim::Cluster cluster = generator.GenerateCluster(rng);
      const std::vector<int> bins = placement::CapabilityBins(cluster);
      const sim::Placement placed =
          placement::SamplePlacement(query, cluster, bins, rng);
      VerifyReport report;
      VerifyPlacedQuery(query, cluster, placed, &report);
      // Structural rules and the slack-factored PL capacity heuristics must
      // stay silent. The DF interval pass proves demand exactly (no slack),
      // and a capability-binned random placement *can* be provably
      // backpressured — that is a legitimate training example, so DF
      // warnings are allowed here; DF errors (DF001/DF004) are not.
      for (const Diagnostic& d : report.diagnostics()) {
        EXPECT_TRUE(d.severity == Severity::kWarning &&
                    RuleFamily(d.rule) == "interval-dataflow")
            << "template " << static_cast<int>(t) << " sample " << i << ":\n"
            << report.DebugString();
      }
    }
  }
}

TEST(VerifyCleanFixturesTest, CorpusRecordsHaveNoErrors) {
  workload::CorpusConfig config;
  config.num_queries = 30;
  config.seed = 11;
  config.duration_s = 2.0;
  // Keep the paper's deliberately-bad random placements in the mix: they may
  // draw capacity *warnings* but must never be structural errors.
  config.random_placement_fraction = 0.3;
  const std::vector<workload::TraceRecord> records =
      workload::BuildCorpus(config);
  ASSERT_EQ(static_cast<int>(records.size()), config.num_queries);
  for (size_t i = 0; i < records.size(); ++i) {
    VerifyReport report;
    VerifyPlacedQuery(records[i].query, records[i].cluster,
                      records[i].placement, &report);
    EXPECT_EQ(CountErrors(report), 0)
        << "record " << i << ":\n" << report.DebugString();
  }
}

TEST(VerifyCleanFixturesTest, SavedTraceCorpusLintsClean) {
  workload::CorpusConfig config;
  config.num_queries = 10;
  config.seed = 5;
  config.duration_s = 2.0;
  const std::vector<workload::TraceRecord> records =
      workload::BuildCorpus(config);
  for (const workload::TraceFormat format :
       {workload::TraceFormat::kTextV1, workload::TraceFormat::kBinaryV2,
        workload::TraceFormat::kBinaryV2Compressed}) {
    const std::string path =
        TempPath(format == workload::TraceFormat::kTextV1 ? "clean_v1.traces"
                 : format == workload::TraceFormat::kBinaryV2
                     ? "clean_v2.traces"
                     : "clean_v2c.traces");
    ASSERT_TRUE(workload::SaveTracesToFile(path, records, format));
    EXPECT_EQ(DetectArtifactKind(path), ArtifactKind::kTraceCorpus);
    VerifyReport report;
    LintTraceFile(path, &report);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(CountErrors(report), 0) << report.DebugString();
    std::remove(path.c_str());
  }
}

TEST(VerifyCleanFixturesTest, TruncatedTraceFileIsTR001) {
  const std::string path = TempPath("truncated.traces");
  {
    std::ofstream os(path, std::ios::binary);
    os << "CSTRACE2";  // magic with no header behind it
  }
  EXPECT_EQ(DetectArtifactKind(path), ArtifactKind::kTraceCorpus);
  VerifyReport report;
  LintTraceFile(path, &report);
  EXPECT_FALSE(report.ok());
  bool saw_tr001 = false;
  for (const Diagnostic& d : report.diagnostics()) {
    saw_tr001 = saw_tr001 || d.rule == kRuleTraceParseFailed;
  }
  EXPECT_TRUE(saw_tr001) << report.DebugString();
  std::remove(path.c_str());
}

// ---- TR002-TR005: compressed block-index lint rules ----

std::string CompressedImage(int num_queries, uint64_t seed) {
  workload::CorpusConfig config;
  config.num_queries = num_queries;
  config.seed = seed;
  config.duration_s = 2.0;
  std::ostringstream os;
  workload::SaveTracesV2Compressed(os, workload::BuildCorpus(config), 2048);
  return std::move(os).str();
}

uint64_t ReadU64At(const std::string& image, size_t offset) {
  uint64_t v = 0;
  std::memcpy(&v, image.data() + offset, sizeof(v));
  return v;
}

// Rewrites u64 `field` (0..5: offset, csize, usize, first_record, count,
// checksum) of index entry `entry`, then re-stamps the trailer's index
// checksum so only the semantic rules — not TR005 — can object.
std::string TamperIndexEntry(const std::string& image, size_t entry,
                             size_t field, uint64_t value) {
  std::string out = image;
  const size_t trailer = out.size() - 32;
  const uint64_t index_offset = ReadU64At(out, trailer);
  const size_t at = index_offset + entry * 48 + field * 8;
  std::memcpy(out.data() + at, &value, sizeof(value));
  const uint64_t checksum = common::Fnv1a64(out.data() + index_offset,
                                            trailer - index_offset);
  std::memcpy(out.data() + trailer + 16, &checksum, sizeof(checksum));
  return out;
}

bool SawRule(const VerifyReport& report, std::string_view rule) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == rule) return true;
  }
  return false;
}

TEST(VerifyCleanFixturesTest, CompressedTraceIndexRulesFire) {
  const std::string image = CompressedImage(12, 19);
  const size_t trailer = image.size() - 32;
  const uint64_t index_offset = ReadU64At(image, trailer);
  const size_t num_entries = (trailer - index_offset) / 48;
  ASSERT_GE(num_entries, 2u) << "corpus too small for a multi-block image";
  const std::string path = TempPath("tampered_index.traces");
  const auto lint = [&](const std::string& bytes) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.close();
    VerifyReport report;
    LintTraceFile(path, &report);
    return report;
  };

  // TR005: trailer cut off.
  EXPECT_TRUE(SawRule(lint(image.substr(0, image.size() - 8)),
                      kRuleTraceIndexUnreadable));
  // TR005: index bytes no longer match the trailer checksum.
  std::string flipped = image;
  flipped[index_offset + 3] = static_cast<char>(flipped[index_offset + 3] ^ 1);
  EXPECT_TRUE(SawRule(lint(flipped), kRuleTraceIndexUnreadable));
  // TR002: second block's record range no longer starts where the first ends.
  const uint64_t first1 = ReadU64At(image, index_offset + 48 + 3 * 8);
  EXPECT_TRUE(SawRule(lint(TamperIndexEntry(image, 1, 3, first1 + 1)),
                      kRuleTraceIndexOrder));
  // TR003: second block's offset breaks the contiguous tiling.
  const uint64_t offset1 = ReadU64At(image, index_offset + 48);
  EXPECT_TRUE(SawRule(lint(TamperIndexEntry(image, 1, 0, offset1 + 8)),
                      kRuleTraceIndexBounds));
  // TR003: absurd uncompressed size.
  EXPECT_TRUE(SawRule(lint(TamperIndexEntry(image, 0, 2, uint64_t{1} << 31)),
                      kRuleTraceIndexBounds));
  // TR004: last block claims extra records beyond the header count.
  const size_t last = num_entries - 1;
  const uint64_t count_last = ReadU64At(image, index_offset + last * 48 + 4 * 8);
  EXPECT_TRUE(SawRule(lint(TamperIndexEntry(image, last, 4, count_last + 3)),
                      kRuleTraceIndexCount));
  // And the untampered image is clean.
  EXPECT_EQ(CountErrors(lint(image)), 0);
  std::remove(path.c_str());
}

TEST(VerifyCleanFixturesTest, SavedModelLintsClean) {
  core::CostModelConfig config;
  config.hidden_dim = 8;
  core::CostModel model(config);
  const std::string path = TempPath("clean.model");
  ASSERT_TRUE(model.Save(path));
  EXPECT_EQ(DetectArtifactKind(path), ArtifactKind::kModelFile);
  VerifyReport report;
  LintModelFile(path, config, &report);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(CountErrors(report), 0) << report.DebugString();
  std::remove(path.c_str());
}

TEST(VerifyCleanFixturesTest, NonFiniteModelWeightIsMF002) {
  core::CostModelConfig config;
  config.hidden_dim = 8;
  core::CostModel model(config);
  model.parameters().front()->value(0, 0) =
      std::numeric_limits<double>::quiet_NaN();
  const std::string path = TempPath("nan.model");
  ASSERT_TRUE(model.Save(path));
  VerifyReport report;
  LintModelFile(path, config, &report);
  EXPECT_FALSE(report.ok());
  bool saw_mf002 = false;
  for (const Diagnostic& d : report.diagnostics()) {
    saw_mf002 = saw_mf002 || d.rule == kRuleModelNonFinite;
  }
  EXPECT_TRUE(saw_mf002) << report.DebugString();
  std::remove(path.c_str());
}

TEST(VerifyCleanFixturesTest, MismatchedModelConfigIsMF001) {
  core::CostModelConfig config;
  config.hidden_dim = 8;
  core::CostModel model(config);
  const std::string path = TempPath("mismatch.model");
  ASSERT_TRUE(model.Save(path));
  core::CostModelConfig wider = config;
  wider.hidden_dim = 16;  // shapes cannot match the checkpoint
  VerifyReport report;
  LintModelFile(path, wider, &report);
  EXPECT_FALSE(report.ok());
  bool saw_mf001 = false;
  for (const Diagnostic& d : report.diagnostics()) {
    saw_mf001 = saw_mf001 || d.rule == kRuleModelLoadFailed;
  }
  EXPECT_TRUE(saw_mf001) << report.DebugString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace costream::verify
