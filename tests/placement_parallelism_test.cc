// Tests of the degree-of-parallelism extension: capacity semantics in both
// simulators, featurization, workload generation, and the tuner.
#include "placement/parallelism_tuner.h"

#include <gtest/gtest.h>

#include "core/featurizer.h"
#include "dsps/query_builder.h"
#include "sim/des.h"
#include "sim/fluid_engine.h"
#include "workload/corpus.h"

namespace costream::placement {
namespace {

using dsps::DataType;
using dsps::FilterFunction;
using dsps::QueryBuilder;
using dsps::QueryGraph;

// A query whose source ingest alone needs ~3.5 reference cores: CPU-bound
// on a single instance, parallelizable across instances.
QueryGraph CpuBoundQuery(int source_parallelism) {
  QueryBuilder b;
  auto s = b.Source(25600.0, std::vector<DataType>(10, DataType::kString));
  QueryGraph q = b.Sink(s);
  q.mutable_op(q.Sources()[0]).parallelism = source_parallelism;
  q.mutable_op(q.Sink()).parallelism = source_parallelism;
  return q;
}

sim::Cluster EightCoreNode() {
  return sim::Cluster{{sim::HardwareNode{800.0, 32000.0, 10000.0, 1.0}}};
}

sim::FluidConfig Noiseless() {
  sim::FluidConfig config;
  config.noise_sigma = 0.0;
  return config;
}

TEST(ParallelismFluidTest, SingleInstanceCapsAtOneCore) {
  QueryGraph q = CpuBoundQuery(1);
  sim::Placement placement(q.num_operators(), 0);
  const sim::FluidReport report =
      sim::EvaluateFluid(q, EightCoreNode(), placement, Noiseless());
  // The 8-core node is mostly idle, but the single-threaded source is the
  // bottleneck: backpressure despite plentiful aggregate CPU.
  EXPECT_TRUE(report.metrics.backpressure);
  EXPECT_LT(report.node_stats[0].cpu_utilization, 0.9);
}

TEST(ParallelismFluidTest, ParallelInstancesRemoveTheBottleneck) {
  QueryGraph q = CpuBoundQuery(8);
  sim::Placement placement(q.num_operators(), 0);
  const sim::FluidReport report =
      sim::EvaluateFluid(q, EightCoreNode(), placement, Noiseless());
  EXPECT_FALSE(report.metrics.backpressure);
  EXPECT_NEAR(report.metrics.throughput, 25600.0, 256.0);
}

TEST(ParallelismFluidTest, ThroughputMonotoneInParallelism) {
  double prev = -1.0;
  for (int p : {1, 2, 4, 8}) {
    QueryGraph q = CpuBoundQuery(p);
    sim::Placement placement(q.num_operators(), 0);
    const double t =
        sim::EvaluateFluid(q, EightCoreNode(), placement, Noiseless())
            .metrics.throughput;
    EXPECT_GE(t, prev - 1e-6) << "parallelism " << p;
    prev = t;
  }
}

TEST(ParallelismFluidTest, ParallelismCannotExceedNodeCores) {
  // On a 1-core node, parallelism 8 changes nothing.
  QueryGraph q1 = CpuBoundQuery(1);
  QueryGraph q8 = CpuBoundQuery(8);
  sim::Cluster one_core{{sim::HardwareNode{100.0, 32000.0, 10000.0, 1.0}}};
  sim::Placement placement(q1.num_operators(), 0);
  const double t1 = sim::EvaluateFluid(q1, one_core, placement, Noiseless())
                        .metrics.throughput;
  const double t8 = sim::EvaluateFluid(q8, one_core, placement, Noiseless())
                        .metrics.throughput;
  EXPECT_NEAR(t1, t8, 1e-6);
}

TEST(ParallelismDesTest, ParallelSourceSustainsHigherRate) {
  sim::DesConfig config;
  config.duration_s = 3.0;
  sim::Placement placement(2, 0);
  const sim::DesReport serial =
      RunDes(CpuBoundQuery(1), EightCoreNode(), placement, config);
  const sim::DesReport parallel =
      RunDes(CpuBoundQuery(8), EightCoreNode(), placement, config);
  EXPECT_GT(parallel.metrics.throughput, serial.metrics.throughput * 1.5);
}

TEST(ParallelismFeaturizerTest, DegreeAppearsInFeatures) {
  QueryGraph q1 = CpuBoundQuery(1);
  QueryGraph q8 = CpuBoundQuery(8);
  sim::Cluster cluster = EightCoreNode();
  sim::Placement placement(q1.num_operators(), 0);
  const core::JointGraph a = core::BuildJointGraph(q1, cluster, placement);
  const core::JointGraph b = core::BuildJointGraph(q8, cluster, placement);
  // Last feature slot of the source node carries the normalized degree.
  EXPECT_EQ(a.nodes[0].features.back(), 0.0);
  EXPECT_NEAR(b.nodes[0].features.back(), 1.0, 1e-9);
}

TEST(ParallelismGeneratorTest, DefaultCorpusStaysSingleInstance) {
  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const QueryGraph q =
        generator.Generate(workload::QueryTemplate::kThreeWayJoin, rng);
    for (int id = 0; id < q.num_operators(); ++id) {
      EXPECT_EQ(q.op(id).parallelism, 1);
    }
  }
}

TEST(ParallelismGeneratorTest, FractionAssignsDegrees) {
  workload::GeneratorConfig config;
  config.parallelism_fraction = 1.0;
  config.parallelism_choices = {4};
  workload::QueryGenerator generator(config);
  nn::Rng rng(2);
  const QueryGraph q =
      generator.Generate(workload::QueryTemplate::kLinear, rng);
  for (int id = 0; id < q.num_operators(); ++id) {
    if (q.op(id).type == dsps::OperatorType::kWindow) {
      EXPECT_EQ(q.op(id).parallelism, 1);
    } else {
      EXPECT_EQ(q.op(id).parallelism, 4);
    }
  }
}

class ParallelismTunerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::CorpusConfig config;
    config.num_queries = 1200;
    config.seed = 777;
    config.generator.parallelism_fraction = 0.4;
    const auto records = workload::BuildCorpus(config);
    core::CostModelConfig mc;
    ensemble_ = new core::Ensemble(mc, 1);
    core::TrainConfig tc;
    tc.epochs = 12;
    ensemble_->Train(
        workload::ToTrainSamples(records, sim::Metric::kThroughput), {}, tc);
  }
  static void TearDownTestSuite() {
    delete ensemble_;
    ensemble_ = nullptr;
  }
  static core::Ensemble* ensemble_;
};

core::Ensemble* ParallelismTunerTest::ensemble_ = nullptr;

TEST_F(ParallelismTunerTest, HillClimbNeverAcceptsWorsePredictions) {
  QueryGraph q = CpuBoundQuery(1);
  sim::Placement placement(q.num_operators(), 0);
  ParallelismTunerConfig config;
  const ParallelismTunerResult result = TuneParallelism(
      q, EightCoreNode(), placement, *ensemble_, config);
  EXPECT_GE(result.predicted_tuned, result.predicted_initial);
  for (int p : result.parallelism) {
    EXPECT_GE(p, 1);
    EXPECT_LE(p, config.max_parallelism);
  }
}

TEST_F(ParallelismTunerTest, TunedDegreesHelpTheCpuBoundQuery) {
  QueryGraph q = CpuBoundQuery(1);
  sim::Placement placement(q.num_operators(), 0);
  ParallelismTunerConfig config;
  const ParallelismTunerResult result = TuneParallelism(
      q, EightCoreNode(), placement, *ensemble_, config);
  // Apply the tuned degrees and measure with the fluid oracle: the tuned
  // configuration must not be worse than the single-instance one.
  for (int id = 0; id < q.num_operators(); ++id) {
    q.mutable_op(id).parallelism = result.parallelism[id];
  }
  const double tuned =
      sim::EvaluateFluid(q, EightCoreNode(), placement, Noiseless())
          .metrics.throughput;
  const double initial =
      sim::EvaluateFluid(CpuBoundQuery(1), EightCoreNode(), placement,
                         Noiseless())
          .metrics.throughput;
  EXPECT_GE(tuned, initial * 0.9);
}

TEST(ParallelismTunerDeathTest, RejectsClassificationEnsemble) {
  core::CostModelConfig mc;
  mc.head = core::HeadKind::kClassification;
  core::Ensemble classifier(mc, 1);
  QueryGraph q = CpuBoundQuery(1);
  sim::Placement placement(q.num_operators(), 0);
  EXPECT_DEATH(TuneParallelism(q, EightCoreNode(), placement, classifier,
                               ParallelismTunerConfig{}),
               "COSTREAM_CHECK");
}

}  // namespace
}  // namespace costream::placement
