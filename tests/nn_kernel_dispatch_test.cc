// Cross-tier parity of the runtime kernel dispatch: the scalar, AVX2 and
// AVX-512 GEMM tables must produce BITWISE-identical fp32/fp64 results —
// forward values, gradients, and quantized ranking-tier outputs. The SIMD
// clones vectorize over independent column accumulators and both autograd.cc
// and quantized.cc build with -ffp-contract=off, so every per-element term
// order matches the scalar loop exactly. Tiers the CPU lacks self-skip with
// an explicit SKIPPED line.
//
// Note: the kernel dispatch refactor added no new tape op — the AVX tables
// are alternative bodies for the existing MatMul/Linear/Relu/AddRow kernels
// — so nn_gradcheck_test's finite-difference coverage carries over verbatim
// to whichever tier is active; this suite pins the tiers against each other.
#include "nn/kernel_dispatch.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "nn/autograd.h"
#include "nn/layers.h"
#include "nn/quantized.h"
#include "nn/random.h"

namespace costream::nn {
namespace {

// Restores the detected tier when a test ends, even on failure.
class ScopedTier {
 public:
  explicit ScopedTier(KernelTier tier) { ok_ = SetKernelTier(tier); }
  ~ScopedTier() { SetKernelTier(DetectedKernelTier()); }
  bool ok() const { return ok_; }

 private:
  bool ok_;
};

Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng.Uniform(-1.5, 1.5);
  }
  return m;
}

// One fixed forward + backward through an MLP (sizes chosen to exercise the
// 16-wide, 8-wide and scalar-tail column blocks); returns every output value
// and every parameter gradient.
std::vector<double> ForwardBackwardTrace() {
  Rng rng(99);
  Mlp mlp({19, 37, 21, 3}, rng);
  Tape tape;
  const Var y = mlp.Apply(tape, tape.Input(RandomMatrix(11, 19, 5)));
  const Var loss = tape.SumAll(y);
  std::vector<Parameter*> params;
  mlp.CollectParameters(params);
  for (Parameter* p : params) p->ZeroGrad();
  tape.Backward(loss);

  std::vector<double> trace;
  const Matrix& out = tape.value(y);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) trace.push_back(out(r, c));
  }
  for (Parameter* p : params) {
    for (int r = 0; r < p->grad.rows(); ++r) {
      for (int c = 0; c < p->grad.cols(); ++c) trace.push_back(p->grad(r, c));
    }
  }
  return trace;
}

// Quantized ranking-tier forward under the active tier.
std::vector<float> QuantizedTrace(QuantKind kind) {
  Rng rng(123);
  const Mlp mlp({17, 33, 9}, rng);
  const QuantizedMlp qmlp(mlp, kind);
  const Matrix x = RandomMatrix(13, 17, 8);
  FloatMatrix xf, y, scratch;
  xf.ResizeUninit(x.rows(), x.cols());
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) {
      xf.row(r)[c] = static_cast<float>(x(r, c));
    }
  }
  qmlp.Apply(xf, y, scratch);
  return std::vector<float>(y.data(), y.data() + y.size());
}

void ExpectBitwiseEqual(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t ba, bb;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    EXPECT_EQ(ba, bb) << "element " << i << ": " << a[i] << " vs " << b[i];
  }
}

void CheckTierAgainstScalar(KernelTier tier) {
  if (!KernelTierSupported(tier)) {
    GTEST_SKIP() << "SKIPPED: CPU lacks the " << KernelTierName(tier)
                 << " kernel tier";
  }
  std::vector<double> scalar_trace;
  {
    ScopedTier scoped(KernelTier::kScalar);
    ASSERT_TRUE(scoped.ok());
    scalar_trace = ForwardBackwardTrace();
  }
  std::vector<double> tier_trace;
  {
    ScopedTier scoped(tier);
    ASSERT_TRUE(scoped.ok());
    tier_trace = ForwardBackwardTrace();
  }
  ExpectBitwiseEqual(scalar_trace, tier_trace);
}

void CheckQuantizedTierAgainstScalar(KernelTier tier, QuantKind kind) {
  if (!KernelTierSupported(tier)) {
    GTEST_SKIP() << "SKIPPED: CPU lacks the " << KernelTierName(tier)
                 << " kernel tier";
  }
  std::vector<float> scalar_trace;
  {
    ScopedTier scoped(KernelTier::kScalar);
    ASSERT_TRUE(scoped.ok());
    scalar_trace = QuantizedTrace(kind);
  }
  std::vector<float> tier_trace;
  {
    ScopedTier scoped(tier);
    ASSERT_TRUE(scoped.ok());
    tier_trace = QuantizedTrace(kind);
  }
  ASSERT_EQ(scalar_trace.size(), tier_trace.size());
  for (size_t i = 0; i < scalar_trace.size(); ++i) {
    uint32_t ba, bb;
    std::memcpy(&ba, &scalar_trace[i], sizeof(ba));
    std::memcpy(&bb, &tier_trace[i], sizeof(bb));
    EXPECT_EQ(ba, bb) << "element " << i;
  }
}

TEST(KernelDispatchTest, ScalarTierAlwaysSupported) {
  EXPECT_TRUE(KernelTierSupported(KernelTier::kScalar));
  const KernelTier detected = DetectedKernelTier();
  EXPECT_GE(static_cast<int>(detected), 0);
  EXPECT_LT(static_cast<int>(detected), kNumKernelTiers);
  // The active tier never exceeds what the CPU supports.
  EXPECT_TRUE(KernelTierSupported(ActiveKernelTier()));
}

TEST(KernelDispatchTest, TierNamesRoundTrip) {
  EXPECT_STREQ(KernelTierName(KernelTier::kScalar), "scalar");
  EXPECT_STREQ(KernelTierName(KernelTier::kAvx2), "avx2");
  EXPECT_STREQ(KernelTierName(KernelTier::kAvx512), "avx512");
}

TEST(KernelDispatchTest, SetTierRejectsUnsupported) {
  for (int t = 0; t < kNumKernelTiers; ++t) {
    const KernelTier tier = static_cast<KernelTier>(t);
    if (KernelTierSupported(tier)) {
      EXPECT_TRUE(SetKernelTier(tier));
    } else {
      EXPECT_FALSE(SetKernelTier(tier));
    }
  }
  SetKernelTier(DetectedKernelTier());
}

TEST(KernelDispatchTest, Avx2MatchesScalarBitwise) {
  CheckTierAgainstScalar(KernelTier::kAvx2);
}

TEST(KernelDispatchTest, Avx512MatchesScalarBitwise) {
  CheckTierAgainstScalar(KernelTier::kAvx512);
}

TEST(KernelDispatchTest, QuantizedBf16Avx2MatchesScalarBitwise) {
  CheckQuantizedTierAgainstScalar(KernelTier::kAvx2, QuantKind::kBf16);
}

TEST(KernelDispatchTest, QuantizedInt8Avx2MatchesScalarBitwise) {
  CheckQuantizedTierAgainstScalar(KernelTier::kAvx2, QuantKind::kInt8);
}

TEST(KernelDispatchTest, QuantizedBf16Avx512MatchesScalarBitwise) {
  CheckQuantizedTierAgainstScalar(KernelTier::kAvx512, QuantKind::kBf16);
}

TEST(KernelDispatchTest, QuantizedInt8Avx512MatchesScalarBitwise) {
  CheckQuantizedTierAgainstScalar(KernelTier::kAvx512, QuantKind::kInt8);
}

}  // namespace
}  // namespace costream::nn
