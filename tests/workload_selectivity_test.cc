#include "workload/selectivity.h"

#include <cmath>

#include <gtest/gtest.h>

namespace costream::workload {
namespace {

using dsps::DataType;
using dsps::FilterFunction;

TEST(SampleGeneratorTest, UniformIntStaysInDomain) {
  nn::Rng rng(1);
  const ColumnSample column = UniformIntColumn(2000, 50, rng);
  EXPECT_EQ(column.type, DataType::kInt);
  for (const Value& v : column.values) {
    const int64_t x = std::get<int64_t>(v);
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 50);
  }
}

TEST(SampleGeneratorTest, NormalDoubleMomentsRoughlyCorrect) {
  nn::Rng rng(2);
  const ColumnSample column = NormalDoubleColumn(20000, 5.0, 2.0, rng);
  double sum = 0.0;
  for (const Value& v : column.values) sum += std::get<double>(v);
  EXPECT_NEAR(sum / column.size(), 5.0, 0.1);
}

TEST(SampleGeneratorTest, ZipfStringsAreSkewed) {
  nn::Rng rng(3);
  const ColumnSample column = ZipfStringColumn(10000, 100, rng);
  int head = 0;
  for (const Value& v : column.values) {
    if (std::get<std::string>(v) == "val_0") ++head;
  }
  // Under Zipf(1) over 100 values, the head takes ~1/H(100) ~ 19%.
  EXPECT_GT(head, 1000);
  EXPECT_LT(head, 3500);
}

TEST(FilterEstimatorTest, LessPredicateOnUniformInts) {
  nn::Rng rng(4);
  const ColumnSample column = UniformIntColumn(10000, 1000, rng);
  const double sel =
      EstimateFilterSelectivity(column, FilterFunction::kLess, Value{int64_t{250}});
  EXPECT_NEAR(sel, 0.25, 0.03);
}

TEST(FilterEstimatorTest, NotEqOnSkewedStrings) {
  nn::Rng rng(5);
  const ColumnSample column = ZipfStringColumn(10000, 100, rng);
  const double sel = EstimateFilterSelectivity(
      column, FilterFunction::kNotEq, Value{std::string("val_0")});
  EXPECT_GT(sel, 0.6);
  EXPECT_LT(sel, 0.95);
}

TEST(FilterEstimatorTest, StartsWithOnStrings) {
  ColumnSample column;
  column.type = DataType::kString;
  column.values = {Value{std::string("apple")}, Value{std::string("apricot")},
                   Value{std::string("banana")}, Value{std::string("avocado")}};
  const double sel = EstimateFilterSelectivity(
      column, FilterFunction::kStartsWith, Value{std::string("ap")});
  EXPECT_DOUBLE_EQ(sel, 0.5);
}

TEST(FilterEstimatorTest, EndsWithOnStrings) {
  ColumnSample column;
  column.type = DataType::kString;
  column.values = {Value{std::string("sensor_a")}, Value{std::string("hub_a")},
                   Value{std::string("cloud_b")}};
  const double sel = EstimateFilterSelectivity(
      column, FilterFunction::kEndsWith, Value{std::string("_a")});
  EXPECT_NEAR(sel, 2.0 / 3.0, 1e-9);
}

// Round trip: literal synthesized for a target selectivity reproduces that
// selectivity when estimated (property over targets and predicates).
class LiteralRoundTripTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(LiteralRoundTripTest, SynthesizedLiteralHitsTarget) {
  const auto [target, function_index] = GetParam();
  const FilterFunction function =
      function_index == 0 ? FilterFunction::kLess : FilterFunction::kGreater;
  nn::Rng rng(6);
  const ColumnSample column = NormalDoubleColumn(20000, 0.0, 1.0, rng);
  const Value literal = LiteralForSelectivity(column, function, target);
  const double estimated =
      EstimateFilterSelectivity(column, function, literal);
  EXPECT_NEAR(estimated, target, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    TargetsAndPredicates, LiteralRoundTripTest,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5, 0.8),
                       ::testing::Values(0, 1)));

TEST(JoinEstimatorTest, UniformDomainsMatchReciprocal) {
  nn::Rng rng(7);
  for (int64_t domain : {10, 100, 1000}) {
    const ColumnSample left = UniformIntColumn(20000, domain, rng);
    const ColumnSample right = UniformIntColumn(20000, domain, rng);
    const double sel = EstimateJoinSelectivity(left, right);
    EXPECT_NEAR(sel, 1.0 / domain, 0.3 / domain) << "domain " << domain;
  }
}

TEST(JoinEstimatorTest, DisjointDomainsNeverMatch) {
  ColumnSample left;
  left.type = DataType::kInt;
  left.values = {Value{int64_t{1}}, Value{int64_t{2}}};
  ColumnSample right;
  right.type = DataType::kInt;
  right.values = {Value{int64_t{3}}, Value{int64_t{4}}};
  EXPECT_DOUBLE_EQ(EstimateJoinSelectivity(left, right), 0.0);
}

TEST(JoinEstimatorTest, SkewIncreasesSelectivity) {
  nn::Rng rng(8);
  const ColumnSample uniform_l = UniformIntColumn(10000, 100, rng);
  const ColumnSample uniform_r = UniformIntColumn(10000, 100, rng);
  const ColumnSample zipf_l = ZipfStringColumn(10000, 100, rng);
  const ColumnSample zipf_r = ZipfStringColumn(10000, 100, rng);
  EXPECT_GT(EstimateJoinSelectivity(zipf_l, zipf_r),
            EstimateJoinSelectivity(uniform_l, uniform_r));
}

TEST(AggregateEstimatorTest, SmallDomainSaturatesWindow) {
  nn::Rng rng(9);
  const ColumnSample column = UniformIntColumn(10000, 10, rng);
  // Window of 1000 tuples over 10 distinct values: selectivity ~ 10/1000.
  EXPECT_NEAR(EstimateAggregateSelectivity(column, 1000.0), 0.01, 0.002);
}

TEST(AggregateEstimatorTest, LargeDomainKeepsSelectivityNearOne) {
  nn::Rng rng(10);
  const ColumnSample column = UniformIntColumn(20000, 1'000'000, rng);
  // Window of 50 over a million distinct values: almost every tuple is a
  // new group.
  EXPECT_GT(EstimateAggregateSelectivity(column, 50.0), 0.95);
}

TEST(AggregateEstimatorTest, MonotoneDecreasingInWindowSize) {
  nn::Rng rng(11);
  const ColumnSample column = UniformIntColumn(20000, 200, rng);
  double prev = 1.1;
  for (double window : {10.0, 50.0, 200.0, 1000.0}) {
    const double sel = EstimateAggregateSelectivity(column, window);
    EXPECT_LE(sel, prev);
    prev = sel;
  }
}

TEST(SelectivityDeathTest, AffixPredicateRequiresStrings) {
  nn::Rng rng(12);
  const ColumnSample column = UniformIntColumn(10, 10, rng);
  EXPECT_DEATH(EstimateFilterSelectivity(column, FilterFunction::kStartsWith,
                                         Value{std::string("a")}),
               "strings");
}

}  // namespace
}  // namespace costream::workload
