// Randomized robustness sweep for the trace loaders: byte flips, truncations
// and splices over valid v1/v2 images must never crash, read out of bounds
// (CI runs this under AddressSanitizer) or allocate absurdly — every outcome
// is either a clean `false` or a successfully validated corpus.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nn/random.h"
#include "sim/hardware.h"
#include "workload/trace_io.h"

namespace costream::workload {
namespace {

std::vector<TraceRecord> FuzzCorpus() {
  CorpusConfig config;
  config.num_queries = 6;
  config.seed = 31337;
  config.duration_s = 20.0;
  return BuildCorpus(config);
}

std::string V2Image(const std::vector<TraceRecord>& records) {
  std::ostringstream os;
  SaveTracesV2(os, records);
  return std::move(os).str();
}

std::string V1Image(const std::vector<TraceRecord>& records) {
  std::ostringstream os;
  SaveTraces(os, records);
  return std::move(os).str();
}

// Every record a loader hands back must be structurally sound — the parsers
// promise validated queries and placements even for records recovered from
// a corrupt file.
void ExpectLoadedRecordsValid(const std::vector<TraceRecord>& records) {
  for (const TraceRecord& r : records) {
    EXPECT_EQ(r.query.Validate(), "");
    EXPECT_EQ(sim::ValidatePlacement(r.query, r.cluster, r.placement), "");
  }
}

void RunV2(const std::string& image) {
  std::vector<TraceRecord> loaded;
  if (LoadTracesV2(image.data(), image.size(), &loaded)) {
    ExpectLoadedRecordsValid(loaded);
  }
  // The auto-detecting stream path must agree on whether the image is sane.
  std::istringstream is(image);
  std::vector<TraceRecord> stream_loaded;
  if (LoadTraces(is, &stream_loaded)) {
    ExpectLoadedRecordsValid(stream_loaded);
  }
}

TEST(TraceFuzzTest, TruncatedV2ImagesNeverCrash) {
  const std::string image = V2Image(FuzzCorpus());
  nn::Rng rng(1);
  // Every header boundary plus a random sample of interior cuts.
  for (size_t cut = 0; cut <= 64 && cut < image.size(); ++cut) {
    RunV2(image.substr(0, cut));
  }
  for (int trial = 0; trial < 200; ++trial) {
    RunV2(image.substr(
        0, static_cast<size_t>(
               rng.Int(0, static_cast<int>(image.size()) - 1))));
  }
}

TEST(TraceFuzzTest, ByteFlippedV2ImagesNeverCrash) {
  const std::string image = V2Image(FuzzCorpus());
  nn::Rng rng(2);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = image;
    const int flips = rng.Int(1, 4);
    for (int f = 0; f < flips; ++f) {
      const int pos = rng.Int(0, static_cast<int>(mutated.size()) - 1);
      mutated[pos] = static_cast<char>(rng.Int(0, 255));
    }
    RunV2(mutated);
  }
}

TEST(TraceFuzzTest, SplicedV2ImagesNeverCrash) {
  const std::string image = V2Image(FuzzCorpus());
  nn::Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = image;
    const int pos = rng.Int(0, static_cast<int>(mutated.size()));
    std::string garbage(static_cast<size_t>(rng.Int(1, 32)), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Int(0, 255));
    mutated.insert(static_cast<size_t>(pos), garbage);
    RunV2(mutated);
  }
}

TEST(TraceFuzzTest, MutatedV1TextNeverCrashes) {
  const std::string image = V1Image(FuzzCorpus());
  nn::Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = image;
    switch (rng.Int(0, 2)) {
      case 0:
        mutated = mutated.substr(
            0, static_cast<size_t>(
                   rng.Int(0, static_cast<int>(mutated.size()) - 1)));
        break;
      case 1: {
        const int pos = rng.Int(0, static_cast<int>(mutated.size()) - 1);
        mutated[pos] = static_cast<char>(rng.Int(32, 126));
        break;
      }
      default: {
        const int pos = rng.Int(0, static_cast<int>(mutated.size()));
        mutated.insert(static_cast<size_t>(pos), "garbage\n");
        break;
      }
    }
    std::istringstream is(mutated);
    std::vector<TraceRecord> loaded;
    if (LoadTraces(is, &loaded)) {
      ExpectLoadedRecordsValid(loaded);
    }
  }
}

// A v1 file whose first bytes happen to be shorter than the v2 magic still
// takes the text path cleanly.
TEST(TraceFuzzTest, TinyInputsNeverCrash) {
  for (const std::string& input :
       {std::string(""), std::string("C"), std::string("CSTRACE"),
        std::string("CSTRACE2"), std::string("CSTRACE2\x02"),
        std::string("#costream"), std::string("\n\n\n")}) {
    std::istringstream is(input);
    std::vector<TraceRecord> loaded;
    EXPECT_FALSE(LoadTraces(is, &loaded));
  }
}

}  // namespace
}  // namespace costream::workload
