// Randomized robustness sweep for the trace loaders: byte flips, truncations
// and splices over valid v1/v2 images must never crash, read out of bounds
// (CI runs this under AddressSanitizer) or allocate absurdly — every outcome
// is either a clean `false` or a successfully validated corpus.
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nn/random.h"
#include "sim/geo.h"
#include "sim/hardware.h"
#include "workload/trace_io.h"

namespace costream::workload {
namespace {

std::vector<TraceRecord> FuzzCorpus() {
  CorpusConfig config;
  config.num_queries = 6;
  config.seed = 31337;
  config.duration_s = 20.0;
  return BuildCorpus(config);
}

// Same corpus with a two-region WAN link matrix stamped onto every cluster,
// exercising the flagged v2 extended header and the per-record link section.
std::vector<TraceRecord> GeoCorpus() {
  std::vector<TraceRecord> records = FuzzCorpus();
  const sim::GeoWanProfile wan;
  for (TraceRecord& record : records) {
    std::vector<int> region(record.cluster.nodes.size());
    for (size_t n = 0; n < region.size(); ++n) {
      region[n] = static_cast<int>(n % 2);
    }
    sim::ApplyGeoRegions(region, wan, &record.cluster);
  }
  return records;
}

std::string V2Image(const std::vector<TraceRecord>& records) {
  std::ostringstream os;
  SaveTracesV2(os, records);
  return std::move(os).str();
}

std::string V1Image(const std::vector<TraceRecord>& records) {
  std::ostringstream os;
  SaveTraces(os, records);
  return std::move(os).str();
}

// Every record a loader hands back must be structurally sound — the parsers
// promise validated queries and placements even for records recovered from
// a corrupt file.
void ExpectLoadedRecordsValid(const std::vector<TraceRecord>& records) {
  for (const TraceRecord& r : records) {
    EXPECT_EQ(r.query.Validate(), "");
    EXPECT_EQ(sim::ValidatePlacement(r.query, r.cluster, r.placement), "");
  }
}

void RunV2(const std::string& image) {
  std::vector<TraceRecord> loaded;
  if (LoadTracesV2(image.data(), image.size(), &loaded)) {
    ExpectLoadedRecordsValid(loaded);
  }
  // The auto-detecting stream path must agree on whether the image is sane.
  std::istringstream is(image);
  std::vector<TraceRecord> stream_loaded;
  if (LoadTraces(is, &stream_loaded)) {
    ExpectLoadedRecordsValid(stream_loaded);
  }
}

TEST(TraceFuzzTest, TruncatedV2ImagesNeverCrash) {
  const std::string image = V2Image(FuzzCorpus());
  nn::Rng rng(1);
  // Every header boundary plus a random sample of interior cuts.
  for (size_t cut = 0; cut <= 64 && cut < image.size(); ++cut) {
    RunV2(image.substr(0, cut));
  }
  for (int trial = 0; trial < 200; ++trial) {
    RunV2(image.substr(
        0, static_cast<size_t>(
               rng.Int(0, static_cast<int>(image.size()) - 1))));
  }
}

TEST(TraceFuzzTest, ByteFlippedV2ImagesNeverCrash) {
  const std::string image = V2Image(FuzzCorpus());
  nn::Rng rng(2);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = image;
    const int flips = rng.Int(1, 4);
    for (int f = 0; f < flips; ++f) {
      const int pos = rng.Int(0, static_cast<int>(mutated.size()) - 1);
      mutated[pos] = static_cast<char>(rng.Int(0, 255));
    }
    RunV2(mutated);
  }
}

TEST(TraceFuzzTest, SplicedV2ImagesNeverCrash) {
  const std::string image = V2Image(FuzzCorpus());
  nn::Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = image;
    const int pos = rng.Int(0, static_cast<int>(mutated.size()));
    std::string garbage(static_cast<size_t>(rng.Int(1, 32)), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Int(0, 255));
    mutated.insert(static_cast<size_t>(pos), garbage);
    RunV2(mutated);
  }
}

TEST(TraceFuzzTest, MutatedV1TextNeverCrashes) {
  const std::string image = V1Image(FuzzCorpus());
  nn::Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = image;
    switch (rng.Int(0, 2)) {
      case 0:
        mutated = mutated.substr(
            0, static_cast<size_t>(
                   rng.Int(0, static_cast<int>(mutated.size()) - 1)));
        break;
      case 1: {
        const int pos = rng.Int(0, static_cast<int>(mutated.size()) - 1);
        mutated[pos] = static_cast<char>(rng.Int(32, 126));
        break;
      }
      default: {
        const int pos = rng.Int(0, static_cast<int>(mutated.size()));
        mutated.insert(static_cast<size_t>(pos), "garbage\n");
        break;
      }
    }
    std::istringstream is(mutated);
    std::vector<TraceRecord> loaded;
    if (LoadTraces(is, &loaded)) {
      ExpectLoadedRecordsValid(loaded);
    }
  }
}

// Link matrices survive both serialization formats bitwise (v1 prints with
// precision 17, which is lossless for IEEE doubles).
TEST(TraceFuzzTest, LinkMatricesRoundTripBitwise) {
  const std::vector<TraceRecord> records = GeoCorpus();
  const std::string v2 = V2Image(records);
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(LoadTracesV2(v2.data(), v2.size(), &loaded));
  ASSERT_EQ(loaded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(loaded[i].cluster.has_link_matrix());
    EXPECT_EQ(loaded[i].cluster.link_bandwidth_mbits,
              records[i].cluster.link_bandwidth_mbits);
    EXPECT_EQ(loaded[i].cluster.link_latency_ms,
              records[i].cluster.link_latency_ms);
  }
  std::istringstream v1(V1Image(records));
  std::vector<TraceRecord> v1_loaded;
  ASSERT_TRUE(LoadTraces(v1, &v1_loaded));
  ASSERT_EQ(v1_loaded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(v1_loaded[i].cluster.link_bandwidth_mbits,
              records[i].cluster.link_bandwidth_mbits);
    EXPECT_EQ(v1_loaded[i].cluster.link_latency_ms,
              records[i].cluster.link_latency_ms);
  }
}

// Corpora without link matrices must keep emitting the pre-extension 24-byte
// header so older readers load them unchanged; geo corpora advertise the
// link section via the flags word of the 32-byte extended header.
TEST(TraceFuzzTest, LinkFreeImagesKeepLegacyHeader) {
  const std::string plain = V2Image(FuzzCorpus());
  const std::string geo = V2Image(GeoCorpus());
  const auto header_bytes = [](const std::string& image) {
    uint32_t v = 0;
    std::memcpy(&v, image.data() + 12, sizeof(v));
    return v;
  };
  EXPECT_EQ(header_bytes(plain), 24u);
  EXPECT_EQ(header_bytes(geo), 32u);
  uint32_t flags = 0;
  std::memcpy(&flags, geo.data() + 24, sizeof(flags));
  EXPECT_EQ(flags, 1u);
}

// The flags word is load-bearing: clearing it leaves unparsed link bytes in
// every record body, and any unknown bit must fail closed — both reject.
TEST(TraceFuzzTest, TamperedHeaderFlagsFailClosed) {
  const std::string geo = V2Image(GeoCorpus());
  std::string cleared = geo;
  cleared[24] = '\0';
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(LoadTracesV2(cleared.data(), cleared.size(), &loaded));
  std::string unknown_bit = geo;
  unknown_bit[24] = static_cast<char>(unknown_bit[24] | 0x02);
  loaded.clear();
  EXPECT_FALSE(LoadTracesV2(unknown_bit.data(), unknown_bit.size(), &loaded));
}

// Truncating inside a later record's body (which ends with the link matrix)
// fails the load but keeps every record parsed before the damage.
TEST(TraceFuzzTest, TruncatedLinkMatrixKeepsEarlierRecords) {
  const std::string geo = V2Image(GeoCorpus());
  // Walk the record framing: [u32 body_size][body] repeated after the header.
  uint32_t header_bytes = 0;
  std::memcpy(&header_bytes, geo.data() + 12, sizeof(header_bytes));
  size_t offset = header_bytes;
  uint32_t first_body = 0;
  std::memcpy(&first_body, geo.data() + offset, sizeof(first_body));
  const size_t record2 = offset + sizeof(uint32_t) + first_body;
  uint32_t second_body = 0;
  std::memcpy(&second_body, geo.data() + record2, sizeof(second_body));
  // Cut a handful of points across record 2's body, including its final
  // bytes (the link latency matrix).
  for (uint32_t keep :
       {second_body / 4, second_body / 2, second_body - 9, second_body - 1}) {
    // Plain truncation: the frame check sees fewer bytes than advertised.
    const std::string cut = geo.substr(0, record2 + sizeof(uint32_t) + keep);
    std::vector<TraceRecord> loaded;
    EXPECT_FALSE(LoadTracesV2(cut.data(), cut.size(), &loaded));
    ASSERT_EQ(loaded.size(), 1u) << "keep " << keep;
    EXPECT_TRUE(loaded[0].cluster.has_link_matrix());
    ExpectLoadedRecordsValid(loaded);
    // Shrink the declared body size to match the cut so the body parser
    // itself runs and hits a bounds check mid-record (for the larger keeps,
    // inside the link matrix at the body's tail).
    std::string shrunk = cut;
    std::memcpy(shrunk.data() + record2, &keep, sizeof(keep));
    loaded.clear();
    EXPECT_FALSE(LoadTracesV2(shrunk.data(), shrunk.size(), &loaded));
    ASSERT_EQ(loaded.size(), 1u) << "shrunk keep " << keep;
    ExpectLoadedRecordsValid(loaded);
  }
}

// The generic mutation sweeps must hold over flagged geo images too.
TEST(TraceFuzzTest, MutatedGeoImagesNeverCrash) {
  const std::string image = V2Image(GeoCorpus());
  nn::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = image;
    switch (rng.Int(0, 2)) {
      case 0:
        mutated = mutated.substr(
            0, static_cast<size_t>(
                   rng.Int(0, static_cast<int>(mutated.size()) - 1)));
        break;
      case 1: {
        const int flips = rng.Int(1, 4);
        for (int f = 0; f < flips; ++f) {
          const int pos = rng.Int(0, static_cast<int>(mutated.size()) - 1);
          mutated[pos] = static_cast<char>(rng.Int(0, 255));
        }
        break;
      }
      default: {
        const int pos = rng.Int(0, static_cast<int>(mutated.size()));
        std::string garbage(static_cast<size_t>(rng.Int(1, 32)), '\0');
        for (char& c : garbage) c = static_cast<char>(rng.Int(0, 255));
        mutated.insert(static_cast<size_t>(pos), garbage);
        break;
      }
    }
    RunV2(mutated);
  }
  const std::string text = V1Image(GeoCorpus());
  nn::Rng text_rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = text;
    const int pos = rng.Int(0, static_cast<int>(mutated.size()) - 1);
    mutated[pos] = static_cast<char>(text_rng.Int(32, 126));
    std::istringstream is(mutated);
    std::vector<TraceRecord> loaded;
    if (LoadTraces(is, &loaded)) {
      ExpectLoadedRecordsValid(loaded);
    }
  }
}

// ---- Block-compressed v2 images ----

std::string V2CImage(const std::vector<TraceRecord>& records,
                     size_t block_bytes = 2048) {
  std::ostringstream os;
  SaveTracesV2Compressed(os, records, block_bytes);
  return std::move(os).str();
}

uint32_t ReadU32At(const std::string& image, size_t offset) {
  uint32_t v = 0;
  std::memcpy(&v, image.data() + offset, sizeof(v));
  return v;
}

uint64_t ReadU64At(const std::string& image, size_t offset) {
  uint64_t v = 0;
  std::memcpy(&v, image.data() + offset, sizeof(v));
  return v;
}

// Walks the block frames ([u32 csize][u32 usize][u32 count][u32 flags]
// [u64 checksum][payload]) and returns each frame's start offset.
std::vector<size_t> BlockOffsets(const std::string& image) {
  const uint32_t header_bytes = ReadU32At(image, 12);
  const uint64_t index_offset = ReadU64At(image, image.size() - 32);
  std::vector<size_t> offsets;
  size_t at = header_bytes;
  while (at < index_offset) {
    offsets.push_back(at);
    at += 24 + ReadU32At(image, at);
  }
  return offsets;
}

TEST(TraceFuzzTest, CompressedImagesSurviveGenericMutations) {
  const std::string image = V2CImage(FuzzCorpus());
  nn::Rng rng(7);
  for (size_t cut = 0; cut <= 64 && cut < image.size(); ++cut) {
    RunV2(image.substr(0, cut));
  }
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = image;
    switch (rng.Int(0, 2)) {
      case 0:
        mutated = mutated.substr(
            0, static_cast<size_t>(
                   rng.Int(0, static_cast<int>(mutated.size()) - 1)));
        break;
      case 1: {
        const int flips = rng.Int(1, 4);
        for (int f = 0; f < flips; ++f) {
          const int pos = rng.Int(0, static_cast<int>(mutated.size()) - 1);
          mutated[pos] = static_cast<char>(rng.Int(0, 255));
        }
        break;
      }
      default: {
        const int pos = rng.Int(0, static_cast<int>(mutated.size()));
        std::string garbage(static_cast<size_t>(rng.Int(1, 32)), '\0');
        for (char& c : garbage) c = static_cast<char>(rng.Int(0, 255));
        mutated.insert(static_cast<size_t>(pos), garbage);
        break;
      }
    }
    RunV2(mutated);
  }
}

// Cutting the file inside the trailing block index leaves every block frame
// intact: the loader decodes all records, then fails the load because the
// index cannot be validated — fail closed, nothing lost.
TEST(TraceFuzzTest, TruncatedBlockIndexFailsClosedKeepingAllRecords) {
  const std::vector<TraceRecord> records = FuzzCorpus();
  const std::string image = V2CImage(records);
  const uint64_t index_offset = ReadU64At(image, image.size() - 32);
  ASSERT_GT(image.size(), index_offset);
  for (const size_t keep : {size_t{0}, size_t{8}, size_t{47}}) {
    const std::string cut = image.substr(0, index_offset + keep);
    std::vector<TraceRecord> loaded;
    EXPECT_FALSE(LoadTracesV2(cut.data(), cut.size(), &loaded));
    ASSERT_EQ(loaded.size(), records.size()) << "keep " << keep;
    ExpectLoadedRecordsValid(loaded);
  }
}

// A tampered per-block checksum kills that block and everything after it,
// but the blocks decoded before the damage survive.
TEST(TraceFuzzTest, TamperedBlockChecksumFailsClosedKeepingEarlierRecords) {
  const std::vector<TraceRecord> records = FuzzCorpus();
  const std::string image = V2CImage(records);
  const std::vector<size_t> blocks = BlockOffsets(image);
  ASSERT_GE(blocks.size(), 2u) << "corpus too small for a multi-block image";
  // Flip one checksum byte of the second block (checksum lives at frame+16).
  std::string mutated = image;
  mutated[blocks[1] + 16] = static_cast<char>(mutated[blocks[1] + 16] ^ 0xff);
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(LoadTracesV2(mutated.data(), mutated.size(), &loaded));
  const uint32_t first_block_records = ReadU32At(image, blocks[0] + 8);
  ASSERT_EQ(loaded.size(), first_block_records);
  ExpectLoadedRecordsValid(loaded);
}

// The frame's sizes and count are hashed into the checksum seed, so lying
// about them is caught before any decode buffer is sized from them.
TEST(TraceFuzzTest, LyingBlockSizesFailClosed) {
  const std::vector<TraceRecord> records = FuzzCorpus();
  const std::string image = V2CImage(records);
  const std::vector<size_t> blocks = BlockOffsets(image);
  ASSERT_GE(blocks.size(), 2u);
  const struct {
    size_t field_offset;  // within the frame
    uint32_t value;
  } lies[] = {
      {0, ReadU32At(image, blocks[0]) - 1},     // compressed_bytes shrunk
      {4, 1u << 29},                            // uncompressed_bytes inflated
      {4, ReadU32At(image, blocks[0] + 4) / 2}, // uncompressed_bytes shrunk
      {8, ReadU32At(image, blocks[0] + 8) + 7}, // record_count inflated
  };
  for (const auto& lie : lies) {
    std::string mutated = image;
    std::memcpy(mutated.data() + blocks[0] + lie.field_offset, &lie.value,
                sizeof(lie.value));
    std::vector<TraceRecord> loaded;
    EXPECT_FALSE(LoadTracesV2(mutated.data(), mutated.size(), &loaded));
    EXPECT_TRUE(loaded.empty()) << "field +" << lie.field_offset;
  }
}

// Unknown flag bits — a per-block codec bit or a header compression bit from
// some future writer — must fail closed rather than misparse.
TEST(TraceFuzzTest, UnknownCompressionFlagBitsFailClosed) {
  const std::vector<TraceRecord> records = FuzzCorpus();
  const std::string image = V2CImage(records);
  const std::vector<size_t> blocks = BlockOffsets(image);
  ASSERT_FALSE(blocks.empty());
  // Block flags word is at frame+12; set an undefined bit.
  std::string bad_block = image;
  bad_block[blocks[0] + 12] =
      static_cast<char>(bad_block[blocks[0] + 12] | 0x04);
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(LoadTracesV2(bad_block.data(), bad_block.size(), &loaded));
  EXPECT_TRUE(loaded.empty());
  // Header flags word is at offset 24 of the extended header.
  std::string bad_header = image;
  bad_header[24] = static_cast<char>(bad_header[24] | 0x04);
  loaded.clear();
  EXPECT_FALSE(LoadTracesV2(bad_header.data(), bad_header.size(), &loaded));
  EXPECT_TRUE(loaded.empty());
}

// A v1 file whose first bytes happen to be shorter than the v2 magic still
// takes the text path cleanly.
TEST(TraceFuzzTest, TinyInputsNeverCrash) {
  for (const std::string& input :
       {std::string(""), std::string("C"), std::string("CSTRACE"),
        std::string("CSTRACE2"), std::string("CSTRACE2\x02"),
        std::string("#costream"), std::string("\n\n\n")}) {
    std::istringstream is(input);
    std::vector<TraceRecord> loaded;
    EXPECT_FALSE(LoadTraces(is, &loaded));
  }
}

}  // namespace
}  // namespace costream::workload
