// The placement service must make bitwise-identical decisions regardless of
// how many scorer threads it uses: per-candidate scoring writes into
// per-index slots and selection walks candidates in enumeration order, so a
// seeded churn script replays to the same admissions, the same final
// placements, and the same ledger totals at 1 and 4 threads.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "service/placement_service.h"
#include "sim/fluid_engine.h"
#include "workload/corpus.h"

namespace costream::service {
namespace {

sim::Cluster FixtureCluster() {
  sim::Cluster cluster;
  cluster.nodes.push_back({200.0, 16000.0, 400.0, 20.0});
  cluster.nodes.push_back({400.0, 32000.0, 1000.0, 5.0});
  cluster.nodes.push_back({300.0, 24000.0, 800.0, 10.0});
  cluster.nodes.push_back({600.0, 48000.0, 2000.0, 2.0});
  return cluster;
}

core::Ensemble TinyThroughputEnsemble() {
  workload::CorpusConfig cc;
  cc.num_queries = 50;
  cc.seed = 31;
  cc.duration_s = 30.0;
  const auto records = workload::BuildCorpus(cc);
  core::CostModelConfig config;
  config.hidden_dim = 8;
  core::Ensemble ensemble(config, 1);
  auto samples = workload::ToTrainSamples(records, sim::Metric::kThroughput);
  core::TrainConfig tc;
  tc.epochs = 3;
  ensemble.Train(samples, {}, tc);
  return ensemble;
}

struct ScriptRun {
  std::vector<AdmitResult> admissions;
  std::vector<std::vector<int>> final_placements;  // ascending id order
  ConvergeResult converge;
  sim::BackgroundLoad total;
};

// Replays the same seeded arrive/depart script (the script's randomness is
// independent of the service under test).
ScriptRun RunScript(const core::Ensemble& target, int num_threads) {
  ServiceConfig config;
  config.target = sim::Metric::kThroughput;
  config.num_candidates = 12;
  config.seed = 77;
  config.num_threads = num_threads;

  PlacementService service(FixtureCluster(), &target, nullptr, nullptr,
                           config);
  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(909);

  ScriptRun run;
  std::vector<int64_t> live;
  constexpr int kEvents = 60;
  for (int e = 0; e < kEvents; ++e) {
    if (live.empty() || rng.Uniform(0.0, 1.0) < 0.6) {
      const auto t = static_cast<workload::QueryTemplate>(rng.Int(0, 2));
      const dsps::QueryGraph query = generator.Generate(t, rng);
      const AdmitResult result = service.Admit(query);
      run.admissions.push_back(result);
      live.push_back(result.id);
    } else {
      const size_t pick = static_cast<size_t>(
          rng.Int(0, static_cast<int>(live.size()) - 1));
      service.Retire(live[pick]);
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    }
  }
  run.converge = service.Converge();
  for (const int64_t id : service.QueryIds()) {
    run.final_placements.push_back(service.PlacementOf(id));
  }
  run.total = service.ledger().TotalLoad();
  return run;
}

TEST(ServiceDeterminismTest, OneAndFourThreadsAgreeBitwise) {
  const core::Ensemble target = TinyThroughputEnsemble();
  const ScriptRun serial = RunScript(target, 1);
  const ScriptRun parallel = RunScript(target, 4);

  // Every admission decision matches: placement, prediction (bitwise) and
  // feasibility.
  ASSERT_EQ(serial.admissions.size(), parallel.admissions.size());
  for (size_t i = 0; i < serial.admissions.size(); ++i) {
    EXPECT_EQ(serial.admissions[i].id, parallel.admissions[i].id);
    EXPECT_EQ(serial.admissions[i].placement, parallel.admissions[i].placement)
        << "admission " << i;
    EXPECT_EQ(serial.admissions[i].predicted, parallel.admissions[i].predicted);
    EXPECT_EQ(serial.admissions[i].penalized, parallel.admissions[i].penalized);
    EXPECT_EQ(serial.admissions[i].feasible, parallel.admissions[i].feasible);
  }

  // Convergence took the identical trajectory.
  EXPECT_EQ(serial.converge.iterations, parallel.converge.iterations);
  EXPECT_EQ(serial.converge.ripups, parallel.converge.ripups);
  EXPECT_EQ(serial.converge.converged, parallel.converge.converged);

  // Final state matches bitwise.
  ASSERT_EQ(serial.final_placements.size(), parallel.final_placements.size());
  for (size_t i = 0; i < serial.final_placements.size(); ++i) {
    EXPECT_EQ(serial.final_placements[i], parallel.final_placements[i]);
  }
  ASSERT_EQ(serial.total.empty(), parallel.total.empty());
  if (!serial.total.empty()) {
    for (size_t n = 0; n < serial.total.cpu_load_us.size(); ++n) {
      EXPECT_EQ(serial.total.cpu_load_us[n], parallel.total.cpu_load_us[n]);
      EXPECT_EQ(serial.total.out_bytes_per_s[n],
                parallel.total.out_bytes_per_s[n]);
      EXPECT_EQ(serial.total.memory_mb[n], parallel.total.memory_mb[n]);
    }
  }
}

TEST(ServiceDeterminismTest, RerunWithSameThreadsIsIdentical) {
  // Sanity anchor for the cross-thread check: the script itself replays
  // identically when nothing varies.
  const core::Ensemble target = TinyThroughputEnsemble();
  const ScriptRun a = RunScript(target, 1);
  const ScriptRun b = RunScript(target, 1);
  ASSERT_EQ(a.admissions.size(), b.admissions.size());
  for (size_t i = 0; i < a.admissions.size(); ++i) {
    EXPECT_EQ(a.admissions[i].placement, b.admissions[i].placement);
    EXPECT_EQ(a.admissions[i].predicted, b.admissions[i].predicted);
  }
  EXPECT_EQ(a.final_placements, b.final_placements);
}

}  // namespace
}  // namespace costream::service
