// Randomized arrive/depart churn sweep over the multi-tenant placement
// service: the ClusterLoadLedger's invariants must hold after every event —
// the aggregated demand equals the sum of the live placements' loads, a
// retired query exactly restores the pre-admission ledger state, and no node
// is left overflowed at convergence.
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "service/placement_service.h"
#include "sim/fluid_engine.h"
#include "workload/corpus.h"

namespace costream::service {
namespace {

sim::Cluster RoomyCluster() {
  sim::Cluster cluster;
  cluster.nodes.push_back({400.0, 64000.0, 1000.0, 5.0});
  cluster.nodes.push_back({300.0, 64000.0, 800.0, 10.0});
  cluster.nodes.push_back({200.0, 64000.0, 400.0, 20.0});
  cluster.nodes.push_back({600.0, 64000.0, 2000.0, 2.0});
  return cluster;
}

// Light event rates keep a few dozen concurrent queries well inside the
// cluster's capacity, so the post-churn convergence check is meaningful.
workload::GeneratorConfig LightWorkload() {
  workload::GeneratorConfig config;
  config.workload.event_rate_linear = {100, 200, 400};
  config.workload.event_rate_two_way = {50, 100};
  config.workload.event_rate_three_way = {20, 50};
  config.workload.window_count_sizes = {5, 10, 20};
  config.workload.window_time_sizes = {0.25, 0.5, 1};
  return config;
}

core::Ensemble TinyThroughputEnsemble(uint64_t seed) {
  workload::CorpusConfig cc;
  cc.num_queries = 50;
  cc.seed = seed;
  cc.duration_s = 30.0;
  const auto records = workload::BuildCorpus(cc);
  core::CostModelConfig config;
  config.hidden_dim = 8;
  core::Ensemble ensemble(config, 1);
  auto samples = workload::ToTrainSamples(records, sim::Metric::kThroughput);
  core::TrainConfig tc;
  tc.epochs = 3;
  ensemble.Train(samples, {}, tc);
  return ensemble;
}

ServiceConfig FastConfig() {
  ServiceConfig config;
  config.target = sim::Metric::kThroughput;
  config.num_candidates = 8;
  config.seed = 11;
  config.num_threads = 1;
  return config;
}

TEST(ServiceChurnTest, LedgerInvariantsHoldAfterEveryEvent) {
  const core::Ensemble target = TinyThroughputEnsemble(21);
  PlacementService service(RoomyCluster(), &target, nullptr, nullptr,
                           FastConfig());
  workload::QueryGenerator generator(LightWorkload());
  nn::Rng rng(77);

  std::vector<int64_t> live;
  int admissions = 0;
  int retirements = 0;
  constexpr int kEvents = 220;
  for (int e = 0; e < kEvents; ++e) {
    const bool admit = live.empty() || rng.Uniform(0.0, 1.0) < 0.55;
    if (admit) {
      const auto t = static_cast<workload::QueryTemplate>(rng.Int(0, 2));
      const dsps::QueryGraph query = generator.Generate(t, rng);
      const AdmitResult result = service.Admit(query);
      ASSERT_GE(result.id, 0);
      ASSERT_EQ(sim::ValidatePlacement(query, service.ledger().cluster(),
                                       result.placement),
                "");
      ASSERT_GT(result.candidates_evaluated, 0);
      live.push_back(result.id);
      ++admissions;
    } else {
      const size_t pick = static_cast<size_t>(
          rng.Int(0, static_cast<int>(live.size()) - 1));
      ASSERT_TRUE(service.Retire(live[pick]));
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      ++retirements;
    }
    ASSERT_EQ(service.ledger().CheckInvariants(), "") << "event " << e;
    ASSERT_EQ(service.live_queries(), static_cast<int>(live.size()));

    // Every stored per-query load must equal the placement's freshly
    // recomputed steady-state demand (bitwise: ComputeBackgroundLoad is
    // noiseless and deterministic).
    if (e % 20 == 19) {
      for (const int64_t id : live) {
        const sim::BackgroundLoad expected = sim::ComputeBackgroundLoad(
            service.QueryOf(id), service.ledger().cluster(),
            service.PlacementOf(id));
        const sim::BackgroundLoad& stored = service.ledger().LoadOf(id);
        for (int n = 0; n < service.ledger().num_nodes(); ++n) {
          ASSERT_EQ(stored.cpu_load_us[n], expected.cpu_load_us[n]);
          ASSERT_EQ(stored.out_bytes_per_s[n], expected.out_bytes_per_s[n]);
          ASSERT_EQ(stored.memory_mb[n], expected.memory_mb[n]);
        }
      }
    }
  }
  EXPECT_EQ(admissions + retirements, kEvents);
  EXPECT_GT(admissions, 100);
  EXPECT_GT(retirements, 50);

  // Post-churn convergence: this fixture is well inside capacity, so the
  // rip-up loop must end with no overflowed node.
  const ConvergeResult converge = service.Converge();
  EXPECT_TRUE(converge.converged);
  EXPECT_TRUE(service.ledger().OverflowedNodes().empty());
  EXPECT_EQ(service.ledger().CheckInvariants(), "");
}

TEST(ServiceChurnTest, RetireExactlyRestoresLedgerState) {
  const core::Ensemble target = TinyThroughputEnsemble(22);
  PlacementService service(RoomyCluster(), &target, nullptr, nullptr,
                           FastConfig());
  workload::QueryGenerator generator(LightWorkload());
  nn::Rng rng(101);

  // A few resident queries so the restored state is non-trivial.
  for (int i = 0; i < 3; ++i) {
    service.Admit(generator.Generate(workload::QueryTemplate::kLinear, rng));
  }
  const sim::BackgroundLoad before = service.ledger().TotalLoad();
  const int live_before = service.live_queries();

  const AdmitResult admitted = service.Admit(
      generator.Generate(workload::QueryTemplate::kTwoWayJoin, rng));
  ASSERT_EQ(service.live_queries(), live_before + 1);
  ASSERT_TRUE(service.Retire(admitted.id));

  const sim::BackgroundLoad after = service.ledger().TotalLoad();
  ASSERT_EQ(service.live_queries(), live_before);
  ASSERT_EQ(before.empty(), after.empty());
  for (int n = 0; n < service.ledger().num_nodes(); ++n) {
    // Bitwise: totals are recomputed from the live set in id order, so the
    // admit/retire round trip cannot leave floating-point residue.
    EXPECT_EQ(before.cpu_load_us[n], after.cpu_load_us[n]);
    EXPECT_EQ(before.out_bytes_per_s[n], after.out_bytes_per_s[n]);
    EXPECT_EQ(before.memory_mb[n], after.memory_mb[n]);
  }
  EXPECT_EQ(service.ledger().CheckInvariants(), "");
}

TEST(ServiceChurnTest, RetireUnknownIdIsRejected) {
  const core::Ensemble target = TinyThroughputEnsemble(23);
  PlacementService service(RoomyCluster(), &target, nullptr, nullptr,
                           FastConfig());
  EXPECT_FALSE(service.Retire(123));
  workload::QueryGenerator generator(LightWorkload());
  nn::Rng rng(5);
  const AdmitResult result = service.Admit(
      generator.Generate(workload::QueryTemplate::kLinear, rng));
  EXPECT_TRUE(service.Retire(result.id));
  EXPECT_FALSE(service.Retire(result.id));  // double retire
}

TEST(LoadLedgerTest, UtilizationAndOverflowTrackDemand) {
  sim::Cluster cluster;
  cluster.nodes.push_back({100.0, 4000.0, 100.0, 5.0});  // 1 core
  cluster.nodes.push_back({100.0, 4000.0, 100.0, 5.0});
  ClusterLoadLedger ledger(cluster);
  EXPECT_EQ(ledger.NodeUtilization(0), 0.0);
  EXPECT_TRUE(ledger.OverflowedNodes().empty());

  sim::BackgroundLoad load;
  load.cpu_load_us = {1.5e6, 0.25e6};  // node 0: 1.5 cores on a 1-core node
  load.out_bytes_per_s = {0.0, 0.0};
  load.memory_mb = {100.0, 100.0};
  ledger.Admit(7, load);
  EXPECT_NEAR(ledger.NodeUtilization(0), 1.5, 1e-12);
  EXPECT_NEAR(ledger.NodeUtilization(1), 0.25, 1e-12);
  EXPECT_EQ(ledger.OverflowedNodes(), std::vector<int>{0});

  // Repricing escalates: history accumulates while the node stays overflowed
  // and the penalty is monotonically increasing.
  EXPECT_EQ(ledger.NodePenalty(0), 1.0);
  ledger.UpdateCongestion();
  const double p1 = ledger.NodePenalty(0);
  EXPECT_GT(p1, 1.0);
  ledger.UpdateCongestion();
  const double p2 = ledger.NodePenalty(0);
  EXPECT_GT(p2, p1);
  EXPECT_EQ(ledger.history(0), 2);
  EXPECT_GT(ledger.overflow_count(0), 0);
  EXPECT_EQ(ledger.NodePenalty(1), 1.0);

  // Retiring the only query clears demand; congestion state clears on reset.
  EXPECT_TRUE(ledger.Retire(7));
  EXPECT_EQ(ledger.NodeUtilization(0), 0.0);
  ledger.UpdateCongestion();
  EXPECT_GT(ledger.NodePenalty(0), 1.0);  // history persists across iterations
  ledger.ResetCongestion();
  EXPECT_EQ(ledger.NodePenalty(0), 1.0);
}

}  // namespace
}  // namespace costream::service
