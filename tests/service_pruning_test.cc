// Interval pre-pass pruning in the placement service: candidates proven to
// crash a node skip GEMM scoring (service.scoring.pruned), and — by the
// demotion-tier construction — every decision is bitwise identical to the
// unpruned service. This test enforces that invariant over a mixed workload
// on a cluster where pruning actually bites, plus the all-pruned fallback
// (every candidate proven to crash still gets scored and placed).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/trainer.h"
#include "dsps/query_builder.h"
#include "dsps/query_graph.h"
#include "nn/random.h"
#include "obs/metrics.h"
#include "service/placement_service.h"
#include "sim/hardware.h"
#include "workload/corpus.h"
#include "workload/generator.h"

namespace costream::service {
namespace {

using dsps::DataType;
using dsps::OperatorDescriptor;
using dsps::OperatorType;
using dsps::QueryGraph;
using dsps::WindowPolicy;
using dsps::WindowType;

// Two 100 MB edge boxes next to two well-provisioned servers: any candidate
// that parks the big window below on an edge box is provably crashing, so
// the interval pre-pass has real work to do.
sim::Cluster MixedCluster() {
  sim::Cluster cluster;
  cluster.nodes.push_back({100.0, 100.0, 100.0, 25.0});
  cluster.nodes.push_back({150.0, 100.0, 150.0, 20.0});
  cluster.nodes.push_back({400.0, 32000.0, 1000.0, 5.0});
  cluster.nodes.push_back({600.0, 48000.0, 2000.0, 2.0});
  return cluster;
}

// ~2e5 tuples x 96 bytes x 20 state factor ~ 384 MB proven window state:
// far above a 100 MB node's crash threshold, comfortable on the servers.
QueryGraph BigWindowQuery(double rate) {
  QueryGraph query;
  OperatorDescriptor source;
  source.type = OperatorType::kSource;
  source.input_event_rate = rate;
  source.tuple_width_in = 2.0;
  source.tuple_width_out = 2.0;
  source.selectivity = 1.0;
  source.tuple_data_types = {DataType::kInt, DataType::kInt};
  query.AddOperator(source);
  OperatorDescriptor window;
  window.type = OperatorType::kWindow;
  window.tuple_width_in = 2.0;
  window.tuple_width_out = 2.0;
  window.selectivity = 1.0;
  window.window = {WindowType::kTumbling, WindowPolicy::kCountBased, 2e5, 2e5};
  query.AddOperator(window);
  OperatorDescriptor sink;
  sink.type = OperatorType::kSink;
  sink.tuple_width_in = 2.0;
  sink.tuple_width_out = 2.0;
  sink.selectivity = 1.0;
  query.AddOperator(sink);
  query.AddEdge(0, 1);
  query.AddEdge(1, 2);
  return query;
}

core::Ensemble TinyThroughputEnsemble() {
  workload::CorpusConfig cc;
  cc.num_queries = 40;
  cc.seed = 51;
  cc.duration_s = 30.0;
  const auto records = workload::BuildCorpus(cc);
  core::CostModelConfig config;
  config.hidden_dim = 8;
  core::Ensemble ensemble(config, 1);
  auto samples = workload::ToTrainSamples(records, sim::Metric::kThroughput);
  core::TrainConfig tc;
  tc.epochs = 3;
  ensemble.Train(samples, {}, tc);
  return ensemble;
}

ServiceConfig BaseConfig(bool pruning) {
  ServiceConfig config;
  config.target = sim::Metric::kThroughput;
  config.num_candidates = 16;
  config.seed = 91;
  config.interval_pruning = pruning;
  return config;
}

void ExpectIdentical(const AdmitResult& a, const AdmitResult& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_EQ(a.predicted, b.predicted);    // bitwise, not approximate
  EXPECT_EQ(a.penalized, b.penalized);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.candidates_evaluated, b.candidates_evaluated);
}

TEST(ServicePruningTest, DecisionsAreBitwiseIdenticalWithPruningOnAndOff) {
  const core::Ensemble target = TinyThroughputEnsemble();
  PlacementService pruned(MixedCluster(), &target, nullptr, nullptr,
                          BaseConfig(true));
  PlacementService unpruned(MixedCluster(), &target, nullptr, nullptr,
                            BaseConfig(false));

  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(404);
  obs::Counter& pruned_counter = obs::GetCounter("service.scoring.pruned");
  const uint64_t before = pruned_counter.Value();

  // Interleave big-window queries (where candidates die on the edge boxes)
  // with generated ones (mostly unprunable) and occasional retirements.
  std::vector<int64_t> live;
  for (int e = 0; e < 24; ++e) {
    dsps::QueryGraph query;
    if (e % 3 == 0) {
      query = BigWindowQuery(500.0 + 10.0 * e);
    } else {
      const auto t = static_cast<workload::QueryTemplate>(rng.Int(0, 2));
      query = generator.Generate(t, rng);
    }
    const AdmitResult a = pruned.Admit(query);
    const AdmitResult b = unpruned.Admit(query);
    ExpectIdentical(a, b);
    live.push_back(a.id);
    if (e % 5 == 4 && !live.empty()) {
      const int64_t victim = live.front();
      live.erase(live.begin());
      EXPECT_EQ(pruned.Retire(victim), unpruned.Retire(victim));
    }
  }

  // Pruning must have actually skipped scoring work on this workload.
  const uint64_t after_pruned_run = pruned_counter.Value();
  EXPECT_GT(after_pruned_run, before);

  // Converge (rip-up re-placement) goes through the same pre-pass; the two
  // services must converge to elementwise-identical final placements.
  const ConvergeResult ca = pruned.Converge();
  const ConvergeResult cb = unpruned.Converge();
  EXPECT_EQ(ca.iterations, cb.iterations);
  EXPECT_EQ(ca.ripups, cb.ripups);
  EXPECT_EQ(ca.converged, cb.converged);
  const std::vector<int64_t> ids = pruned.QueryIds();
  ASSERT_EQ(ids, unpruned.QueryIds());
  for (const int64_t id : ids) {
    EXPECT_EQ(pruned.PlacementOf(id), unpruned.PlacementOf(id)) << id;
  }
}

TEST(ServicePruningTest, AsyncBatchesMatchAcrossPruningModes) {
  const core::Ensemble target = TinyThroughputEnsemble();
  PlacementService pruned(MixedCluster(), &target, nullptr, nullptr,
                          BaseConfig(true));
  PlacementService unpruned(MixedCluster(), &target, nullptr, nullptr,
                            BaseConfig(false));
  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(77);
  for (int e = 0; e < 6; ++e) {
    dsps::QueryGraph query;
    if (e % 2 == 0) {
      query = BigWindowQuery(800.0 + 5.0 * e);
    } else {
      query = generator.Generate(workload::QueryTemplate::kLinear, rng);
    }
    EXPECT_EQ(pruned.AdmitAsync(query), unpruned.AdmitAsync(query));
  }
  const std::vector<AdmitResult> a = pruned.DrainAdmissions();
  const std::vector<AdmitResult> b = unpruned.DrainAdmissions();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ExpectIdentical(a[i], b[i]);
}

TEST(ServicePruningTest, AllProvenCrashCandidatesAreStillScoredAndPlaced) {
  // Every node is a 100 MB box, so every candidate for the big window is
  // proven to crash: the pre-pass must fall back to scoring all of them
  // (nothing is pruned — there is no unproven candidate to prefer) and both
  // modes still agree.
  sim::Cluster cluster;
  cluster.nodes.push_back({100.0, 100.0, 100.0, 25.0});
  cluster.nodes.push_back({150.0, 100.0, 150.0, 20.0});
  cluster.nodes.push_back({200.0, 100.0, 200.0, 15.0});
  const core::Ensemble target = TinyThroughputEnsemble();
  PlacementService pruned(cluster, &target, nullptr, nullptr,
                          BaseConfig(true));
  PlacementService unpruned(cluster, &target, nullptr, nullptr,
                            BaseConfig(false));
  obs::Counter& pruned_counter = obs::GetCounter("service.scoring.pruned");
  const uint64_t before = pruned_counter.Value();
  const dsps::QueryGraph query = BigWindowQuery(500.0);
  const AdmitResult a = pruned.Admit(query);
  const AdmitResult b = unpruned.Admit(query);
  ExpectIdentical(a, b);
  ASSERT_EQ(a.placement.size(), 3u);
  EXPECT_GT(a.candidates_evaluated, 0);
  // All demoted -> nothing pruned (the fallback scores everyone).
  EXPECT_EQ(pruned_counter.Value(), before);
}

}  // namespace
}  // namespace costream::service
