#include "dsps/query_graph.h"

#include <gtest/gtest.h>

namespace costream::dsps {
namespace {

OperatorDescriptor MakeSource(double rate = 100.0) {
  OperatorDescriptor op;
  op.type = OperatorType::kSource;
  op.input_event_rate = rate;
  op.tuple_data_types = {DataType::kInt, DataType::kDouble};
  op.tuple_width_out = 2.0;
  return op;
}

OperatorDescriptor MakeOp(OperatorType type) {
  OperatorDescriptor op;
  op.type = type;
  op.tuple_width_in = 2.0;
  op.tuple_width_out = 2.0;
  return op;
}

QueryGraph LinearQuery() {
  QueryGraph q;
  const int src = q.AddOperator(MakeSource());
  const int filter = q.AddOperator(MakeOp(OperatorType::kFilter));
  const int sink = q.AddOperator(MakeOp(OperatorType::kSink));
  q.AddEdge(src, filter);
  q.AddEdge(filter, sink);
  return q;
}

TEST(QueryGraphTest, LinearQueryValidates) {
  EXPECT_EQ(LinearQuery().Validate(), "");
}

TEST(QueryGraphTest, UpstreamDownstream) {
  QueryGraph q = LinearQuery();
  EXPECT_EQ(q.Upstream(1), std::vector<int>{0});
  EXPECT_EQ(q.Downstream(1), std::vector<int>{2});
  EXPECT_TRUE(q.Upstream(0).empty());
  EXPECT_TRUE(q.Downstream(2).empty());
}

TEST(QueryGraphTest, SourcesAndSink) {
  QueryGraph q = LinearQuery();
  EXPECT_EQ(q.Sources(), std::vector<int>{0});
  EXPECT_EQ(q.Sink(), 2);
}

TEST(QueryGraphTest, TopologicalOrderRespectsEdges) {
  QueryGraph q = LinearQuery();
  const std::vector<int> topo = q.TopologicalOrder();
  ASSERT_EQ(topo.size(), 3u);
  std::vector<int> position(3);
  for (int i = 0; i < 3; ++i) position[topo[i]] = i;
  for (const auto& [from, to] : q.edges()) {
    EXPECT_LT(position[from], position[to]);
  }
}

TEST(QueryGraphTest, CountType) {
  QueryGraph q = LinearQuery();
  EXPECT_EQ(q.CountType(OperatorType::kFilter), 1);
  EXPECT_EQ(q.CountType(OperatorType::kJoin), 0);
}

TEST(QueryGraphTest, RejectsEmptyQuery) {
  QueryGraph q;
  EXPECT_NE(q.Validate(), "");
}

TEST(QueryGraphTest, RejectsSourceWithInputs) {
  QueryGraph q;
  const int s1 = q.AddOperator(MakeSource());
  const int s2 = q.AddOperator(MakeSource());
  const int sink = q.AddOperator(MakeOp(OperatorType::kSink));
  q.AddEdge(s1, s2);
  q.AddEdge(s2, sink);
  EXPECT_NE(q.Validate(), "");
}

TEST(QueryGraphTest, RejectsJoinWithOneInput) {
  QueryGraph q;
  const int src = q.AddOperator(MakeSource());
  const int window = q.AddOperator(MakeOp(OperatorType::kWindow));
  const int join = q.AddOperator(MakeOp(OperatorType::kJoin));
  const int sink = q.AddOperator(MakeOp(OperatorType::kSink));
  q.AddEdge(src, window);
  q.AddEdge(window, join);
  q.AddEdge(join, sink);
  EXPECT_NE(q.Validate(), "");
}

TEST(QueryGraphTest, RejectsAggregateWithoutWindowInput) {
  QueryGraph q;
  const int src = q.AddOperator(MakeSource());
  const int agg = q.AddOperator(MakeOp(OperatorType::kAggregate));
  const int sink = q.AddOperator(MakeOp(OperatorType::kSink));
  q.AddEdge(src, agg);
  q.AddEdge(agg, sink);
  EXPECT_NE(q.Validate(), "");
}

TEST(QueryGraphTest, RejectsMultipleSinks) {
  QueryGraph q;
  const int src = q.AddOperator(MakeSource());
  const int f = q.AddOperator(MakeOp(OperatorType::kFilter));
  const int sink1 = q.AddOperator(MakeOp(OperatorType::kSink));
  const int sink2 = q.AddOperator(MakeOp(OperatorType::kSink));
  q.AddEdge(src, f);
  q.AddEdge(f, sink1);
  q.AddEdge(f, sink2);
  EXPECT_NE(q.Validate(), "");
}

TEST(QueryGraphTest, RejectsOutOfRangeSelectivity) {
  QueryGraph q = LinearQuery();
  q.mutable_op(1).selectivity = 1.5;
  EXPECT_NE(q.Validate(), "");
}

TEST(QueryGraphTest, DebugStringListsOperators) {
  EXPECT_EQ(LinearQuery().DebugString(), "source->filter->sink");
}

TEST(QueryGraphDeathTest, SinkOnGraphWithoutSinkAborts) {
  QueryGraph q;
  q.AddOperator(MakeSource());
  EXPECT_DEATH(q.Sink(), "no sink");
}

TEST(QueryGraphDeathTest, SelfEdgeAborts) {
  QueryGraph q;
  const int src = q.AddOperator(MakeSource());
  EXPECT_DEATH(q.AddEdge(src, src), "COSTREAM_CHECK");
}

}  // namespace
}  // namespace costream::dsps
