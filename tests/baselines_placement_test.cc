#include "baselines/flat_vector.h"
#include "baselines/heuristic.h"
#include "baselines/monitoring.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dsps/query_builder.h"
#include "placement/enumeration.h"
#include "workload/corpus.h"

namespace costream::baselines {
namespace {

sim::Cluster HeterogeneousCluster() {
  sim::Cluster cluster;
  cluster.nodes.push_back({50.0, 1000.0, 25.0, 80.0});
  cluster.nodes.push_back({100.0, 2000.0, 100.0, 40.0});
  cluster.nodes.push_back({400.0, 8000.0, 1600.0, 5.0});
  cluster.nodes.push_back({800.0, 32000.0, 10000.0, 1.0});
  return cluster;
}

dsps::QueryGraph RandomQuery(workload::QueryTemplate t, uint64_t seed) {
  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(seed);
  return generator.Generate(t, rng);
}

TEST(FlatVectorTest, DimensionIsStable) {
  const dsps::QueryGraph q =
      RandomQuery(workload::QueryTemplate::kThreeWayJoin, 1);
  sim::Cluster cluster = HeterogeneousCluster();
  sim::Placement placement(q.num_operators(), 3);
  const auto features = FlatVectorFeatures(q, cluster, placement);
  EXPECT_EQ(static_cast<int>(features.size()), kFlatVectorDim);
  for (double f : features) EXPECT_TRUE(std::isfinite(f));
}

TEST(FlatVectorTest, FeatureNamesCoverAllSlots) {
  for (int i = 0; i < kFlatVectorDim; ++i) {
    EXPECT_STRNE(FlatVectorFeatureName(i), "");
  }
}

TEST(FlatVectorTest, CountsOperatorsCorrectly) {
  const dsps::QueryGraph q =
      RandomQuery(workload::QueryTemplate::kTwoWayJoin, 2);
  sim::Cluster cluster = HeterogeneousCluster();
  sim::Placement placement(q.num_operators(), 3);
  const auto features = FlatVectorFeatures(q, cluster, placement);
  EXPECT_EQ(features[0], 2.0);  // n_sources
  EXPECT_EQ(features[2], 1.0);  // n_joins
  EXPECT_EQ(features[5], static_cast<double>(q.num_operators()));
}

TEST(FlatVectorTest, CannotDistinguishPermutedPlacements) {
  // The structural blindness of the flat vector: permuting *which* operator
  // sits on which of the used nodes leaves the vector unchanged.
  dsps::QueryBuilder b;
  auto s = b.Source(500.0, {dsps::DataType::kInt});
  auto f =
      b.Filter(s, dsps::FilterFunction::kLess, dsps::DataType::kInt, 0.5);
  const dsps::QueryGraph q = b.Sink(f);
  sim::Cluster cluster = HeterogeneousCluster();
  const auto a = FlatVectorFeatures(q, cluster, {0, 3, 3});
  const auto c = FlatVectorFeatures(q, cluster, {3, 0, 0});
  EXPECT_EQ(a, c);
}

TEST(GovernorHeuristicTest, ProducesValidPlacement) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    for (auto t : {workload::QueryTemplate::kLinear,
                   workload::QueryTemplate::kTwoWayJoin,
                   workload::QueryTemplate::kThreeWayJoin}) {
      const dsps::QueryGraph q = RandomQuery(t, 10 + seed);
      sim::Cluster cluster = HeterogeneousCluster();
      const sim::Placement placement = GovernorHeuristicPlacement(q, cluster);
      EXPECT_EQ(sim::ValidatePlacement(q, cluster, placement), "");
    }
  }
}

TEST(GovernorHeuristicTest, SourcesOnWeakNodesSinkOnStrongest) {
  const dsps::QueryGraph q = RandomQuery(workload::QueryTemplate::kLinear, 20);
  sim::Cluster cluster = HeterogeneousCluster();
  const sim::Placement placement = GovernorHeuristicPlacement(q, cluster);
  const std::vector<int> bins = placement::CapabilityBins(cluster, 3);
  for (int src : q.Sources()) {
    EXPECT_EQ(bins[placement[src]], 0) << "source not on an edge node";
  }
  EXPECT_EQ(placement[q.Sink()], 3);  // strongest node
}

TEST(GovernorHeuristicTest, CapabilityNeverDecreasesAlongFlow) {
  for (uint64_t seed = 30; seed < 36; ++seed) {
    const dsps::QueryGraph q =
        RandomQuery(workload::QueryTemplate::kThreeWayJoin, seed);
    sim::Cluster cluster = HeterogeneousCluster();
    const sim::Placement placement = GovernorHeuristicPlacement(q, cluster);
    for (const auto& [from, to] : q.edges()) {
      EXPECT_GE(sim::CapabilityScore(cluster.nodes[placement[to]]),
                sim::CapabilityScore(cluster.nodes[placement[from]]) - 1e-9);
    }
  }
}

TEST(MonitoringTest, StableQueryNeedsNoMigration) {
  // A tiny workload on strong hardware is never overloaded.
  dsps::QueryBuilder b;
  auto s = b.Source(100.0, {dsps::DataType::kInt});
  const dsps::QueryGraph q = b.Sink(s);
  sim::Cluster cluster = HeterogeneousCluster();
  sim::Placement initial(q.num_operators(), 3);
  MonitoringResult result =
      RunOnlineMonitoring(q, cluster, initial, MonitoringConfig{});
  EXPECT_EQ(result.migrations, 0);
  ASSERT_EQ(result.steps.size(), 1u);
}

TEST(MonitoringTest, OverloadedPlacementTriggersMigrations) {
  // A heavy filter chain crammed onto the weakest node overloads it.
  dsps::QueryBuilder b;
  auto s = b.Source(12800.0, std::vector<dsps::DataType>(8,
                                                         dsps::DataType::kString));
  auto f = b.Filter(s, dsps::FilterFunction::kStartsWith,
                    dsps::DataType::kString, 0.9);
  const dsps::QueryGraph q = b.Sink(f);
  sim::Cluster cluster = HeterogeneousCluster();
  sim::Placement initial(q.num_operators(), 0);  // all on the weakest node
  MonitoringResult result =
      RunOnlineMonitoring(q, cluster, initial, MonitoringConfig{});
  EXPECT_GT(result.migrations, 0);
  // Migrations relieve the overloaded node: the sustained throughput of the
  // final placement beats the initial one (the scheduler optimizes load,
  // not latency, so L_p may even increase due to extra network hops).
  sim::FluidConfig fluid;
  fluid.noise_sigma = 0.0;
  const double tp_initial =
      sim::EvaluateFluid(q, cluster, result.steps.front().placement, fluid)
          .metrics.throughput;
  const double tp_final =
      sim::EvaluateFluid(q, cluster, result.steps.back().placement, fluid)
          .metrics.throughput;
  EXPECT_GT(tp_final, tp_initial);
}

TEST(MonitoringTest, TimeToReachFindsFirstCompetitiveStep) {
  MonitoringResult result;
  MonitoringStep s0;
  s0.time_s = 0.0;
  s0.processing_latency_ms = 100.0;
  MonitoringStep s1;
  s1.time_s = 12.0;
  s1.processing_latency_ms = 40.0;
  result.steps = {s0, s1};
  EXPECT_EQ(result.TimeToReach(50.0), 12.0);
  EXPECT_EQ(result.TimeToReach(150.0), 0.0);
  EXPECT_EQ(result.TimeToReach(10.0), -1.0);
}

TEST(MonitoringTest, MigrationCostGrowsWithState) {
  // Steps advance by at least the monitoring interval per migration.
  dsps::QueryBuilder b;
  auto s = b.Source(12800.0, std::vector<dsps::DataType>(8,
                                                         dsps::DataType::kString));
  auto f = b.Filter(s, dsps::FilterFunction::kStartsWith,
                    dsps::DataType::kString, 0.9);
  const dsps::QueryGraph q = b.Sink(f);
  sim::Cluster cluster = HeterogeneousCluster();
  sim::Placement initial(q.num_operators(), 0);
  MonitoringConfig config;
  config.monitoring_interval_s = 10.0;
  MonitoringResult result = RunOnlineMonitoring(q, cluster, initial, config);
  for (size_t i = 1; i < result.steps.size(); ++i) {
    EXPECT_GE(result.steps[i].time_s,
              result.steps[i - 1].time_s + config.monitoring_interval_s);
  }
}

}  // namespace
}  // namespace costream::baselines
