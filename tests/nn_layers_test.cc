#include "nn/layers.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "nn/serialize.h"

namespace costream::nn {
namespace {

TEST(LinearTest, OutputShape) {
  Rng rng(1);
  Linear layer(3, 5, rng);
  Tape tape;
  Var x = tape.Input(Matrix(2, 3));
  Var y = layer.Apply(tape, x);
  EXPECT_EQ(tape.value(y).rows(), 2);
  EXPECT_EQ(tape.value(y).cols(), 5);
}

TEST(LinearTest, ZeroInputYieldsBias) {
  Rng rng(2);
  Linear layer(3, 2, rng);
  Tape tape;
  Var y = layer.Apply(tape, tape.Input(Matrix(1, 3)));
  // Bias initializes to zero.
  EXPECT_DOUBLE_EQ(tape.value(y)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(tape.value(y)(0, 1), 0.0);
}

TEST(LinearTest, CollectParametersYieldsWeightAndBias) {
  Rng rng(3);
  Linear layer(4, 2, rng);
  std::vector<Parameter*> params;
  layer.CollectParameters(params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->value.rows(), 4);
  EXPECT_EQ(params[0]->value.cols(), 2);
  EXPECT_EQ(params[1]->value.rows(), 1);
  EXPECT_EQ(params[1]->value.cols(), 2);
}

TEST(MlpTest, LayerChainShapes) {
  Rng rng(4);
  Mlp mlp({6, 8, 3}, rng);
  EXPECT_EQ(mlp.in_features(), 6);
  EXPECT_EQ(mlp.out_features(), 3);
  Tape tape;
  Var y = mlp.Apply(tape, tape.Input(Matrix(1, 6)));
  EXPECT_EQ(tape.value(y).cols(), 3);
}

TEST(MlpTest, OutputNotActivatedByDefault) {
  // With ReLU on the output, all values would be >= 0; without, a rich input
  // space should produce some negative outputs.
  Rng rng(5);
  Mlp mlp({4, 8, 1}, rng);
  bool any_negative = false;
  for (int i = 0; i < 64; ++i) {
    Tape tape;
    Matrix x(1, 4);
    for (int c = 0; c < 4; ++c) x(0, c) = rng.Uniform(-2.0, 2.0);
    Var y = mlp.Apply(tape, tape.Input(x));
    if (tape.value(y)(0, 0) < 0.0) any_negative = true;
  }
  EXPECT_TRUE(any_negative);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (p - 3)^2 .
  Parameter p;
  p.value = Matrix::Scalar(0.0);
  p.ZeroGrad();
  AdamConfig config;
  config.learning_rate = 0.1;
  Adam adam({&p}, config);
  for (int step = 0; step < 300; ++step) {
    Tape tape;
    Var loss = tape.MseLoss(tape.Leaf(&p), Matrix::Scalar(3.0));
    tape.Backward(loss);
    adam.Step();
  }
  EXPECT_NEAR(p.value(0, 0), 3.0, 1e-2);
}

TEST(AdamTest, MlpFitsLinearFunction) {
  // y = 2 x0 - x1 learned from samples.
  Rng rng(6);
  Mlp mlp({2, 16, 1}, rng);
  std::vector<Parameter*> params;
  mlp.CollectParameters(params);
  AdamConfig config;
  config.learning_rate = 5e-3;
  Adam adam(params, config);
  for (int step = 0; step < 2000; ++step) {
    Tape tape;
    Matrix x(1, 2);
    x(0, 0) = rng.Uniform(-1.0, 1.0);
    x(0, 1) = rng.Uniform(-1.0, 1.0);
    const double target = 2.0 * x(0, 0) - x(0, 1);
    Var loss =
        tape.MseLoss(mlp.Apply(tape, tape.Input(x)), Matrix::Scalar(target));
    tape.Backward(loss);
    adam.Step();
  }
  double total_error = 0.0;
  for (int i = 0; i < 50; ++i) {
    Tape tape;
    Matrix x(1, 2);
    x(0, 0) = rng.Uniform(-1.0, 1.0);
    x(0, 1) = rng.Uniform(-1.0, 1.0);
    const double target = 2.0 * x(0, 0) - x(0, 1);
    Var y = mlp.Apply(tape, tape.Input(x));
    total_error += std::fabs(tape.value(y)(0, 0) - target);
  }
  EXPECT_LT(total_error / 50.0, 0.08);
}

TEST(AdamTest, GradClipBoundsUpdate) {
  Parameter p;
  p.value = Matrix::Scalar(0.0);
  p.ZeroGrad();
  p.grad(0, 0) = 1e9;  // enormous gradient
  AdamConfig config;
  config.learning_rate = 0.01;
  config.grad_clip = 1.0;
  Adam adam({&p}, config);
  adam.Step();
  // Adam normalizes by sqrt(v), so the step magnitude stays ~learning rate.
  EXPECT_LT(std::fabs(p.value(0, 0)), 0.2);
}

TEST(AdamTest, ZeroGradClearsAccumulation) {
  Parameter p;
  p.value = Matrix::Scalar(1.0);
  p.ZeroGrad();
  p.grad(0, 0) = 5.0;
  Adam adam({&p}, AdamConfig{});
  adam.ZeroGrad();
  EXPECT_EQ(p.grad(0, 0), 0.0);
}

TEST(SerializeTest, RoundTripPreservesValues) {
  Rng rng(7);
  Mlp mlp({3, 4, 2}, rng);
  std::vector<Parameter*> params;
  mlp.CollectParameters(params);

  std::stringstream buffer;
  SaveParameters(buffer, params);

  // Perturb, then load back.
  const double original = params[0]->value(0, 0);
  params[0]->value(0, 0) = 99.0;
  EXPECT_TRUE(LoadParameters(buffer, params));
  EXPECT_DOUBLE_EQ(params[0]->value(0, 0), original);
}

TEST(SerializeTest, LoadRejectsShapeMismatch) {
  Rng rng(8);
  Mlp a({3, 4, 2}, rng);
  Mlp b({3, 5, 2}, rng);
  std::vector<Parameter*> pa, pb;
  a.CollectParameters(pa);
  b.CollectParameters(pb);
  std::stringstream buffer;
  SaveParameters(buffer, pa);
  EXPECT_FALSE(LoadParameters(buffer, pb));
}

TEST(SerializeTest, LoadRejectsGarbage) {
  Rng rng(9);
  Mlp mlp({2, 2}, rng);
  std::vector<Parameter*> params;
  mlp.CollectParameters(params);
  std::stringstream buffer("not a model file");
  EXPECT_FALSE(LoadParameters(buffer, params));
}

}  // namespace
}  // namespace costream::nn
