// CostModel::Save / CostModel::Load round-trips: predictions must survive
// persistence exactly, and Load must reject truncated files and
// architecture mismatches without crashing or partially mutating the model.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/featurizer.h"
#include "core/model.h"
#include "dsps/query_builder.h"
#include "nn/serialize.h"

namespace costream::core {
namespace {

namespace fs = std::filesystem;
using nn::Matrix;

class SerializeRoundtripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("costream_serialize_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<uintptr_t>(this)));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

JointGraph TestGraph(double rate) {
  using dsps::DataType;
  dsps::QueryBuilder b;
  auto s = b.Source(rate, {DataType::kInt, DataType::kInt});
  auto f = b.Filter(s, dsps::FilterFunction::kLess, DataType::kInt, 0.5);
  dsps::QueryGraph query = b.Sink(f);
  sim::Cluster cluster{{sim::HardwareNode{400.0, 8000.0, 500.0, 2.0},
                        sim::HardwareNode{900.0, 16000.0, 1000.0, 1.0}}};
  sim::Placement placement(query.num_operators(), 0);
  placement[query.num_operators() - 1] = 1;
  return BuildJointGraph(query, cluster, placement);
}

std::vector<Matrix> Snapshot(CostModel& model) {
  return model.SnapshotParameters();
}

void ExpectParamsEqual(const std::vector<Matrix>& a,
                       const std::vector<Matrix>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].SameShape(b[i]));
    for (int j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i].data()[j], b[i].data()[j]) << "param " << i;
    }
  }
}

TEST_F(SerializeRoundtripTest, RoundTripPreservesPredictionsExactly) {
  CostModelConfig config;
  config.seed = 3;
  CostModel saved(config);
  const std::string path = Path("model.bin");
  ASSERT_TRUE(saved.Save(path));

  CostModelConfig other = config;
  other.seed = 99;  // different init: predictions differ before Load
  CostModel loaded(other);
  const JointGraph g1 = TestGraph(700.0);
  const JointGraph g2 = TestGraph(2500.0);
  // PredictProbability is strictly monotonic in the raw output (no clamping),
  // so differing initializations are guaranteed to disagree here.
  ASSERT_NE(saved.PredictProbability(g1), loaded.PredictProbability(g1));

  ASSERT_TRUE(loaded.Load(path));
  EXPECT_EQ(saved.PredictRegression(g1), loaded.PredictRegression(g1));
  EXPECT_EQ(saved.PredictRegression(g2), loaded.PredictRegression(g2));
  EXPECT_EQ(saved.PredictProbability(g1), loaded.PredictProbability(g1));
  ExpectParamsEqual(Snapshot(saved), Snapshot(loaded));
}

TEST_F(SerializeRoundtripTest, TruncatedFilesAreRejectedWithoutMutation) {
  CostModelConfig config;
  config.seed = 7;
  CostModel saved(config);
  const std::string path = Path("full.bin");
  ASSERT_TRUE(saved.Save(path));
  const auto full_size = fs::file_size(path);

  // Truncate at several depths: inside the header, inside a shape record,
  // and inside the payload of a later tensor.
  for (const std::uintmax_t keep :
       {std::uintmax_t{0}, std::uintmax_t{2}, std::uintmax_t{9},
        full_size / 3, full_size - 7}) {
    const std::string cut = Path("cut.bin");
    {
      std::ifstream in(path, std::ios::binary);
      std::vector<char> bytes(keep);
      in.read(bytes.data(), static_cast<std::streamsize>(keep));
      std::ofstream out(cut, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    CostModel victim(config);
    const std::vector<Matrix> before = Snapshot(victim);
    EXPECT_FALSE(victim.Load(cut)) << "kept " << keep << " bytes";
    ExpectParamsEqual(before, Snapshot(victim));
  }
}

TEST_F(SerializeRoundtripTest, ArchitectureMismatchIsRejectedWithoutMutation) {
  CostModelConfig small;
  small.hidden_dim = 16;
  CostModel saved(small);
  const std::string path = Path("h16.bin");
  ASSERT_TRUE(saved.Save(path));

  CostModelConfig big = small;
  big.hidden_dim = 32;
  CostModel victim(big);
  const std::vector<Matrix> before = Snapshot(victim);
  EXPECT_FALSE(victim.Load(path));
  ExpectParamsEqual(before, Snapshot(victim));
}

TEST_F(SerializeRoundtripTest, GarbageMagicAndMissingFileAreRejected) {
  CostModelConfig config;
  CostModel victim(config);
  const std::vector<Matrix> before = Snapshot(victim);

  EXPECT_FALSE(victim.Load(Path("does_not_exist.bin")));

  const std::string junk = Path("junk.bin");
  {
    std::ofstream out(junk, std::ios::binary);
    const char bytes[] = "not a costream checkpoint at all";
    out.write(bytes, sizeof(bytes));
  }
  EXPECT_FALSE(victim.Load(junk));
  ExpectParamsEqual(before, Snapshot(victim));
}

}  // namespace
}  // namespace costream::core
