// Cross-validation of the two simulation substrates: the analytical fluid
// engine (label generator) must agree with the tuple-level discrete-event
// simulator on throughput within a tolerance band, and must order latencies
// consistently. This is the evidence that fluid-model labels are a faithful
// stand-in for executing the queries (see DESIGN.md, substitutions).
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dsps/query_builder.h"
#include "nn/random.h"
#include "placement/enumeration.h"
#include "sim/des.h"
#include "sim/fluid_engine.h"
#include "workload/generator.h"

namespace costream::sim {
namespace {

using dsps::AggregateFunction;
using dsps::DataType;
using dsps::FilterFunction;
using dsps::GroupByType;
using dsps::QueryBuilder;
using dsps::QueryGraph;
using dsps::WindowPolicy;
using dsps::WindowSpec;
using dsps::WindowType;

struct Scenario {
  const char* name;
  QueryGraph query;
  Cluster cluster;
  Placement placement;
};

Scenario FilterScenario(double rate, double sel, double cpu) {
  QueryBuilder b;
  auto s = b.Source(rate, {DataType::kInt, DataType::kInt, DataType::kInt});
  auto f = b.Filter(s, FilterFunction::kLess, DataType::kInt, sel);
  QueryGraph q = b.Sink(f);
  Cluster cluster{{HardwareNode{cpu, 16000.0, 10000.0, 1.0}}};
  Placement placement(q.num_operators(), 0);
  return Scenario{"filter", std::move(q), std::move(cluster),
                  std::move(placement)};
}

Scenario AggScenario(double rate, WindowPolicy policy, WindowType type) {
  QueryBuilder b;
  auto s = b.Source(rate, {DataType::kInt, DataType::kDouble});
  WindowSpec w;
  w.policy = policy;
  w.type = type;
  w.size = policy == WindowPolicy::kCountBased ? 80.0 : 2.0;
  w.slide = w.size * 0.5;
  auto agg = b.WindowedAggregate(s, w, AggregateFunction::kMean,
                                 GroupByType::kInt, DataType::kDouble, 0.25);
  QueryGraph q = b.Sink(agg);
  Cluster cluster{{HardwareNode{400.0, 16000.0, 10000.0, 1.0}}};
  Placement placement(q.num_operators(), 0);
  return Scenario{"agg", std::move(q), std::move(cluster),
                  std::move(placement)};
}

Scenario JoinScenario(double rate) {
  QueryBuilder b;
  auto s1 = b.Source(rate, {DataType::kInt});
  auto s2 = b.Source(rate, {DataType::kInt});
  WindowSpec w;
  w.policy = WindowPolicy::kCountBased;
  w.type = WindowType::kSliding;
  w.size = 40;
  w.slide = 20;
  auto joined = b.WindowedJoin(s1, s2, w, DataType::kInt, 0.02);
  QueryGraph q = b.Sink(joined);
  Cluster cluster{{HardwareNode{800.0, 16000.0, 10000.0, 1.0}}};
  Placement placement(q.num_operators(), 0);
  return Scenario{"join", std::move(q), std::move(cluster),
                  std::move(placement)};
}

// Runs both engines and checks throughput agreement within `factor`.
void ExpectThroughputAgreement(const Scenario& scenario, double factor) {
  FluidConfig fluid_config;
  fluid_config.noise_sigma = 0.0;
  const FluidReport fluid =
      EvaluateFluid(scenario.query, scenario.cluster, scenario.placement,
                    fluid_config);
  DesConfig des_config;
  des_config.duration_s = 20.0;
  des_config.seed = 3;
  const DesReport des =
      RunDes(scenario.query, scenario.cluster, scenario.placement, des_config);
  ASSERT_TRUE(des.metrics.success);
  const double ratio =
      std::max(fluid.metrics.throughput, 1e-9) /
      std::max(des.metrics.throughput, 1e-9);
  EXPECT_LT(ratio, factor) << scenario.name;
  EXPECT_GT(ratio, 1.0 / factor) << scenario.name;
}

TEST(DesVsFluidTest, FilterThroughputAgrees) {
  ExpectThroughputAgreement(FilterScenario(1000.0, 0.4, 400.0), 1.25);
  ExpectThroughputAgreement(FilterScenario(4000.0, 0.9, 800.0), 1.25);
}

TEST(DesVsFluidTest, AggregateThroughputAgrees) {
  ExpectThroughputAgreement(
      AggScenario(1000.0, WindowPolicy::kCountBased, WindowType::kTumbling),
      1.6);
  ExpectThroughputAgreement(
      AggScenario(1000.0, WindowPolicy::kTimeBased, WindowType::kSliding),
      1.6);
}

TEST(DesVsFluidTest, JoinThroughputAgrees) {
  ExpectThroughputAgreement(JoinScenario(300.0), 1.8);
}

TEST(DesVsFluidTest, BothDetectBackpressureOnWeakNode) {
  Scenario s = FilterScenario(25600.0, 1.0, 50.0);
  FluidConfig fluid_config;
  fluid_config.noise_sigma = 0.0;
  const FluidReport fluid =
      EvaluateFluid(s.query, s.cluster, s.placement, fluid_config);
  DesConfig des_config;
  des_config.duration_s = 5.0;
  const DesReport des = RunDes(s.query, s.cluster, s.placement, des_config);
  EXPECT_TRUE(fluid.metrics.backpressure);
  EXPECT_TRUE(des.metrics.backpressure);
}

TEST(DesVsFluidTest, BothAgreeOnAbsenceOfBackpressure) {
  Scenario s = FilterScenario(500.0, 0.5, 800.0);
  FluidConfig fluid_config;
  fluid_config.noise_sigma = 0.0;
  const FluidReport fluid =
      EvaluateFluid(s.query, s.cluster, s.placement, fluid_config);
  DesConfig des_config;
  des_config.duration_s = 10.0;
  const DesReport des = RunDes(s.query, s.cluster, s.placement, des_config);
  EXPECT_FALSE(fluid.metrics.backpressure);
  EXPECT_FALSE(des.metrics.backpressure);
}

TEST(DesVsFluidTest, LatencyOrderingConsistentAcrossNetworkDistances) {
  // Fluid and DES must agree that the far placement is slower.
  QueryBuilder b;
  auto s = b.Source(200.0, {DataType::kInt});
  QueryGraph q = b.Sink(s);
  Cluster near{{HardwareNode{400, 8000, 1000, 2.0}, HardwareNode{800, 16000, 1000, 1.0}}};
  Cluster far{{HardwareNode{400, 8000, 1000, 120.0}, HardwareNode{800, 16000, 1000, 1.0}}};
  Placement split = {0, 1};

  FluidConfig fc;
  fc.noise_sigma = 0.0;
  const double fluid_near =
      EvaluateFluid(q, near, split, fc).metrics.processing_latency_ms;
  const double fluid_far =
      EvaluateFluid(q, far, split, fc).metrics.processing_latency_ms;
  DesConfig dc;
  dc.duration_s = 10.0;
  const double des_near =
      RunDes(q, near, split, dc).metrics.processing_latency_ms;
  const double des_far =
      RunDes(q, far, split, dc).metrics.processing_latency_ms;
  EXPECT_LT(fluid_near, fluid_far);
  EXPECT_LT(des_near, des_far);
  // The latency increase should be comparable (~ the added RTT).
  EXPECT_NEAR(fluid_far - fluid_near, des_far - des_near, 40.0);
}

// Randomized sweep over the workload generator: the per-template scenarios
// above pin down exact tolerances; this guards the whole operating envelope.
// Queries, clusters and placements come from the same distribution as the
// training corpus. For every case the two engines must agree on the
// success/backpressure labels (except near the saturation boundary, where a
// finite DES run legitimately flips), and on unsaturated successful runs
// the throughput ratio must stay inside a generous band.
TEST(DesVsFluidTest, RandomizedWorkloadSweepAgrees) {
  constexpr int kNumQueries = 51;
  // Individual cases may diverge substantially (multi-way joins compound
  // window-emission differences), but the bulk of the corpus must track
  // closely: every case inside a loose band, the median inside a tight one.
  constexpr double kThroughputBandPerCase = 12.0;
  constexpr double kThroughputBandMedian = 1.5;
  // Cases whose fluid bottleneck utilization is this close to 1.0 are
  // borderline: sampling noise decides which side the DES lands on.
  constexpr double kBorderlineLow = 0.7;
  constexpr double kBorderlineHigh = 1.5;

  const workload::QueryGenerator generator{workload::GeneratorConfig{}};
  const workload::QueryTemplate templates[] = {
      workload::QueryTemplate::kLinear, workload::QueryTemplate::kTwoWayJoin,
      workload::QueryTemplate::kThreeWayJoin};
  nn::Rng rng(2024);

  std::vector<double> ratios;
  int label_checked = 0;
  int label_agreements = 0;
  for (int i = 0; i < kNumQueries; ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const QueryGraph query =
        generator.Generate(templates[i % 3], rng);
    const Cluster cluster = generator.GenerateCluster(rng);
    const std::vector<int> bins = placement::CapabilityBins(cluster);
    const Placement placed =
        placement::SamplePlacement(query, cluster, bins, rng);

    FluidConfig fluid_config;
    fluid_config.noise_sigma = 0.0;
    const FluidReport fluid = EvaluateFluid(query, cluster, placed,
                                            fluid_config);
    DesConfig des_config;
    des_config.duration_s = 20.0;
    des_config.seed = 1000 + static_cast<uint64_t>(i);
    const DesReport des = RunDes(query, cluster, placed, des_config);

    const bool borderline =
        fluid.bottleneck_utilization > kBorderlineLow &&
        fluid.bottleneck_utilization < kBorderlineHigh;
    if (!borderline) {
      ++label_checked;
      const bool agree =
          fluid.metrics.backpressure == des.metrics.backpressure &&
          fluid.metrics.success == des.metrics.success;
      if (agree) ++label_agreements;
    }
    // Throughput comparison only where both engines report a clean run.
    if (!borderline && fluid.metrics.success && des.metrics.success &&
        !fluid.metrics.backpressure && !des.metrics.backpressure) {
      const double ratio = std::max(fluid.metrics.throughput, 1e-9) /
                           std::max(des.metrics.throughput, 1e-9);
      EXPECT_LT(ratio, kThroughputBandPerCase);
      EXPECT_GT(ratio, 1.0 / kThroughputBandPerCase);
      ratios.push_back(ratio);
    }
  }

  // The sweep must actually exercise both checks: most of the corpus sits
  // away from the saturation boundary.
  EXPECT_GE(label_checked, kNumQueries / 2);
  ASSERT_GE(ratios.size(), static_cast<size_t>(kNumQueries / 4));
  std::sort(ratios.begin(), ratios.end());
  const double median = ratios[ratios.size() / 2];
  EXPECT_LT(median, kThroughputBandMedian);
  EXPECT_GT(median, 1.0 / kThroughputBandMedian);
  // Off the boundary the engines must essentially always agree on labels.
  EXPECT_GE(label_agreements, label_checked * 9 / 10)
      << label_agreements << " of " << label_checked << " label agreements";
}

// Property sweep pinned to the backpressure boundary: the rate is calibrated
// so the fluid bottleneck utilization lands on targets in [0.9, 1.1], and the
// two engines must agree on the backpressure and success bits — exactly
// outside a ±5% deadband around saturation, by majority inside it (a finite
// DES run legitimately flips within sampling noise of the boundary).
TEST(DesVsFluidTest, BackpressureBoundarySweep) {
  // cpu_pct <= 100 keeps the capacity models identical: both engines then
  // serialize the whole chain onto (cpu_pct/100) of a core, so utilization is
  // linear in the source rate and one probe pins the slope.
  struct Combo {
    double sel;
    double cpu;
  };
  const Combo combos[] = {{1.0, 50.0}, {0.5, 50.0}};

  int deadband_checked = 0;
  int deadband_agree = 0;
  for (const Combo& combo : combos) {
    FluidConfig fc;
    fc.noise_sigma = 0.0;
    Scenario probe = FilterScenario(1000.0, combo.sel, combo.cpu);
    const double u0 =
        EvaluateFluid(probe.query, probe.cluster, probe.placement, fc)
            .bottleneck_utilization;
    ASSERT_GT(u0, 0.0);

    for (int step = 0; step <= 10; ++step) {
      const double target = 0.9 + 0.02 * step;
      const double rate = 1000.0 * target / u0;
      SCOPED_TRACE("sel " + std::to_string(combo.sel) + " target " +
                   std::to_string(target));
      Scenario s = FilterScenario(rate, combo.sel, combo.cpu);
      const FluidReport fluid =
          EvaluateFluid(s.query, s.cluster, s.placement, fc);
      EXPECT_NEAR(fluid.bottleneck_utilization, target, 0.01);

      DesConfig dc;
      dc.duration_s = 20.0;
      dc.seed = 7000 + static_cast<uint64_t>(step);
      const DesReport des = RunDes(s.query, s.cluster, s.placement, dc);

      // A stateless filter chain never crashes and always delivers output:
      // the success bit must agree on every case, boundary included.
      EXPECT_EQ(fluid.metrics.success, des.metrics.success);

      const bool agree =
          fluid.metrics.backpressure == des.metrics.backpressure;
      if (target <= 0.95 || target >= 1.05) {
        EXPECT_TRUE(agree)
            << "fluid bp " << fluid.metrics.backpressure << " des bp "
            << des.metrics.backpressure;
      } else {
        ++deadband_checked;
        if (agree) ++deadband_agree;
      }
    }
  }
  // Inside the deadband individual flips are expected but not the norm.
  EXPECT_GE(deadband_agree * 2, deadband_checked);
}

}  // namespace
}  // namespace costream::sim
