#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace costream::obs {
namespace {

// Every test starts from zeroed values and metrics enabled; handles obtained
// before a reset stay valid afterwards (the registry never destroys metrics).
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    Registry::Default().ResetValues();
  }
  void TearDown() override {
    SetEnabled(true);
    Registry::Default().ResetValues();
  }
};

TEST_F(MetricsTest, CounterCountsExactlyAcrossThreads) {
  Counter& c = GetCounter("test.counter.mt");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, CounterAddAndReset) {
  Counter& c = GetCounter("test.counter.add");
  c.Add(5);
  c.Add(7);
  EXPECT_EQ(c.Value(), 12u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  EXPECT_EQ(c.Value(), 1u);
}

TEST_F(MetricsTest, SameNameReturnsSameHandle) {
  Counter& a = GetCounter("test.counter.same");
  Counter& b = GetCounter("test.counter.same");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.Value(), 3u);
  Gauge& g1 = GetGauge("test.gauge.same");
  Gauge& g2 = GetGauge("test.gauge.same");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = GetHistogram("test.hist.same");
  Histogram& h2 = GetHistogram("test.hist.same");
  EXPECT_EQ(&h1, &h2);
}

TEST_F(MetricsTest, GaugeSetAndSetMax) {
  Gauge& g = GetGauge("test.gauge.basic");
  EXPECT_FALSE(g.WasSet());
  g.Set(2.5);
  EXPECT_TRUE(g.WasSet());
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), -1.0);
  g.SetMax(3.0);
  EXPECT_DOUBLE_EQ(g.Value(), 3.0);
  g.SetMax(1.0);  // lower value must not win
  EXPECT_DOUBLE_EQ(g.Value(), 3.0);
  g.Reset();
  EXPECT_FALSE(g.WasSet());
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST_F(MetricsTest, HistogramAggregates) {
  Histogram& h = GetHistogram("test.hist.basic");
  h.Record(1.0);
  h.Record(3.0);
  h.Record(100.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 104.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 104.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
  // Quantiles are log-linear bucket upper bounds clamped to the observed
  // max: 3.0 sits on the (2.5, 3] sub-bucket boundary -> p50 is exactly 3;
  // p100 clamps to 100.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST_F(MetricsTest, HistogramLogLinearResolution) {
  // 4 sub-buckets per octave: quantile upper bounds step by at most 25%
  // instead of the 2x of plain log2 buckets.
  Histogram& h = GetHistogram("test.hist.loglinear");
  h.Record(5.3);  // octave [4,8), sub-bucket (5,6]
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.3);  // clamped to max
  h.Record(1000.0);  // pushes p50's bucket bound below the max clamp
  EXPECT_DOUBLE_EQ(h.Quantile(0.4), 6.0);
  // Boundary samples land in the bucket they close (half-open intervals).
  Histogram& edge = GetHistogram("test.hist.loglinear.edge");
  edge.Record(2.0);   // closes octave 0's last sub-bucket (1.75, 2]
  edge.Record(80.0);  // keeps the max clamp away from p50's bound
  EXPECT_DOUBLE_EQ(edge.Quantile(0.4), 2.0);
  // Values just above a power of two resolve to a 1.25x bound, not 2x.
  Histogram& fine = GetHistogram("test.hist.loglinear.fine");
  fine.Record(33.0);  // (32, 40]
  fine.Record(500.0);
  EXPECT_DOUBLE_EQ(fine.Quantile(0.4), 40.0);
}

TEST_F(MetricsTest, HistogramExactSumAcrossThreads) {
  Histogram& h = GetHistogram("test.hist.mt");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  common::ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads * kPerThread, [&](int i) {
    h.Record(2.0);
    (void)i;
  });
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.Sum(), 2.0 * kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.Max(), 2.0);
}

TEST_F(MetricsTest, DisabledRecordsNothing) {
  Counter& c = GetCounter("test.counter.disabled");
  Gauge& g = GetGauge("test.gauge.disabled");
  Histogram& h = GetHistogram("test.hist.disabled");
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  c.Add(10);
  g.Set(1.0);
  g.SetMax(2.0);
  h.Record(5.0);
  {
    ScopedTimer timer(h);
  }
  SetEnabled(true);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_FALSE(g.WasSet());
  EXPECT_EQ(h.Count(), 0u);
}

TEST_F(MetricsTest, ScopedTimerRecordsMicroseconds) {
  Histogram& h = GetHistogram("test.hist.timer");
  {
    ScopedTimer timer(h);
  }
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_GE(h.Sum(), 0.0);
  // A no-op scope takes far less than a second.
  EXPECT_LT(h.Sum(), 1e6);
}

TEST_F(MetricsTest, ResetValuesKeepsHandlesValid) {
  Counter& c = GetCounter("test.counter.reset");
  c.Add(42);
  Registry::Default().ResetValues();
  EXPECT_EQ(c.Value(), 0u);
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);
  EXPECT_EQ(&c, &GetCounter("test.counter.reset"));
}

TEST_F(MetricsTest, ExportJsonContainsMetrics) {
  GetCounter("test.export.counter").Add(7);
  GetGauge("test.export.gauge").Set(1.5);
  Histogram& h = GetHistogram("test.export.hist");
  h.Record(10.0);
  h.Record(20.0);
  const std::string json = Registry::Default().ExportJson();
  EXPECT_NE(json.find("\"test.export.counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test.export.gauge\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.export.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 30"), std::string::npos);
  // Structurally a single JSON object.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST_F(MetricsTest, ExportJsonIsDeterministic) {
  GetCounter("test.det.b").Add(2);
  GetCounter("test.det.a").Add(1);
  const std::string first = Registry::Default().ExportJson();
  const std::string second = Registry::Default().ExportJson();
  EXPECT_EQ(first, second);
  // Sorted name order regardless of registration order.
  EXPECT_LT(first.find("test.det.a"), first.find("test.det.b"));
}

TEST_F(MetricsTest, ExportPrometheusSanitizesNames) {
  GetCounter("test.prom.counter").Add(3);
  GetGauge("test.prom.gauge").Set(4.0);
  GetHistogram("test.prom.hist").Record(2.0);
  const std::string text = Registry::Default().ExportPrometheus();
  EXPECT_NE(text.find("costream_test_prom_counter 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE costream_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("costream_test_prom_gauge 4"), std::string::npos);
  EXPECT_NE(text.find("costream_test_prom_hist_count 1"), std::string::npos);
  // No unsanitized dots survive in metric names.
  EXPECT_EQ(text.find("test.prom"), std::string::npos);
}

}  // namespace
}  // namespace costream::obs
