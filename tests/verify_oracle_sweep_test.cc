// Randomized property sweep of the fluid-engine runtime oracle: across
// hundreds of random query/cluster/placement triples — including
// geo-distributed clusters with full n*n link matrices — every fluid
// evaluation's per-node utilizations, per-link utilizations and processing
// latency must lie inside the proven intervals. Verification is forced on,
// so the in-engine oracle hook (which aborts the process on a violation)
// fires on every EvaluateFluid call; unthrottled runs are additionally
// cross-checked through the pure CheckFluidOracle entry point.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dsps/query_graph.h"
#include "nn/random.h"
#include "placement/enumeration.h"
#include "sim/fluid_engine.h"
#include "sim/geo.h"
#include "sim/hardware.h"
#include "verify/interval_analysis.h"
#include "verify/verify.h"
#include "workload/generator.h"

namespace costream::verify {
namespace {

struct SweepStats {
  int evaluated = 0;
  int direct_checks = 0;  // unthrottled runs probed through CheckFluidOracle
  int geo_cases = 0;      // clusters carrying a link matrix
  int throttled = 0;      // backpressured runs (oracle hook still fired)
};

FluidOracleInput OracleInputFrom(const sim::FluidReport& report,
                                 double duration_s) {
  FluidOracleInput input;
  input.node_cpu_utilization.reserve(report.node_stats.size());
  input.node_net_utilization.reserve(report.node_stats.size());
  for (const sim::NodeStats& stats : report.node_stats) {
    input.node_cpu_utilization.push_back(stats.cpu_utilization);
    input.node_net_utilization.push_back(stats.net_utilization);
  }
  input.link_utilization = report.link_utilization;
  input.processing_latency_ms =
      report.noiseless_metrics.processing_latency_ms;
  input.duration_s = duration_s;
  return input;
}

// One sweep leg: `triples` random (query, cluster, placement) draws with the
// given generator config and cluster factory.
template <typename ClusterFactory>
void RunSweep(const workload::GeneratorConfig& config, uint64_t seed,
              int triples, ClusterFactory make_cluster, SweepStats* stats) {
  const workload::QueryGenerator generator(config);
  nn::Rng rng(seed);
  const workload::QueryTemplate templates[] = {
      workload::QueryTemplate::kLinear, workload::QueryTemplate::kTwoWayJoin,
      workload::QueryTemplate::kThreeWayJoin,
      workload::QueryTemplate::kFilterChain};
  for (int i = 0; i < triples; ++i) {
    const dsps::QueryGraph query =
        generator.Generate(templates[i % 4], rng);
    const sim::Cluster cluster = make_cluster(generator, rng);
    const std::vector<int> bins = placement::CapabilityBins(cluster);
    const sim::Placement placement =
        placement::SamplePlacement(query, cluster, bins, rng);

    sim::FluidConfig fluid;
    fluid.noise_sigma = 0.0;
    // The oracle hook inside EvaluateFluid aborts the whole process on any
    // containment violation, so merely returning is the core assertion.
    const sim::FluidReport report =
        sim::EvaluateFluid(query, cluster, placement, fluid);
    ++stats->evaluated;
    if (cluster.has_link_matrix()) {
      ++stats->geo_cases;
      EXPECT_EQ(report.link_utilization.size(),
                cluster.nodes.size() * cluster.nodes.size());
    }
    if (report.source_scale == 1.0 && report.backpressure_rate == 0.0) {
      // Unthrottled: the reported stats *are* the nominal observables, so
      // the pure oracle entry point must agree they are contained.
      const std::string violation =
          CheckFluidOracle(query, cluster, placement, &fluid.background,
                           OracleInputFrom(report, fluid.duration_s));
      EXPECT_EQ(violation, "")
          << "triple " << i << " (seed " << seed << ")";
      ++stats->direct_checks;
    } else {
      ++stats->throttled;
    }
  }
}

TEST(VerifyOracleSweepTest, RandomTriplesStayInsideProvenIntervals) {
  // Belt and braces: the hook is already on in Debug/sanitizer builds; force
  // it so the sweep also bites in a plain Release build.
  SetVerificationEnabled(true);
  SweepStats stats;

  // Leg 1: the training-grid generator clusters (no link matrix).
  RunSweep(
      workload::GeneratorConfig{}, 1234, 120,
      [](const workload::QueryGenerator& g, nn::Rng& rng) {
        return g.GenerateCluster(rng);
      },
      &stats);

  // Leg 2: operators with degree-of-parallelism > 1.
  workload::GeneratorConfig parallel;
  parallel.parallelism_fraction = 0.5;
  RunSweep(
      parallel, 987, 40,
      [](const workload::QueryGenerator& g, nn::Rng& rng) {
        return g.GenerateCluster(rng);
      },
      &stats);

  // Leg 3: geo-distributed edge-fog-cloud clusters with WAN link matrices.
  RunSweep(
      workload::GeneratorConfig{}, 555, 60,
      [](const workload::QueryGenerator&, nn::Rng& rng) {
        sim::GeoClusterConfig geo;
        geo.regions = 1 + rng.Int(0, 2);
        geo.edge_per_region = 1 + rng.Int(0, 2);
        geo.fog_per_region = 1;
        geo.cloud_nodes = 1 + rng.Int(0, 1);
        geo.wan.wan_bandwidth_mbits = rng.Uniform(20.0, 200.0);
        geo.wan.wan_latency_ms = rng.Uniform(10.0, 120.0);
        return sim::MakeGeoCluster(geo);
      },
      &stats);

  EXPECT_GE(stats.evaluated, 200);
  EXPECT_GT(stats.direct_checks, 0);
  EXPECT_GT(stats.geo_cases, 0);
  // The sweep must include backpressured runs: the oracle's nominal-scale
  // containment has to hold even when the engine throttles the sources.
  EXPECT_GT(stats.throttled, 0);
}

TEST(VerifyOracleSweepTest, FabricatedViolationIsReported) {
  // CheckFluidOracle is pure: feeding it an observable outside the proven
  // interval must name the violation instead of silently passing.
  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(3);
  const dsps::QueryGraph query =
      generator.Generate(workload::QueryTemplate::kLinear, rng);
  const sim::Cluster cluster = generator.GenerateCluster(rng);
  const std::vector<int> bins = placement::CapabilityBins(cluster);
  const sim::Placement placement =
      placement::SamplePlacement(query, cluster, bins, rng);

  sim::FluidConfig fluid;
  fluid.noise_sigma = 0.0;
  const sim::FluidReport report =
      sim::EvaluateFluid(query, cluster, placement, fluid);
  FluidOracleInput input = OracleInputFrom(report, fluid.duration_s);
  ASSERT_FALSE(input.node_cpu_utilization.empty());
  input.node_cpu_utilization[0] += 1000.0;  // provably out of range
  const std::string violation =
      CheckFluidOracle(query, cluster, placement, &fluid.background, input);
  EXPECT_NE(violation, "");
}

TEST(VerifyOracleSweepTest, LatencyDominatesProvenSinkDelayLowerBound) {
  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(11);
  int checked = 0;
  for (int i = 0; i < 40; ++i) {
    const dsps::QueryGraph query = generator.Generate(
        i % 2 == 0 ? workload::QueryTemplate::kLinear
                   : workload::QueryTemplate::kTwoWayJoin,
        rng);
    const sim::Cluster cluster = generator.GenerateCluster(rng);
    const std::vector<int> bins = placement::CapabilityBins(cluster);
    const sim::Placement placement =
        placement::SamplePlacement(query, cluster, bins, rng);
    sim::FluidConfig fluid;
    fluid.noise_sigma = 0.0;
    const sim::FluidReport report =
        sim::EvaluateFluid(query, cluster, placement, fluid);
    if (report.noiseless_metrics.processing_latency_ms < 0) continue;
    const QueryIntervalSummary summary =
        AnalyzeQueryIntervals(query, IntervalOptions{}, nullptr);
    if (summary.diverged || summary.inconsistent_source) continue;
    EXPECT_GE(report.noiseless_metrics.processing_latency_ms,
              summary.min_sink_delay_ms * (1.0 - 1e-6))
        << "triple " << i;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace costream::verify
