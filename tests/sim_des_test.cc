#include "sim/des.h"

#include <cmath>

#include <gtest/gtest.h>

#include <tuple>

#include "dsps/query_builder.h"
#include "placement/enumeration.h"
#include "sim/cost_model.h"
#include "sim/tuple.h"
#include "workload/generator.h"

namespace costream::sim {
namespace {

using dsps::AggregateFunction;
using dsps::DataType;
using dsps::FilterFunction;
using dsps::GroupByType;
using dsps::QueryBuilder;
using dsps::QueryGraph;
using dsps::WindowPolicy;
using dsps::WindowSpec;
using dsps::WindowType;

HardwareNode StrongNode() { return HardwareNode{800.0, 32000.0, 10000.0, 1.0}; }

DesConfig QuickRun(double duration = 10.0, uint64_t seed = 1) {
  DesConfig config;
  config.duration_s = duration;
  config.seed = seed;
  return config;
}

TEST(TupleHashTest, UniformIsInUnitInterval) {
  for (uint64_t id = 1; id < 1000; ++id) {
    const double u = TupleUniform(id, 12345);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(TupleHashTest, KeysCoverDomain) {
  std::vector<int> counts(8, 0);
  for (uint64_t id = 1; id < 8000; ++id) {
    ++counts[TupleKey(id, 99, 8)];
  }
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(DesTest, SourceToSinkDeliversAllTuples) {
  QueryBuilder b;
  auto s = b.Source(500.0, {DataType::kInt, DataType::kInt});
  QueryGraph q = b.Sink(s);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  DesReport report = RunDes(q, cluster, placement, QuickRun());
  EXPECT_TRUE(report.metrics.success);
  EXPECT_FALSE(report.metrics.backpressure);
  EXPECT_NEAR(report.metrics.throughput, 500.0, 50.0);
  EXPECT_EQ(report.produced_tuples, report.ingested_tuples);
}

TEST(DesTest, FilterRealizesTargetSelectivity) {
  for (double sel : {0.1, 0.5, 0.9}) {
    QueryBuilder b;
    auto s = b.Source(1000.0, {DataType::kInt});
    auto f = b.Filter(s, FilterFunction::kLess, DataType::kInt, sel);
    QueryGraph q = b.Sink(f);
    Cluster cluster{{StrongNode()}};
    Placement placement(q.num_operators(), 0);
    DesReport report = RunDes(q, cluster, placement, QuickRun(20.0));
    EXPECT_NEAR(report.metrics.throughput, 1000.0 * sel, 1000.0 * sel * 0.15)
        << "selectivity " << sel;
  }
}

TEST(DesTest, JoinRealizesApproximateSelectivity) {
  const double sel = 0.01;
  QueryBuilder b;
  auto s1 = b.Source(200.0, {DataType::kInt});
  auto s2 = b.Source(200.0, {DataType::kInt});
  WindowSpec w;
  w.policy = WindowPolicy::kCountBased;
  w.type = WindowType::kSliding;
  w.size = 50;
  w.slide = 25;
  auto joined = b.WindowedJoin(s1, s2, w, DataType::kInt, sel);
  QueryGraph q = b.Sink(joined);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  DesReport report = RunDes(q, cluster, placement, QuickRun(20.0));
  // Expected match rate: sel * (r1*W2 + r2*W1) = 0.01 * (200*50 + 200*50).
  const double expected = sel * (200.0 * 50 + 200.0 * 50);
  EXPECT_GT(report.metrics.throughput, expected * 0.5);
  EXPECT_LT(report.metrics.throughput, expected * 1.5);
}

TEST(DesTest, TumblingCountWindowEmitsOncePerWindow) {
  QueryBuilder b;
  auto s = b.Source(1000.0, {DataType::kDouble});
  WindowSpec w;
  w.policy = WindowPolicy::kCountBased;
  w.type = WindowType::kTumbling;
  w.size = 100;
  auto agg = b.WindowedAggregate(s, w, AggregateFunction::kMean,
                                 GroupByType::kNone, DataType::kDouble, 1.0);
  QueryGraph q = b.Sink(agg);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  DesReport report = RunDes(q, cluster, placement, QuickRun(20.0));
  // 1000 tuples/s / 100 per window = ~10 emissions/s.
  EXPECT_NEAR(report.metrics.throughput, 10.0, 2.5);
}

TEST(DesTest, SlidingCountWindowEmitsPerSlide) {
  QueryBuilder b;
  auto s = b.Source(1000.0, {DataType::kDouble});
  WindowSpec w;
  w.policy = WindowPolicy::kCountBased;
  w.type = WindowType::kSliding;
  w.size = 100;
  w.slide = 50;
  auto agg = b.WindowedAggregate(s, w, AggregateFunction::kMax,
                                 GroupByType::kNone, DataType::kDouble, 1.0);
  QueryGraph q = b.Sink(agg);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  DesReport report = RunDes(q, cluster, placement, QuickRun(20.0));
  // Emission every 50 tuples: ~20/s.
  EXPECT_NEAR(report.metrics.throughput, 20.0, 5.0);
}

TEST(DesTest, TimeWindowEmitsPerSlideInterval) {
  QueryBuilder b;
  auto s = b.Source(500.0, {DataType::kDouble});
  WindowSpec w;
  w.policy = WindowPolicy::kTimeBased;
  w.type = WindowType::kSliding;
  w.size = 2.0;
  w.slide = 1.0;
  auto agg = b.WindowedAggregate(s, w, AggregateFunction::kMean,
                                 GroupByType::kNone, DataType::kDouble, 1.0);
  QueryGraph q = b.Sink(agg);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  DesReport report = RunDes(q, cluster, placement, QuickRun(30.0));
  EXPECT_NEAR(report.metrics.throughput, 1.0, 0.4);
}

TEST(DesTest, GroupedAggregateEmitsDistinctGroups) {
  QueryBuilder b;
  auto s = b.Source(1000.0, {DataType::kInt, DataType::kDouble});
  WindowSpec w;
  w.policy = WindowPolicy::kCountBased;
  w.type = WindowType::kTumbling;
  w.size = 100;
  // Selectivity 0.2 -> ~20 groups per 100-tuple window.
  auto agg = b.WindowedAggregate(s, w, AggregateFunction::kMean,
                                 GroupByType::kInt, DataType::kDouble, 0.2);
  QueryGraph q = b.Sink(agg);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  DesReport report = RunDes(q, cluster, placement, QuickRun(20.0));
  // ~10 windows/s * ~17-20 distinct groups.
  EXPECT_GT(report.metrics.throughput, 100.0);
  EXPECT_LT(report.metrics.throughput, 260.0);
}

TEST(DesTest, E2eLatencyAtLeastProcessingLatency) {
  QueryBuilder b;
  auto s = b.Source(500.0, {DataType::kInt});
  auto f = b.Filter(s, FilterFunction::kGreater, DataType::kInt, 0.8);
  QueryGraph q = b.Sink(f);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  DesReport report = RunDes(q, cluster, placement, QuickRun());
  EXPECT_GE(report.metrics.e2e_latency_ms,
            report.metrics.processing_latency_ms);
}

TEST(DesTest, NetworkHopAddsLatency) {
  QueryBuilder b1;
  auto s1 = b1.Source(200.0, {DataType::kInt});
  QueryGraph q = b1.Sink(s1);
  Cluster near{{HardwareNode{400, 8000, 1000, 1.0}, StrongNode()}};
  Cluster far{{HardwareNode{400, 8000, 1000, 80.0}, StrongNode()}};
  Placement split = {0, 1};
  const double lp_near =
      RunDes(q, near, split, QuickRun()).metrics.processing_latency_ms;
  const double lp_far =
      RunDes(q, far, split, QuickRun()).metrics.processing_latency_ms;
  EXPECT_GT(lp_far, lp_near + 60.0);
}

TEST(DesTest, OverloadedNodeBackpressures) {
  QueryBuilder b;
  auto s = b.Source(25600.0, std::vector<DataType>(10, DataType::kString));
  auto f = b.Filter(s, FilterFunction::kStartsWith, DataType::kString, 0.5);
  QueryGraph q = b.Sink(f);
  Cluster cluster{{HardwareNode{50.0, 4000.0, 10000.0, 1.0}}};
  Placement placement(q.num_operators(), 0);
  DesReport report = RunDes(q, cluster, placement, QuickRun(5.0));
  EXPECT_TRUE(report.metrics.backpressure);
  EXPECT_GT(report.backpressure_rate, 0.0);
  EXPECT_LT(report.ingested_tuples, report.produced_tuples);
}

TEST(DesTest, DeterministicForSameSeed) {
  QueryBuilder b;
  auto s = b.Source(300.0, {DataType::kInt});
  auto f = b.Filter(s, FilterFunction::kLess, DataType::kInt, 0.5);
  QueryGraph q = b.Sink(f);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  DesReport a = RunDes(q, cluster, placement, QuickRun(5.0, 77));
  DesReport c = RunDes(q, cluster, placement, QuickRun(5.0, 77));
  EXPECT_EQ(a.sink_tuples, c.sink_tuples);
  EXPECT_EQ(a.metrics.processing_latency_ms, c.metrics.processing_latency_ms);
}

TEST(DesTest, EventCapTruncatesRun) {
  QueryBuilder b;
  auto s = b.Source(10000.0, {DataType::kInt});
  QueryGraph q = b.Sink(s);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  DesConfig config = QuickRun(100.0);
  config.max_events = 10000;
  DesReport report = RunDes(q, cluster, placement, config);
  EXPECT_LE(report.events_processed, 10001u);
  EXPECT_LT(report.simulated_s, 100.0);
}

// Property sweep: random generated queries execute without invariant
// violations on the DES across templates and seeds.
class DesPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DesPropertyTest, RandomQueriesExecuteConsistently) {
  const auto [template_index, seed] = GetParam();
  workload::GeneratorConfig gc;
  // Cap the rates so tuple-level simulation stays fast.
  gc.workload.event_rate_linear = {100, 200, 400, 800};
  gc.workload.event_rate_two_way = {50, 100, 250};
  gc.workload.event_rate_three_way = {20, 50, 100};
  workload::QueryGenerator generator(gc);
  nn::Rng rng(5000 + seed);
  const auto kind = static_cast<workload::QueryTemplate>(template_index);
  const dsps::QueryGraph q = generator.Generate(kind, rng);
  const Cluster cluster = generator.GenerateCluster(rng);
  const auto bins = placement::CapabilityBins(cluster);
  const Placement placement =
      placement::SamplePlacement(q, cluster, bins, rng);

  DesConfig config;
  config.duration_s = 6.0;
  config.seed = seed;
  const DesReport report = RunDes(q, cluster, placement, config);
  EXPECT_GE(report.metrics.throughput, 0.0);
  EXPECT_LE(report.ingested_tuples, report.produced_tuples);
  EXPECT_GE(report.metrics.e2e_latency_ms,
            report.metrics.processing_latency_ms - 1e-6);
  EXPECT_TRUE(std::isfinite(report.metrics.processing_latency_ms));
  for (double mem : report.node_peak_memory_mb) EXPECT_GE(mem, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    TemplatesAndSeeds, DesPropertyTest,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 4)));

TEST(DesTest, PeakMemoryTracked) {
  QueryBuilder b;
  auto s1 = b.Source(500.0, std::vector<DataType>(8, DataType::kString));
  auto s2 = b.Source(500.0, std::vector<DataType>(8, DataType::kString));
  WindowSpec w;
  w.policy = WindowPolicy::kTimeBased;
  w.type = WindowType::kSliding;
  w.size = 4.0;
  w.slide = 2.0;
  auto joined = b.WindowedJoin(s1, s2, w, DataType::kInt, 1e-3);
  QueryGraph q = b.Sink(joined);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  DesReport report = RunDes(q, cluster, placement, QuickRun());
  ASSERT_EQ(report.node_peak_memory_mb.size(), 1u);
  EXPECT_GT(report.node_peak_memory_mb[0], kWorkerBaseMemoryMb);
}

}  // namespace
}  // namespace costream::sim
