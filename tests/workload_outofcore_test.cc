// Out-of-core corpus pipeline: block-compressed v2 images round-trip
// exactly, the streaming TraceWriter emits byte-identical files to the bulk
// savers, the mmap TraceReader serves random access from a bounded block
// cache, and streaming training through StreamingCorpus produces
// bitwise-identical weights to the in-memory path at any thread count and
// block size.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "workload/corpus.h"
#include "workload/streaming.h"
#include "workload/trace_io.h"
#include "workload/trace_reader.h"

namespace costream::workload {
namespace {

std::vector<TraceRecord> SmallCorpus(int n = 24, uint64_t seed = 11) {
  CorpusConfig config;
  config.num_queries = n;
  config.seed = seed;
  config.duration_s = 30.0;
  return BuildCorpus(config);
}

void ExpectRecordsBitwiseEqual(const TraceRecord& a, const TraceRecord& b) {
  EXPECT_EQ(a.template_kind, b.template_kind);
  EXPECT_EQ(a.num_filters, b.num_filters);
  ASSERT_EQ(a.query.num_operators(), b.query.num_operators());
  for (int i = 0; i < a.query.num_operators(); ++i) {
    EXPECT_EQ(a.query.op(i).type, b.query.op(i).type);
    EXPECT_EQ(a.query.op(i).input_event_rate, b.query.op(i).input_event_rate);
    EXPECT_EQ(a.query.op(i).selectivity, b.query.op(i).selectivity);
    EXPECT_EQ(a.query.op(i).parallelism, b.query.op(i).parallelism);
  }
  EXPECT_EQ(a.query.edges(), b.query.edges());
  ASSERT_EQ(a.cluster.num_nodes(), b.cluster.num_nodes());
  for (int i = 0; i < a.cluster.num_nodes(); ++i) {
    EXPECT_EQ(a.cluster.nodes[i].cpu_pct, b.cluster.nodes[i].cpu_pct);
    EXPECT_EQ(a.cluster.nodes[i].ram_mb, b.cluster.nodes[i].ram_mb);
  }
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_EQ(a.metrics.throughput, b.metrics.throughput);
  EXPECT_EQ(a.metrics.e2e_latency_ms, b.metrics.e2e_latency_ms);
  EXPECT_EQ(a.metrics.backpressure, b.metrics.backpressure);
  EXPECT_EQ(a.metrics.success, b.metrics.success);
}

std::string FileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return std::move(os).str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

TEST(OutOfCoreTest, CompressedRoundTripPreservesEverything) {
  const auto records = SmallCorpus();
  std::ostringstream os;
  SaveTracesV2Compressed(os, records, /*block_bytes=*/4096);
  const std::string image = std::move(os).str();
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(LoadTracesV2(image.data(), image.size(), &loaded));
  ASSERT_EQ(loaded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectRecordsBitwiseEqual(records[i], loaded[i]);
  }
}

TEST(OutOfCoreTest, CompressedImageIsSmallerAndMultiBlock) {
  const auto records = SmallCorpus(40, 3);
  std::ostringstream plain_os, comp_os;
  SaveTracesV2(plain_os, records);
  SaveTracesV2Compressed(comp_os, records, 4096);
  const std::string plain = std::move(plain_os).str();
  const std::string comp = std::move(comp_os).str();
  EXPECT_LT(comp.size(), plain.size());

  const std::string path = ::testing::TempDir() + "/ooc_multiblock.bin";
  WriteFileBytes(path, comp);
  TraceFileInfo info;
  ASSERT_TRUE(InspectTraceFile(path, &info));
  EXPECT_EQ(info.version, 2);
  EXPECT_TRUE(info.compressed);
  EXPECT_TRUE(info.index_ok);
  EXPECT_GT(info.blocks.size(), 2u);
  EXPECT_EQ(info.record_count, records.size());
  uint64_t total = 0;
  for (const TraceBlockInfo& b : info.blocks) total += b.record_count;
  EXPECT_EQ(total, records.size());
  std::remove(path.c_str());
}

// Satellite: the streaming TraceWriter must emit exactly the bytes the bulk
// savers emit — uncompressed v2 stays byte-compatible with every existing
// file, and the compressed path has one canonical encoding.
TEST(OutOfCoreTest, TraceWriterMatchesBulkSaversByteForByte) {
  const auto records = SmallCorpus(30, 21);
  std::ostringstream plain_os, comp_os;
  SaveTracesV2(plain_os, records);
  SaveTracesV2Compressed(comp_os, records, 4096);

  const std::string plain_path = ::testing::TempDir() + "/ooc_writer_plain.bin";
  TraceWriter plain_writer;
  TraceWriter::Options plain_opts;
  plain_opts.format = TraceFormat::kBinaryV2;
  ASSERT_TRUE(plain_writer.Open(plain_path, plain_opts));
  for (const TraceRecord& r : records) ASSERT_TRUE(plain_writer.Append(r));
  ASSERT_TRUE(plain_writer.Finish());
  EXPECT_EQ(plain_writer.records_written(), records.size());
  EXPECT_EQ(FileBytes(plain_path), std::move(plain_os).str());
  std::remove(plain_path.c_str());

  const std::string comp_path = ::testing::TempDir() + "/ooc_writer_comp.bin";
  TraceWriter comp_writer;
  TraceWriter::Options comp_opts;
  comp_opts.format = TraceFormat::kBinaryV2Compressed;
  comp_opts.block_bytes = 4096;
  ASSERT_TRUE(comp_writer.Open(comp_path, comp_opts));
  for (const TraceRecord& r : records) ASSERT_TRUE(comp_writer.Append(r));
  ASSERT_TRUE(comp_writer.Finish());
  EXPECT_EQ(FileBytes(comp_path), std::move(comp_os).str());
  std::remove(comp_path.c_str());
}

TEST(OutOfCoreTest, TraceReaderRandomAccessMatchesFullLoad) {
  const auto records = SmallCorpus(32, 41);
  struct Case {
    const char* name;
    TraceFormat format;
    size_t block_bytes;
  };
  const Case cases[] = {
      {"v1", TraceFormat::kTextV1, 0},
      {"v2", TraceFormat::kBinaryV2, 0},
      {"v2c_small", TraceFormat::kBinaryV2Compressed, 2048},
      {"v2c_large", TraceFormat::kBinaryV2Compressed, 1 << 16},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string path =
        ::testing::TempDir() + "/ooc_reader_" + c.name + ".bin";
    TraceWriter writer;
    TraceWriter::Options opts;
    opts.format = c.format;
    if (c.block_bytes != 0) opts.block_bytes = c.block_bytes;
    ASSERT_TRUE(writer.Open(path, opts));
    for (const TraceRecord& r : records) ASSERT_TRUE(writer.Append(r));
    ASSERT_TRUE(writer.Finish());

    auto reader = TraceReader::Open(path);
    ASSERT_NE(reader, nullptr);
    ASSERT_EQ(reader->num_records(), static_cast<int64_t>(records.size()));
    // Back to front, so compressed blocks are touched out of write order.
    for (int64_t i = reader->num_records() - 1; i >= 0; --i) {
      TraceRecord got;
      ASSERT_TRUE(reader->Get(i, &got));
      ExpectRecordsBitwiseEqual(records[static_cast<size_t>(i)], got);
    }
    std::remove(path.c_str());
  }
}

TEST(OutOfCoreTest, TraceReaderCacheStaysBounded) {
  const auto records = SmallCorpus(40, 9);
  const std::string path = ::testing::TempDir() + "/ooc_cache.bin";
  std::ostringstream os;
  SaveTracesV2Compressed(os, records, 2048);
  WriteFileBytes(path, std::move(os).str());

  TraceReaderOptions opts;
  opts.max_cached_blocks = 2;
  auto reader = TraceReader::Open(path, opts);
  ASSERT_NE(reader, nullptr);
  ASSERT_GT(reader->info().blocks.size(), 4u)
      << "corpus too small to exercise eviction";
  for (int64_t i = 0; i < reader->num_records(); ++i) {
    TraceRecord got;
    ASSERT_TRUE(reader->Get(i, &got));
    EXPECT_LE(reader->cached_blocks(), 2);
  }
  EXPECT_GE(reader->block_misses(), reader->info().blocks.size());
  // Sequential access within a block hits the cache.
  EXPECT_GT(reader->block_hits(), 0u);
  EXPECT_GT(reader->peak_cached_bytes(), 0u);
  // The byte proxy stays within two maximal uncompressed blocks.
  uint64_t max_block = 0;
  for (const TraceBlockInfo& b : reader->info().blocks) {
    max_block = std::max(max_block, b.uncompressed_bytes);
  }
  EXPECT_LE(reader->peak_cached_bytes(), 2 * max_block);
  std::remove(path.c_str());
}

TEST(OutOfCoreTest, TraceReaderFailsClosedOnTamperedIndex) {
  const auto records = SmallCorpus(20, 55);
  std::ostringstream os;
  SaveTracesV2Compressed(os, records, 2048);
  const std::string image = std::move(os).str();
  const std::string path = ::testing::TempDir() + "/ooc_tampered.bin";

  // Truncated trailer: random access refuses the file outright.
  WriteFileBytes(path, image.substr(0, image.size() - 16));
  EXPECT_EQ(TraceReader::Open(path), nullptr);

  // Flipped byte inside the index region: checksum mismatch, refused.
  std::string flipped = image;
  flipped[flipped.size() - 40] =
      static_cast<char>(flipped[flipped.size() - 40] ^ 0x5a);
  WriteFileBytes(path, flipped);
  EXPECT_EQ(TraceReader::Open(path), nullptr);
  std::remove(path.c_str());
}

// Split arithmetic must hold far past int32 — a 5-billion-record corpus
// splits into the exact 64-bit boundaries without materializing anything.
TEST(OutOfCoreTest, SplitBoundariesHandleHugeCorpora) {
  const int64_t n = INT64_C(5'000'000'000);
  const SplitBounds bounds = SplitBoundaries(n, 0.8, 0.1);
  EXPECT_EQ(bounds.train_end, INT64_C(4'000'000'000));
  EXPECT_EQ(bounds.val_end, INT64_C(4'500'000'000));
  // And the in-memory split still agrees with the boundary arithmetic.
  const SplitIndices split = SplitCorpus(1000, 0.8, 0.1, 4);
  const SplitBounds small = SplitBoundaries(1000, 0.8, 0.1);
  EXPECT_EQ(static_cast<int64_t>(split.train.size()), small.train_end);
  EXPECT_EQ(static_cast<int64_t>(split.val.size()),
            small.val_end - small.train_end);
  EXPECT_EQ(split.train.size() + split.val.size() + split.test.size(), 1000u);
}

void ExpectParamsIdentical(const std::vector<nn::Matrix>& a,
                           const std::vector<nn::Matrix>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].SameShape(b[i]));
    for (int j = 0; j < a[i].size(); ++j) {
      ASSERT_EQ(a[i].data()[j], b[i].data()[j])
          << "param " << i << " entry " << j;
    }
  }
}

// The tentpole contract: training from a block-compressed on-disk corpus
// through StreamingCorpus produces bitwise-identical weights to the
// in-memory TrainModel path — at 1 and N threads, across block sizes, for
// both a regression metric (whose failed-execution filter the streaming
// scan must reproduce) and a classification metric (whose class weights
// depend on the streamed positive count).
TEST(OutOfCoreTest, StreamingTrainingMatchesInMemoryBitwise) {
  const auto records = SmallCorpus(48, 77);
  const SplitIndices split =
      SplitCorpus(static_cast<int64_t>(records.size()), 0.7, 0.15, 13);

  const std::string path = ::testing::TempDir() + "/ooc_streaming.bin";
  for (const sim::Metric metric :
       {sim::Metric::kThroughput, sim::Metric::kBackpressure}) {
    // In-memory reference.
    const auto train_samples =
        ToTrainSamples(Gather(records, split.train), metric);
    const auto val_samples = ToTrainSamples(Gather(records, split.val), metric);
    ASSERT_GE(train_samples.size(), 16u);

    core::CostModelConfig model_config;
    model_config.hidden_dim = 16;
    if (!sim::IsRegressionMetric(metric)) {
      model_config.head = core::HeadKind::kClassification;
    }
    core::TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 8;
    tc.seed = 5;
    tc.num_threads = 1;
    core::CostModel reference(model_config);
    core::TrainResult ref_result =
        core::TrainModel(reference, train_samples, val_samples, tc);

    for (const size_t block_bytes : {size_t{2048}, size_t{1} << 16}) {
      std::ostringstream os;
      SaveTracesV2Compressed(os, records, block_bytes);
      WriteFileBytes(path, std::move(os).str());
      for (const int threads : {1, 4}) {
        SCOPED_TRACE(testing::Message() << "metric " << static_cast<int>(metric)
                                        << " block " << block_bytes
                                        << " threads " << threads);
        auto reader = TraceReader::Open(path);
        ASSERT_NE(reader, nullptr);
        StreamingCorpusOptions sc_opts;
        sc_opts.num_threads = threads;
        StreamingCorpus train_source(reader.get(), split.train, metric,
                                     sc_opts);
        StreamingCorpus val_source(reader.get(), split.val, metric, sc_opts);
        ASSERT_EQ(train_source.size(),
                  static_cast<int64_t>(train_samples.size()));
        ASSERT_EQ(val_source.size(), static_cast<int64_t>(val_samples.size()));

        core::CostModel streamed(model_config);
        core::TrainConfig stc = tc;
        stc.num_threads = threads;
        core::TrainResult result = core::TrainModelStreaming(
            streamed, train_source, val_source, stc);
        ASSERT_EQ(result.train_losses, ref_result.train_losses);
        ASSERT_EQ(result.val_losses, ref_result.val_losses);
        ExpectParamsIdentical(reference.SnapshotParameters(),
                              streamed.SnapshotParameters());
      }
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace costream::workload
