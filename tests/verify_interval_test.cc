// Interval dataflow analysis (DF rule family): per-rule failing and clean
// fixtures for DF001-DF005, the soundness properties of the interval
// arithmetic, uncertainty containment (a point analysis of any perturbed
// source rate lies inside the uncertain intervals), and the VerifyOptions
// slack factors that replaced the hard-coded PL005-PL007 constants.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string_view>
#include <vector>

#include "dsps/query_builder.h"
#include "dsps/query_graph.h"
#include "nn/random.h"
#include "sim/hardware.h"
#include "verify/interval_analysis.h"
#include "verify/placement_rules.h"

namespace costream::verify {
namespace {

using dsps::DataType;
using dsps::OperatorDescriptor;
using dsps::OperatorType;
using dsps::QueryBuilder;
using dsps::QueryGraph;
using dsps::WindowPolicy;
using dsps::WindowType;

OperatorDescriptor MakeOp(OperatorType type) {
  OperatorDescriptor op;
  op.type = type;
  op.tuple_width_in = 2.0;
  op.tuple_width_out = 2.0;
  op.selectivity = 0.5;
  if (type == OperatorType::kSource) {
    op.input_event_rate = 1000.0;
    op.tuple_data_types = {DataType::kInt, DataType::kInt};
  }
  return op;
}

QueryGraph LinearQuery() {
  QueryBuilder builder;
  const auto source =
      builder.Source(1000.0, {DataType::kInt, DataType::kInt});
  const auto filtered = builder.Filter(source, dsps::FilterFunction::kLess,
                                       DataType::kInt, 0.5);
  return builder.Sink(filtered);
}

QueryGraph WindowedQuery(WindowPolicy policy, double size, double slide) {
  QueryGraph query;
  query.AddOperator(MakeOp(OperatorType::kSource));
  OperatorDescriptor window = MakeOp(OperatorType::kWindow);
  window.window = {WindowType::kTumbling, policy, size, slide};
  query.AddOperator(window);
  query.AddOperator(MakeOp(OperatorType::kSink));
  query.AddEdge(0, 1);
  query.AddEdge(1, 2);
  return query;
}

sim::Cluster TwoNodeCluster() {
  sim::Cluster cluster;
  cluster.nodes.push_back({400.0, 16000.0, 1000.0, 5.0});
  cluster.nodes.push_back({100.0, 2000.0, 100.0, 25.0});
  return cluster;
}

bool SawRule(const VerifyReport& report, std::string_view rule) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == rule) return true;
  }
  return false;
}

int CountDfDiagnostics(const VerifyReport& report) {
  int n = 0;
  for (const Diagnostic& d : report.diagnostics()) {
    if (RuleFamily(d.rule) == "interval-dataflow") ++n;
  }
  return n;
}

// ---- DF001: divergence on cyclic graphs ------------------------------------

TEST(IntervalAnalysisTest, CyclicGraphWidensToDF001) {
  QueryGraph query;
  query.AddOperator(MakeOp(OperatorType::kSource));
  query.AddOperator(MakeOp(OperatorType::kFilter));
  query.AddOperator(MakeOp(OperatorType::kFilter));
  query.AddOperator(MakeOp(OperatorType::kSink));
  query.AddEdge(0, 1);
  query.AddEdge(1, 2);
  query.AddEdge(2, 1);  // cycle: 1 -> 2 -> 1
  query.AddEdge(2, 3);
  VerifyReport report;
  const QueryIntervalSummary summary =
      AnalyzeQueryIntervals(query, IntervalOptions{}, &report);
  EXPECT_TRUE(summary.diverged);
  EXPECT_TRUE(SawRule(report, kRuleIntervalDiverged)) << report.DebugString();
}

TEST(IntervalAnalysisTest, AcyclicGraphDoesNotDiverge) {
  VerifyReport report;
  const QueryIntervalSummary summary =
      AnalyzeQueryIntervals(LinearQuery(), IntervalOptions{}, &report);
  EXPECT_FALSE(summary.diverged);
  EXPECT_FALSE(SawRule(report, kRuleIntervalDiverged)) << report.DebugString();
}

// ---- DF004: inconsistent source specs --------------------------------------

TEST(IntervalAnalysisTest, NanSourceRateIsDF004) {
  QueryGraph query;
  OperatorDescriptor source = MakeOp(OperatorType::kSource);
  source.input_event_rate = std::numeric_limits<double>::quiet_NaN();
  query.AddOperator(source);
  query.AddOperator(MakeOp(OperatorType::kSink));
  query.AddEdge(0, 1);
  VerifyReport report;
  const QueryIntervalSummary summary =
      AnalyzeQueryIntervals(query, IntervalOptions{}, &report);
  EXPECT_TRUE(summary.inconsistent_source);
  EXPECT_TRUE(SawRule(report, kRuleIntervalSourceSpec))
      << report.DebugString();
}

TEST(IntervalAnalysisTest, FiniteSourceRateIsNotDF004) {
  VerifyReport report;
  const QueryIntervalSummary summary =
      AnalyzeQueryIntervals(LinearQuery(), IntervalOptions{}, &report);
  EXPECT_FALSE(summary.inconsistent_source);
  EXPECT_FALSE(SawRule(report, kRuleIntervalSourceSpec))
      << report.DebugString();
}

// ---- DF002: proven-infeasible node -----------------------------------------

TEST(IntervalAnalysisTest, ProvenCrashWindowIsDF002) {
  // 1e7 tuples x 96 bytes x 20 state factor ~ 19 GB of proven window state
  // against a 2 GB node: memory_mb.lo exceeds the crash threshold.
  const QueryGraph query = WindowedQuery(WindowPolicy::kCountBased, 1e7, 1e7);
  VerifyReport report;
  VerifyPlacedQuery(query, TwoNodeCluster(), {0, 1, 0}, &report);
  EXPECT_TRUE(SawRule(report, kRuleIntervalNodeInfeasible))
      << report.DebugString();
  // Proven crash is a warning, never an error: these placements remain
  // admissible (crash-labelled) training examples.
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == kRuleIntervalNodeInfeasible) {
      EXPECT_EQ(d.severity, Severity::kWarning);
    }
  }
  const QueryIntervalSummary intervals =
      AnalyzeQueryIntervals(query, IntervalOptions{}, nullptr);
  const PlacementIntervalSummary placed = AnalyzePlacementIntervals(
      query, TwoNodeCluster(), {0, 1, 0}, intervals, nullptr, nullptr);
  EXPECT_TRUE(placed.proven_crash);
  ASSERT_EQ(placed.nodes.size(), 2u);
  EXPECT_TRUE(placed.nodes[1].proven_crash);
  EXPECT_FALSE(placed.nodes[0].proven_crash);
}

TEST(IntervalAnalysisTest, SmallWindowIsNotDF002) {
  const QueryGraph query = WindowedQuery(WindowPolicy::kTimeBased, 1.0, 1.0);
  VerifyReport report;
  VerifyPlacedQuery(query, TwoNodeCluster(), {0, 1, 0}, &report);
  EXPECT_FALSE(SawRule(report, kRuleIntervalNodeInfeasible))
      << report.DebugString();
}

// ---- DF003: proven-choked link ---------------------------------------------

TEST(IntervalAnalysisTest, ChokedWanLinkIsDF003) {
  sim::Cluster cluster = TwoNodeCluster();
  cluster.link_bandwidth_mbits = {0.0, 0.001, 0.001, 0.0};
  cluster.link_latency_ms = {0.0, 40.0, 40.0, 0.0};
  VerifyReport report;
  VerifyPlacedQuery(LinearQuery(), cluster, {0, 1, 1}, &report);
  EXPECT_TRUE(SawRule(report, kRuleIntervalLinkChoked))
      << report.DebugString();
}

TEST(IntervalAnalysisTest, WideLinkIsNotDF003) {
  sim::Cluster cluster = TwoNodeCluster();
  cluster.link_bandwidth_mbits = {0.0, 1000.0, 1000.0, 0.0};
  cluster.link_latency_ms = {0.0, 1.0, 1.0, 0.0};
  VerifyReport report;
  VerifyPlacedQuery(LinearQuery(), cluster, {0, 1, 1}, &report);
  EXPECT_FALSE(SawRule(report, kRuleIntervalLinkChoked))
      << report.DebugString();
}

// ---- DF005: window delay bound ---------------------------------------------

TEST(IntervalAnalysisTest, WindowLongerThanRunIsDF005) {
  const QueryGraph query =
      WindowedQuery(WindowPolicy::kTimeBased, 600.0, 600.0);
  VerifyReport report;
  VerifyPlacedQuery(query, TwoNodeCluster(), {0, 0, 0}, &report);
  EXPECT_TRUE(SawRule(report, kRuleIntervalDelayBound))
      << report.DebugString();
  const QueryIntervalSummary summary =
      AnalyzeQueryIntervals(query, IntervalOptions{}, nullptr);
  EXPECT_GT(summary.min_sink_delay_ms, 240.0 * 1000.0);
}

TEST(IntervalAnalysisTest, ShortWindowIsNotDF005) {
  const QueryGraph query = WindowedQuery(WindowPolicy::kTimeBased, 1.0, 1.0);
  VerifyReport report;
  VerifyPlacedQuery(query, TwoNodeCluster(), {0, 0, 0}, &report);
  EXPECT_FALSE(SawRule(report, kRuleIntervalDelayBound))
      << report.DebugString();
}

TEST(IntervalAnalysisTest, DelayBoundRespectsConfiguredDuration) {
  // The same 600s window is fine when the configured run is long enough.
  const QueryGraph query =
      WindowedQuery(WindowPolicy::kTimeBased, 600.0, 600.0);
  IntervalOptions options;
  options.duration_s = 4000.0;
  VerifyReport report;
  AnalyzeQueryIntervals(query, options, &report);
  EXPECT_FALSE(SawRule(report, kRuleIntervalDelayBound))
      << report.DebugString();
}

// ---- Fully clean fixture ---------------------------------------------------

TEST(IntervalAnalysisTest, WellProvisionedQueryDrawsNoDfDiagnostics) {
  const QueryGraph query = WindowedQuery(WindowPolicy::kTimeBased, 1.0, 1.0);
  VerifyReport report;
  VerifyPlacedQuery(query, TwoNodeCluster(), {0, 0, 0}, &report);
  EXPECT_EQ(CountDfDiagnostics(report), 0) << report.DebugString();
}

// ---- Interval arithmetic soundness -----------------------------------------

TEST(IntervalArithmeticTest, AddMulDivJoinAreSoundOnSampledPoints) {
  nn::Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const double a_lo = rng.Uniform(0.0, 100.0);
    const double a_hi = a_lo + rng.Uniform(0.0, 100.0);
    const double b_lo = rng.Uniform(0.1, 100.0);
    const double b_hi = b_lo + rng.Uniform(0.0, 100.0);
    const Interval a = Interval::Of(a_lo, a_hi);
    const Interval b = Interval::Of(b_lo, b_hi);
    const double x = rng.Uniform(a_lo, a_hi);
    const double y = rng.Uniform(b_lo, b_hi);
    EXPECT_TRUE(IntervalAdd(a, b).Contains(x + y, 1e-12));
    EXPECT_TRUE(IntervalMul(a, b).Contains(x * y, 1e-12));
    EXPECT_TRUE(IntervalDiv(a, b).Contains(x / y, 1e-12));
    EXPECT_TRUE(IntervalJoin(a, b).Contains(x, 1e-12));
    EXPECT_TRUE(IntervalJoin(a, b).Contains(y, 1e-12));
    EXPECT_TRUE(IntervalMax(a, 50.0).Contains(std::fmax(x, 50.0), 1e-12));
  }
}

TEST(IntervalArithmeticTest, MulTreatsZeroTimesInfinityAsZero) {
  const Interval zero = Interval::Point(0.0);
  const Interval unbounded =
      Interval::Of(0.0, std::numeric_limits<double>::infinity());
  const Interval product = IntervalMul(zero, unbounded);
  EXPECT_EQ(product.lo, 0.0);
  EXPECT_EQ(product.hi, 0.0);
}

TEST(IntervalArithmeticTest, ContainsAllowsRelativeSlackOnly) {
  const Interval iv = Interval::Of(100.0, 200.0);
  EXPECT_TRUE(iv.Contains(100.0, 1e-6));
  EXPECT_TRUE(iv.Contains(200.0, 1e-6));
  EXPECT_TRUE(iv.Contains(200.0 * (1.0 + 1e-7), 1e-6));
  EXPECT_FALSE(iv.Contains(201.0, 1e-6));
  EXPECT_FALSE(iv.Contains(99.0, 1e-6));
}

// ---- Zero-uncertainty analysis yields point intervals ----------------------

TEST(IntervalAnalysisTest, ExactAnalysisOfDagIsPointwise) {
  const QueryIntervalSummary summary =
      AnalyzeQueryIntervals(LinearQuery(), IntervalOptions{}, nullptr);
  ASSERT_FALSE(summary.diverged);
  for (const OpIntervals& op : summary.ops) {
    EXPECT_TRUE(op.in_rate.is_point());
    EXPECT_TRUE(op.out_rate.is_point());
    EXPECT_TRUE(op.cpu_load_us.is_point());
  }
}

// ---- Uncertainty containment -----------------------------------------------

// The uncertain analysis at rate_uncertainty u must contain the exact
// analysis of every query whose source rates are perturbed within +-u.
TEST(IntervalAnalysisTest, UncertainIntervalsContainPerturbedPointRuns) {
  nn::Rng rng(7);
  IntervalOptions uncertain;
  uncertain.rate_uncertainty = 0.1;
  for (int trial = 0; trial < 50; ++trial) {
    QueryGraph query = WindowedQuery(WindowPolicy::kCountBased, 100.0, 100.0);
    const QueryIntervalSummary wide =
        AnalyzeQueryIntervals(query, uncertain, nullptr);
    ASSERT_FALSE(wide.diverged);

    QueryGraph perturbed = query;
    const double factor = rng.Uniform(0.9, 1.1);
    for (int id = 0; id < perturbed.num_operators(); ++id) {
      if (perturbed.op(id).type == OperatorType::kSource) {
        perturbed.mutable_op(id).input_event_rate *= factor;
      }
    }
    const QueryIntervalSummary exact =
        AnalyzeQueryIntervals(perturbed, IntervalOptions{}, nullptr);
    ASSERT_EQ(exact.ops.size(), wide.ops.size());
    for (size_t i = 0; i < exact.ops.size(); ++i) {
      EXPECT_TRUE(wide.ops[i].in_rate.Contains(exact.ops[i].in_rate.lo, 1e-9))
          << "op " << i << " in_rate " << exact.ops[i].in_rate.lo << " not in ["
          << wide.ops[i].in_rate.lo << ", " << wide.ops[i].in_rate.hi << "]";
      EXPECT_TRUE(
          wide.ops[i].out_rate.Contains(exact.ops[i].out_rate.lo, 1e-9));
      EXPECT_TRUE(
          wide.ops[i].cpu_load_us.Contains(exact.ops[i].cpu_load_us.lo, 1e-9));
      EXPECT_TRUE(
          wide.ops[i].state_mb.Contains(exact.ops[i].state_mb.lo, 1e-9));
    }
  }
}

// ---- VerifyOptions slack factors (satellite a) -----------------------------

TEST(VerifyOptionsTest, DefaultsMatchTheSeedConstants) {
  const VerifyOptions options;
  EXPECT_EQ(options.ram_slack, 2.0);
  EXPECT_EQ(options.cpu_oversubscription, 16.0);
  EXPECT_EQ(options.net_slack, 2.0);
  EXPECT_TRUE(options.run_intervals);
}

TEST(VerifyOptionsTest, TighterRamSlackFlagsWhatDefaultsTolerate) {
  // ~2k tuples x 96 bytes x 20 ~ 3.8 MB of state; a 4 MB node is within the
  // default 2x slack but outside a 0.0001x slack.
  const QueryGraph query =
      WindowedQuery(WindowPolicy::kCountBased, 2000.0, 2000.0);
  sim::Cluster cluster;
  cluster.nodes.push_back({400.0, 16000.0, 1000.0, 5.0});
  cluster.nodes.push_back({100.0, 4.0, 100.0, 25.0});

  VerifyReport lax;
  VerifyPlacement(query, cluster, {0, 1, 0}, &lax);
  EXPECT_FALSE(SawRule(lax, kRulePlacementRamFeasibility))
      << lax.DebugString();

  VerifyOptions tight;
  tight.ram_slack = 0.0001;
  VerifyReport report;
  VerifyPlacement(query, cluster, {0, 1, 0}, tight, &report);
  EXPECT_TRUE(SawRule(report, kRulePlacementRamFeasibility))
      << report.DebugString();
}

TEST(VerifyOptionsTest, TighterNetSlackFlagsWhatDefaultsTolerate) {
  const QueryGraph query = LinearQuery();
  VerifyReport lax;
  VerifyPlacement(query, TwoNodeCluster(), {0, 1, 1}, &lax);
  EXPECT_FALSE(SawRule(lax, kRulePlacementNetFeasibility))
      << lax.DebugString();

  VerifyOptions tight;
  tight.net_slack = 1e-6;
  VerifyReport report;
  VerifyPlacement(query, TwoNodeCluster(), {0, 1, 1}, tight, &report);
  EXPECT_TRUE(SawRule(report, kRulePlacementNetFeasibility))
      << report.DebugString();
}

TEST(VerifyOptionsTest, TighterCpuOversubscriptionFlagsParallelOperators) {
  QueryGraph query = LinearQuery();
  for (int id = 0; id < query.num_operators(); ++id) {
    query.mutable_op(id).parallelism = 2;
  }
  VerifyReport lax;
  VerifyPlacement(query, TwoNodeCluster(), {1, 1, 1}, &lax);
  EXPECT_FALSE(SawRule(lax, kRulePlacementCpuFeasibility))
      << lax.DebugString();

  VerifyOptions tight;
  tight.cpu_oversubscription = 0.001;
  VerifyReport report;
  VerifyPlacement(query, TwoNodeCluster(), {1, 1, 1}, tight, &report);
  EXPECT_TRUE(SawRule(report, kRulePlacementCpuFeasibility))
      << report.DebugString();
}

TEST(VerifyOptionsTest, RunIntervalsFalseSuppressesDfRules) {
  const QueryGraph query = WindowedQuery(WindowPolicy::kCountBased, 1e7, 1e7);
  VerifyOptions options;
  options.run_intervals = false;
  VerifyReport report;
  VerifyPlacedQuery(query, TwoNodeCluster(), {0, 1, 0}, options, &report);
  EXPECT_EQ(CountDfDiagnostics(report), 0) << report.DebugString();
}

}  // namespace
}  // namespace costream::verify
