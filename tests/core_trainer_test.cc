#include "core/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dsps/query_builder.h"

namespace costream::core {
namespace {

using dsps::DataType;
using dsps::FilterFunction;
using dsps::QueryBuilder;

sim::Cluster SmallCluster() {
  sim::Cluster cluster;
  cluster.nodes.push_back({100.0, 2000.0, 100.0, 10.0});
  cluster.nodes.push_back({800.0, 32000.0, 10000.0, 1.0});
  return cluster;
}

// A toy learnable task: target = source rate * selectivity (the query's
// output rate), over a grid of rates and selectivities.
std::vector<TrainSample> ToySamples(int n, uint64_t seed) {
  nn::Rng rng(seed);
  sim::Cluster cluster = SmallCluster();
  std::vector<TrainSample> samples;
  for (int i = 0; i < n; ++i) {
    const double rate = std::exp(rng.Uniform(std::log(100.0), std::log(10000.0)));
    const double sel = rng.Uniform(0.1, 1.0);
    QueryBuilder b;
    auto s = b.Source(rate, {DataType::kInt, DataType::kInt});
    auto f = b.Filter(s, FilterFunction::kLess, DataType::kInt, sel);
    TrainSample sample;
    sample.graph = BuildJointGraph(b.Sink(f), cluster,
                                   {rng.Int(0, 1), rng.Int(0, 1), rng.Int(0, 1)});
    sample.regression_target = rate * sel;
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::vector<TrainSample> ToyClassification(int n, uint64_t seed) {
  nn::Rng rng(seed);
  sim::Cluster cluster = SmallCluster();
  std::vector<TrainSample> samples;
  for (int i = 0; i < n; ++i) {
    const double rate = std::exp(rng.Uniform(std::log(100.0), std::log(10000.0)));
    QueryBuilder b;
    auto s = b.Source(rate, {DataType::kInt});
    auto f = b.Filter(s, FilterFunction::kLess, DataType::kInt, 0.5);
    TrainSample sample;
    sample.graph = BuildJointGraph(b.Sink(f), cluster, {0, 1, 1});
    sample.label = rate > 1000.0;  // separable on the rate feature
    samples.push_back(std::move(sample));
  }
  return samples;
}

TEST(TrainerTest, LossDecreasesOverTraining) {
  auto train = ToySamples(200, 1);
  auto val = ToySamples(50, 2);
  CostModel model(CostModelConfig{});
  TrainConfig config;
  config.epochs = 10;
  const TrainResult result = TrainModel(model, train, val, config);
  ASSERT_EQ(result.train_losses.size(), 10u);
  EXPECT_LT(result.train_losses.back(), result.train_losses.front());
}

TEST(TrainerTest, OverfitsTinyDataset) {
  auto train = ToySamples(8, 3);
  CostModel model(CostModelConfig{});
  TrainConfig config;
  config.epochs = 500;
  config.batch_size = 8;
  config.learning_rate = 1e-2;
  config.lr_decay = 0.995;
  TrainModel(model, train, {}, config);
  const eval::QErrorSummary q = EvaluateRegression(model, train);
  EXPECT_LT(q.q50, 1.3);
}

TEST(TrainerTest, LearnsRateTimesSelectivity) {
  auto train = ToySamples(600, 4);
  auto val = ToySamples(100, 5);
  auto test = ToySamples(100, 6);
  CostModel model(CostModelConfig{});
  TrainConfig config;
  config.epochs = 30;
  TrainModel(model, train, val, config);
  const eval::QErrorSummary q = EvaluateRegression(model, test);
  EXPECT_LT(q.q50, 1.3);
}

TEST(TrainerTest, BestEpochCheckpointRestored) {
  auto train = ToySamples(100, 7);
  auto val = ToySamples(30, 8);
  CostModel model(CostModelConfig{});
  TrainConfig config;
  config.epochs = 12;
  const TrainResult result = TrainModel(model, train, val, config);
  // The final validation loss of the restored model equals the best recorded
  // validation loss.
  const double final_val = EvaluateLoss(model, val);
  EXPECT_NEAR(final_val, result.best_val_loss, 1e-9);
  EXPECT_GE(result.best_epoch, 0);
}

TEST(TrainerTest, ClassifierSeparatesClasses) {
  auto train = ToyClassification(400, 9);
  auto test = ToyClassification(100, 10);
  CostModelConfig model_config;
  model_config.head = HeadKind::kClassification;
  CostModel model(model_config);
  TrainConfig config;
  config.epochs = 20;
  TrainModel(model, train, {}, config);
  EXPECT_GT(EvaluateClassification(model, test), 0.9);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  auto train = ToySamples(100, 11);
  auto val = ToySamples(20, 12);
  TrainConfig config;
  config.epochs = 5;
  CostModelConfig mc;
  mc.seed = 21;
  CostModel a(mc), b(mc);
  const TrainResult ra = TrainModel(a, train, val, config);
  const TrainResult rb = TrainModel(b, train, val, config);
  EXPECT_EQ(ra.train_losses, rb.train_losses);
}

TEST(TrainerTest, EvaluateLossMatchesTrainingObjective) {
  auto samples = ToySamples(10, 13);
  CostModel model(CostModelConfig{});
  const double loss = EvaluateLoss(model, samples);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0);
}

}  // namespace
}  // namespace costream::core
