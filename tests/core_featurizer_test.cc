#include "core/featurizer.h"

#include <gtest/gtest.h>

#include "dsps/query_builder.h"

namespace costream::core {
namespace {

using dsps::DataType;
using dsps::FilterFunction;
using dsps::QueryBuilder;
using dsps::QueryGraph;

QueryGraph TwoOpQuery() {
  QueryBuilder b;
  auto s = b.Source(800.0, {DataType::kInt, DataType::kString});
  auto f = b.Filter(s, FilterFunction::kLess, DataType::kInt, 0.5);
  return b.Sink(f);
}

sim::Cluster TwoNodeCluster() {
  sim::Cluster cluster;
  cluster.nodes.push_back({100.0, 2000.0, 100.0, 10.0});
  cluster.nodes.push_back({800.0, 32000.0, 10000.0, 1.0});
  return cluster;
}

TEST(NormalizationTest, TrainingGridMapsIntoUnitInterval) {
  // Boundary values of Table II map to 0 and 1.
  EXPECT_NEAR(NormalizeCpu(50.0), 0.0, 1e-9);
  EXPECT_NEAR(NormalizeCpu(800.0), 1.0, 1e-9);
  EXPECT_NEAR(NormalizeRam(1000.0), 0.0, 1e-9);
  EXPECT_NEAR(NormalizeRam(32000.0), 1.0, 1e-9);
  EXPECT_NEAR(NormalizeBandwidth(25.0), 0.0, 1e-9);
  EXPECT_NEAR(NormalizeBandwidth(10000.0), 1.0, 1e-9);
  EXPECT_NEAR(NormalizeNetworkLatency(1.0), 0.0, 1e-9);
  EXPECT_NEAR(NormalizeNetworkLatency(160.0), 1.0, 1e-9);
  EXPECT_NEAR(NormalizeCountWindow(5.0), 0.0, 1e-9);
  EXPECT_NEAR(NormalizeTimeWindow(16.0), 1.0, 1e-9);
}

TEST(NormalizationTest, OutOfRangeValuesExtrapolateBeyondUnitInterval) {
  // Extrapolation (Exp 4) relies on out-of-range features leaving [0,1]
  // smoothly rather than saturating.
  EXPECT_LT(NormalizeCpu(25.0), 0.0);
  EXPECT_GT(NormalizeCpu(1600.0), 1.0);
  EXPECT_GT(NormalizeTimeWindow(30.0), 1.0);
}

TEST(NormalizationTest, SelectivityLogScaleSeparatesSmallValues) {
  const double a = NormalizeSelectivity(1e-4);
  const double b = NormalizeSelectivity(1e-3);
  const double c = NormalizeSelectivity(1e-2);
  EXPECT_NEAR(b - a, c - b, 1e-9);  // equal steps per decade
  EXPECT_NEAR(NormalizeSelectivity(1.0), 1.0, 1e-9);
}

TEST(FeaturizerTest, FeatureDimsMatchBuiltVectors) {
  QueryGraph q = TwoOpQuery();
  sim::Cluster cluster = TwoNodeCluster();
  sim::Placement placement = {0, 1, 1};
  const JointGraph g = BuildJointGraph(q, cluster, placement);
  for (const JointNode& node : g.nodes) {
    EXPECT_EQ(static_cast<int>(node.features.size()), FeatureDim(node.kind));
  }
}

TEST(FeaturizerTest, FullModeAddsHostNodesAndPlacementEdges) {
  QueryGraph q = TwoOpQuery();
  sim::Cluster cluster = TwoNodeCluster();
  sim::Placement placement = {0, 1, 1};
  const JointGraph g = BuildJointGraph(q, cluster, placement);
  EXPECT_EQ(g.num_operator_nodes, 3);
  EXPECT_EQ(g.num_host_nodes, 2);  // both nodes host operators
  EXPECT_EQ(g.placement_edges.size(), 3u);
  EXPECT_EQ(g.dataflow_edges.size(), 2u);
}

TEST(FeaturizerTest, UnusedHostsAreNotMaterialized) {
  QueryGraph q = TwoOpQuery();
  sim::Cluster cluster = TwoNodeCluster();
  sim::Placement placement = {0, 0, 0};  // node 1 unused
  const JointGraph g = BuildJointGraph(q, cluster, placement);
  EXPECT_EQ(g.num_host_nodes, 1);
}

TEST(FeaturizerTest, CoLocatedOperatorsShareHostNode) {
  QueryGraph q = TwoOpQuery();
  sim::Cluster cluster = TwoNodeCluster();
  sim::Placement placement = {1, 1, 1};
  const JointGraph g = BuildJointGraph(q, cluster, placement);
  EXPECT_EQ(g.num_host_nodes, 1);
  const int host = g.placement_edges[0].second;
  for (const auto& [op, h] : g.placement_edges) EXPECT_EQ(h, host);
}

TEST(FeaturizerTest, OperatorsOnlyModeDropsHosts) {
  QueryGraph q = TwoOpQuery();
  sim::Cluster cluster = TwoNodeCluster();
  sim::Placement placement = {0, 1, 1};
  const JointGraph g = BuildJointGraph(q, cluster, placement,
                                       FeaturizationMode::kOperatorsOnly);
  EXPECT_EQ(g.num_host_nodes, 0);
  EXPECT_TRUE(g.placement_edges.empty());
  EXPECT_EQ(g.nodes.size(), 3u);
}

TEST(FeaturizerTest, PlacementOnlyModeBlanksHardwareFeatures) {
  QueryGraph q = TwoOpQuery();
  sim::Cluster cluster = TwoNodeCluster();
  sim::Placement placement = {0, 1, 1};
  const JointGraph g = BuildJointGraph(q, cluster, placement,
                                       FeaturizationMode::kPlacementOnly);
  EXPECT_EQ(g.num_host_nodes, 2);
  for (size_t i = g.num_operator_nodes; i < g.nodes.size(); ++i) {
    for (double f : g.nodes[i].features) EXPECT_EQ(f, 0.5);
  }
}

TEST(FeaturizerTest, DifferentPlacementsYieldDifferentGraphs) {
  QueryGraph q = TwoOpQuery();
  sim::Cluster cluster = TwoNodeCluster();
  const JointGraph a = BuildJointGraph(q, cluster, {0, 0, 0});
  const JointGraph b = BuildJointGraph(q, cluster, {1, 1, 1});
  // Same shape, different host features.
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  EXPECT_NE(a.nodes.back().features, b.nodes.back().features);
}

TEST(FeaturizerTest, WindowFeaturesDistinguishPolicies) {
  QueryBuilder b;
  auto s = b.Source(500.0, {DataType::kDouble});
  dsps::WindowSpec count_w;
  count_w.policy = dsps::WindowPolicy::kCountBased;
  count_w.size = 40;
  auto agg = b.WindowedAggregate(s, count_w, dsps::AggregateFunction::kMean,
                                 dsps::GroupByType::kNone, DataType::kDouble,
                                 1.0);
  QueryGraph q = b.Sink(agg);
  sim::Cluster cluster = TwoNodeCluster();
  sim::Placement placement(q.num_operators(), 0);
  const JointGraph g = BuildJointGraph(q, cluster, placement);
  // Find the window node: count slot set, time slot zero.
  bool found = false;
  for (const JointNode& node : g.nodes) {
    if (node.kind != NodeKind::kWindow) continue;
    found = true;
    EXPECT_GT(node.features[4], 0.0);   // count-size slot
    EXPECT_EQ(node.features[5], 0.0);   // time-size slot
  }
  EXPECT_TRUE(found);
}

TEST(FeaturizerTest, TopoOrderCoversAllOperators) {
  QueryGraph q = TwoOpQuery();
  sim::Cluster cluster = TwoNodeCluster();
  const JointGraph g = BuildJointGraph(q, cluster, {0, 1, 1});
  EXPECT_EQ(g.topo_order.size(), 3u);
}

TEST(FeaturizerTest, NodeKindNamesAreStable) {
  EXPECT_STREQ(ToString(NodeKind::kHost), "host");
  EXPECT_STREQ(ToString(NodeKind::kAggregate), "aggregate");
}

}  // namespace
}  // namespace costream::core
