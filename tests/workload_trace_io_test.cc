#include "workload/trace_io.h"

#include <bit>
#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

namespace costream::workload {
namespace {

std::vector<TraceRecord> SmallCorpus(int n = 20, uint64_t seed = 5) {
  CorpusConfig config;
  config.num_queries = n;
  config.seed = seed;
  return BuildCorpus(config);
}

void ExpectRecordsEqual(const TraceRecord& a, const TraceRecord& b) {
  EXPECT_EQ(a.template_kind, b.template_kind);
  EXPECT_EQ(a.num_filters, b.num_filters);
  ASSERT_EQ(a.query.num_operators(), b.query.num_operators());
  for (int i = 0; i < a.query.num_operators(); ++i) {
    const auto& oa = a.query.op(i);
    const auto& ob = b.query.op(i);
    EXPECT_EQ(oa.type, ob.type);
    EXPECT_DOUBLE_EQ(oa.input_event_rate, ob.input_event_rate);
    EXPECT_DOUBLE_EQ(oa.selectivity, ob.selectivity);
    EXPECT_DOUBLE_EQ(oa.window.size, ob.window.size);
    EXPECT_DOUBLE_EQ(oa.window.slide, ob.window.slide);
    EXPECT_EQ(oa.window.type, ob.window.type);
    EXPECT_EQ(oa.tuple_data_types, ob.tuple_data_types);
    EXPECT_DOUBLE_EQ(oa.frac_string, ob.frac_string);
  }
  EXPECT_EQ(a.query.edges(), b.query.edges());
  ASSERT_EQ(a.cluster.num_nodes(), b.cluster.num_nodes());
  for (int i = 0; i < a.cluster.num_nodes(); ++i) {
    EXPECT_DOUBLE_EQ(a.cluster.nodes[i].cpu_pct, b.cluster.nodes[i].cpu_pct);
    EXPECT_DOUBLE_EQ(a.cluster.nodes[i].ram_mb, b.cluster.nodes[i].ram_mb);
    EXPECT_DOUBLE_EQ(a.cluster.nodes[i].bandwidth_mbits,
                     b.cluster.nodes[i].bandwidth_mbits);
    EXPECT_DOUBLE_EQ(a.cluster.nodes[i].latency_ms,
                     b.cluster.nodes[i].latency_ms);
  }
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_DOUBLE_EQ(a.metrics.throughput, b.metrics.throughput);
  EXPECT_DOUBLE_EQ(a.metrics.processing_latency_ms,
                   b.metrics.processing_latency_ms);
  EXPECT_DOUBLE_EQ(a.metrics.e2e_latency_ms, b.metrics.e2e_latency_ms);
  EXPECT_EQ(a.metrics.backpressure, b.metrics.backpressure);
  EXPECT_EQ(a.metrics.success, b.metrics.success);
}

TEST(TraceIoTest, RoundTripPreservesParallelism) {
  CorpusConfig config;
  config.num_queries = 15;
  config.seed = 77;
  config.generator.parallelism_fraction = 0.6;
  const auto records = BuildCorpus(config);
  std::stringstream buffer;
  SaveTraces(buffer, records);
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(LoadTraces(buffer, &loaded));
  ASSERT_EQ(loaded.size(), records.size());
  bool any_parallel = false;
  for (size_t i = 0; i < records.size(); ++i) {
    for (int op = 0; op < records[i].query.num_operators(); ++op) {
      EXPECT_EQ(records[i].query.op(op).parallelism,
                loaded[i].query.op(op).parallelism);
      any_parallel =
          any_parallel || records[i].query.op(op).parallelism > 1;
    }
  }
  EXPECT_TRUE(any_parallel);
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  const auto records = SmallCorpus();
  std::stringstream buffer;
  SaveTraces(buffer, records);
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(LoadTraces(buffer, &loaded));
  ASSERT_EQ(loaded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectRecordsEqual(records[i], loaded[i]);
  }
}

TEST(TraceIoTest, LoadedRecordsTrainIdentically) {
  const auto records = SmallCorpus(30, 9);
  std::stringstream buffer;
  SaveTraces(buffer, records);
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(LoadTraces(buffer, &loaded));
  // Featurization must be bit-identical.
  const auto a = ToTrainSamples(records, sim::Metric::kThroughput);
  const auto b = ToTrainSamples(loaded, sim::Metric::kThroughput);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].regression_target, b[i].regression_target);
    ASSERT_EQ(a[i].graph.nodes.size(), b[i].graph.nodes.size());
    for (size_t v = 0; v < a[i].graph.nodes.size(); ++v) {
      EXPECT_EQ(a[i].graph.nodes[v].features, b[i].graph.nodes[v].features);
    }
  }
}

TEST(TraceIoTest, EmptyCorpusRoundTrips) {
  std::stringstream buffer;
  SaveTraces(buffer, {});
  std::vector<TraceRecord> loaded;
  EXPECT_TRUE(LoadTraces(buffer, &loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST(TraceIoTest, RejectsMissingHeader) {
  std::stringstream buffer("record\nend\n");
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(LoadTraces(buffer, &loaded));
}

TEST(TraceIoTest, RejectsTruncatedRecord) {
  const auto records = SmallCorpus(2, 11);
  std::stringstream buffer;
  SaveTraces(buffer, records);
  std::string text = buffer.str();
  text = text.substr(0, text.size() - 20);  // chop the tail
  std::stringstream truncated(text);
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(LoadTraces(truncated, &loaded));
}

TEST(TraceIoTest, RejectsGarbageLines) {
  const auto records = SmallCorpus(1, 12);
  std::stringstream buffer;
  SaveTraces(buffer, records);
  std::string text = buffer.str();
  const size_t pos = text.find("placement");
  text.insert(pos, "garbage line here\n");
  std::stringstream corrupted(text);
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(LoadTraces(corrupted, &loaded));
}

TEST(TraceIoTest, FileRoundTrip) {
  const auto records = SmallCorpus(5, 13);
  const std::string path = ::testing::TempDir() + "/costream_traces.txt";
  ASSERT_TRUE(SaveTracesToFile(path, records));
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(LoadTracesFromFile(path, &loaded));
  EXPECT_EQ(loaded.size(), records.size());
  std::remove(path.c_str());
}

TEST(TraceIoTest, LoadFromMissingFileFails) {
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(LoadTracesFromFile("/nonexistent/costream.txt", &loaded));
}

// Replaces the value of the first " key=value" token in the serialized text.
std::string ReplaceFirstToken(std::string text, const std::string& key,
                              const std::string& replacement) {
  const std::string needle = " " + key + "=";
  const size_t pos = text.find(needle);
  EXPECT_NE(pos, std::string::npos) << key;
  const size_t start = pos + needle.size();
  const size_t stop = std::min(text.find(' ', start), text.find('\n', start));
  text.replace(start, stop - start, replacement);
  return text;
}

std::string SerializedCorpus() {
  std::stringstream buffer;
  SaveTraces(buffer, SmallCorpus(1, 12));
  return buffer.str();
}

bool Loads(const std::string& text) {
  std::stringstream is(text);
  std::vector<TraceRecord> loaded;
  return LoadTraces(is, &loaded);
}

// "par=3x" used to parse as 3 through the double-then-cast path.
TEST(TraceIoTest, RejectsTrailingGarbageInIntegralField) {
  EXPECT_FALSE(Loads(ReplaceFirstToken(SerializedCorpus(), "par", "3x")));
}

// "par=3.7" used to truncate to 3 instead of failing.
TEST(TraceIoTest, RejectsFractionalIntegralField) {
  EXPECT_FALSE(Loads(ReplaceFirstToken(SerializedCorpus(), "par", "3.7")));
}

// A value beyond int range used to be accepted with an undefined cast.
TEST(TraceIoTest, RejectsOutOfRangeIntegralField) {
  EXPECT_FALSE(
      Loads(ReplaceFirstToken(SerializedCorpus(), "par", "99999999999")));
}

TEST(TraceIoTest, RejectsTrailingGarbageInDoubleField) {
  EXPECT_FALSE(Loads(ReplaceFirstToken(SerializedCorpus(), "rate", "12.5qq")));
}

TEST(TraceIoTest, RejectsNonNumericDoubleField) {
  EXPECT_FALSE(Loads(ReplaceFirstToken(SerializedCorpus(), "rate", "abc")));
}

TEST(TraceIoTest, RejectsEmptyNumericValue) {
  EXPECT_FALSE(Loads(ReplaceFirstToken(SerializedCorpus(), "par", "")));
}

// --- v2 binary format -------------------------------------------------------

std::string SerializeV2(const std::vector<TraceRecord>& records) {
  std::ostringstream os;
  SaveTracesV2(os, records);
  return std::move(os).str();
}

TEST(TraceIoV2Test, RoundTripPreservesEverything) {
  const auto records = SmallCorpus(20, 21);
  const std::string image = SerializeV2(records);
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(LoadTracesV2(image.data(), image.size(), &loaded));
  ASSERT_EQ(loaded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectRecordsEqual(records[i], loaded[i]);
  }
}

TEST(TraceIoV2Test, DoublesRoundTripBitExactly) {
  const auto records = SmallCorpus(10, 22);
  const std::string image = SerializeV2(records);
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(LoadTracesV2(image.data(), image.size(), &loaded));
  ASSERT_EQ(loaded.size(), records.size());
  const auto bits = [](double v) { return std::bit_cast<uint64_t>(v); };
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(bits(records[i].metrics.throughput),
              bits(loaded[i].metrics.throughput));
    EXPECT_EQ(bits(records[i].metrics.processing_latency_ms),
              bits(loaded[i].metrics.processing_latency_ms));
    EXPECT_EQ(bits(records[i].metrics.e2e_latency_ms),
              bits(loaded[i].metrics.e2e_latency_ms));
    for (int op = 0; op < records[i].query.num_operators(); ++op) {
      EXPECT_EQ(bits(records[i].query.op(op).selectivity),
                bits(loaded[i].query.op(op).selectivity));
      EXPECT_EQ(bits(records[i].query.op(op).input_event_rate),
                bits(loaded[i].query.op(op).input_event_rate));
    }
  }
}

// The same randomized corpus through both formats must load equivalently.
TEST(TraceIoV2Test, V1V2Equivalence) {
  const auto records = SmallCorpus(25, 23);
  std::stringstream v1;
  SaveTraces(v1, records);
  const std::string v2 = SerializeV2(records);
  std::vector<TraceRecord> from_v1;
  std::vector<TraceRecord> from_v2;
  ASSERT_TRUE(LoadTraces(v1, &from_v1));
  ASSERT_TRUE(LoadTracesV2(v2.data(), v2.size(), &from_v2));
  ASSERT_EQ(from_v1.size(), records.size());
  ASSERT_EQ(from_v2.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectRecordsEqual(from_v1[i], from_v2[i]);
  }
}

TEST(TraceIoV2Test, StreamLoaderAutoDetectsV2) {
  const auto records = SmallCorpus(4, 24);
  std::stringstream buffer;
  SaveTracesV2(buffer, records);
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(LoadTraces(buffer, &loaded));
  ASSERT_EQ(loaded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectRecordsEqual(records[i], loaded[i]);
  }
}

TEST(TraceIoV2Test, FileLoaderAutoDetectsBothFormats) {
  const auto records = SmallCorpus(5, 25);
  const std::string v1_path = ::testing::TempDir() + "/costream_v1.txt";
  const std::string v2_path = ::testing::TempDir() + "/costream_v2.bin";
  ASSERT_TRUE(SaveTracesToFile(v1_path, records, TraceFormat::kTextV1));
  ASSERT_TRUE(SaveTracesToFile(v2_path, records));  // default: binary v2
  std::vector<TraceRecord> from_v1;
  std::vector<TraceRecord> from_v2;
  ASSERT_TRUE(LoadTracesFromFile(v1_path, &from_v1));
  ASSERT_TRUE(LoadTracesFromFile(v2_path, &from_v2));
  ASSERT_EQ(from_v1.size(), records.size());
  ASSERT_EQ(from_v2.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectRecordsEqual(from_v1[i], from_v2[i]);
  }
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

TEST(TraceIoV2Test, EmptyCorpusRoundTrips) {
  const std::string image = SerializeV2({});
  std::vector<TraceRecord> loaded;
  EXPECT_TRUE(LoadTracesV2(image.data(), image.size(), &loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST(TraceIoV2Test, TruncationFailsClosedKeepingParsedRecords) {
  const auto records = SmallCorpus(6, 26);
  const std::string image = SerializeV2(records);
  // Chop in the middle of the last record: everything before it must
  // survive, the return value must say the file is bad.
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(LoadTracesV2(image.data(), image.size() - 10, &loaded));
  EXPECT_EQ(loaded.size(), records.size() - 1);
  for (size_t i = 0; i < loaded.size(); ++i) {
    ExpectRecordsEqual(records[i], loaded[i]);
  }
  // Chop inside the header: nothing parses.
  EXPECT_FALSE(LoadTracesV2(image.data(), 12, &loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST(TraceIoV2Test, RejectsCorruptedMagicAndVersion) {
  const std::string image = SerializeV2(SmallCorpus(2, 27));
  std::vector<TraceRecord> loaded;
  std::string bad_magic = image;
  bad_magic[0] = 'X';
  EXPECT_FALSE(LoadTracesV2(bad_magic.data(), bad_magic.size(), &loaded));
  std::string bad_version = image;
  bad_version[8] = 9;  // version field, little-endian low byte
  EXPECT_FALSE(
      LoadTracesV2(bad_version.data(), bad_version.size(), &loaded));
}

TEST(TraceIoV2Test, RejectsLyingLengthPrefixWithoutAllocating) {
  const std::string image = SerializeV2(SmallCorpus(2, 28));
  // The first record's u32 payload size sits right after the 24-byte
  // header; claim 4 GB and make sure the loader fails instead of reading
  // past the buffer or reserving absurd memory.
  std::string lying = image;
  lying[24] = '\xff';
  lying[25] = '\xff';
  lying[26] = '\xff';
  lying[27] = '\xff';
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(LoadTracesV2(lying.data(), lying.size(), &loaded));
  // Also a lying element count inside the record body: the u32 operator
  // count sits after the payload prefix (4), template kind (1) and filter
  // count (4) — bytes 33..36 of the image.
  std::string bomb = image;
  bomb[33] = '\xff';
  bomb[34] = '\xff';
  bomb[35] = '\xff';
  bomb[36] = '\xff';
  EXPECT_FALSE(LoadTracesV2(bomb.data(), bomb.size(), &loaded));
}

TEST(TraceIoV2Test, RejectsTrailingGarbage) {
  std::string image = SerializeV2(SmallCorpus(2, 29));
  image += "extra";
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(LoadTracesV2(image.data(), image.size(), &loaded));
}

// Extreme but representable values must survive the parse exactly.
TEST(TraceIoTest, ExtremeValuesParseExactly) {
  std::string text =
      ReplaceFirstToken(SerializedCorpus(), "par", "2147483647");
  text = ReplaceFirstToken(text, "wsz", "1e300");
  std::stringstream is(text);
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(LoadTraces(is, &loaded));
  ASSERT_EQ(loaded.size(), 1u);
  bool found_par = false;
  bool found_wsz = false;
  for (int i = 0; i < loaded[0].query.num_operators(); ++i) {
    const auto& op = loaded[0].query.op(i);
    found_par = found_par || op.parallelism == 2147483647;
    found_wsz = found_wsz || op.window.size == 1e300;
  }
  EXPECT_TRUE(found_par);
  EXPECT_TRUE(found_wsz);
}

}  // namespace
}  // namespace costream::workload
