#include "workload/trace_io.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

namespace costream::workload {
namespace {

std::vector<TraceRecord> SmallCorpus(int n = 20, uint64_t seed = 5) {
  CorpusConfig config;
  config.num_queries = n;
  config.seed = seed;
  return BuildCorpus(config);
}

void ExpectRecordsEqual(const TraceRecord& a, const TraceRecord& b) {
  EXPECT_EQ(a.template_kind, b.template_kind);
  EXPECT_EQ(a.num_filters, b.num_filters);
  ASSERT_EQ(a.query.num_operators(), b.query.num_operators());
  for (int i = 0; i < a.query.num_operators(); ++i) {
    const auto& oa = a.query.op(i);
    const auto& ob = b.query.op(i);
    EXPECT_EQ(oa.type, ob.type);
    EXPECT_DOUBLE_EQ(oa.input_event_rate, ob.input_event_rate);
    EXPECT_DOUBLE_EQ(oa.selectivity, ob.selectivity);
    EXPECT_DOUBLE_EQ(oa.window.size, ob.window.size);
    EXPECT_DOUBLE_EQ(oa.window.slide, ob.window.slide);
    EXPECT_EQ(oa.window.type, ob.window.type);
    EXPECT_EQ(oa.tuple_data_types, ob.tuple_data_types);
    EXPECT_DOUBLE_EQ(oa.frac_string, ob.frac_string);
  }
  EXPECT_EQ(a.query.edges(), b.query.edges());
  ASSERT_EQ(a.cluster.num_nodes(), b.cluster.num_nodes());
  for (int i = 0; i < a.cluster.num_nodes(); ++i) {
    EXPECT_DOUBLE_EQ(a.cluster.nodes[i].cpu_pct, b.cluster.nodes[i].cpu_pct);
    EXPECT_DOUBLE_EQ(a.cluster.nodes[i].ram_mb, b.cluster.nodes[i].ram_mb);
    EXPECT_DOUBLE_EQ(a.cluster.nodes[i].bandwidth_mbits,
                     b.cluster.nodes[i].bandwidth_mbits);
    EXPECT_DOUBLE_EQ(a.cluster.nodes[i].latency_ms,
                     b.cluster.nodes[i].latency_ms);
  }
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_DOUBLE_EQ(a.metrics.throughput, b.metrics.throughput);
  EXPECT_DOUBLE_EQ(a.metrics.processing_latency_ms,
                   b.metrics.processing_latency_ms);
  EXPECT_DOUBLE_EQ(a.metrics.e2e_latency_ms, b.metrics.e2e_latency_ms);
  EXPECT_EQ(a.metrics.backpressure, b.metrics.backpressure);
  EXPECT_EQ(a.metrics.success, b.metrics.success);
}

TEST(TraceIoTest, RoundTripPreservesParallelism) {
  CorpusConfig config;
  config.num_queries = 15;
  config.seed = 77;
  config.generator.parallelism_fraction = 0.6;
  const auto records = BuildCorpus(config);
  std::stringstream buffer;
  SaveTraces(buffer, records);
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(LoadTraces(buffer, &loaded));
  ASSERT_EQ(loaded.size(), records.size());
  bool any_parallel = false;
  for (size_t i = 0; i < records.size(); ++i) {
    for (int op = 0; op < records[i].query.num_operators(); ++op) {
      EXPECT_EQ(records[i].query.op(op).parallelism,
                loaded[i].query.op(op).parallelism);
      any_parallel =
          any_parallel || records[i].query.op(op).parallelism > 1;
    }
  }
  EXPECT_TRUE(any_parallel);
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  const auto records = SmallCorpus();
  std::stringstream buffer;
  SaveTraces(buffer, records);
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(LoadTraces(buffer, &loaded));
  ASSERT_EQ(loaded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectRecordsEqual(records[i], loaded[i]);
  }
}

TEST(TraceIoTest, LoadedRecordsTrainIdentically) {
  const auto records = SmallCorpus(30, 9);
  std::stringstream buffer;
  SaveTraces(buffer, records);
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(LoadTraces(buffer, &loaded));
  // Featurization must be bit-identical.
  const auto a = ToTrainSamples(records, sim::Metric::kThroughput);
  const auto b = ToTrainSamples(loaded, sim::Metric::kThroughput);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].regression_target, b[i].regression_target);
    ASSERT_EQ(a[i].graph.nodes.size(), b[i].graph.nodes.size());
    for (size_t v = 0; v < a[i].graph.nodes.size(); ++v) {
      EXPECT_EQ(a[i].graph.nodes[v].features, b[i].graph.nodes[v].features);
    }
  }
}

TEST(TraceIoTest, EmptyCorpusRoundTrips) {
  std::stringstream buffer;
  SaveTraces(buffer, {});
  std::vector<TraceRecord> loaded;
  EXPECT_TRUE(LoadTraces(buffer, &loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST(TraceIoTest, RejectsMissingHeader) {
  std::stringstream buffer("record\nend\n");
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(LoadTraces(buffer, &loaded));
}

TEST(TraceIoTest, RejectsTruncatedRecord) {
  const auto records = SmallCorpus(2, 11);
  std::stringstream buffer;
  SaveTraces(buffer, records);
  std::string text = buffer.str();
  text = text.substr(0, text.size() - 20);  // chop the tail
  std::stringstream truncated(text);
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(LoadTraces(truncated, &loaded));
}

TEST(TraceIoTest, RejectsGarbageLines) {
  const auto records = SmallCorpus(1, 12);
  std::stringstream buffer;
  SaveTraces(buffer, records);
  std::string text = buffer.str();
  const size_t pos = text.find("placement");
  text.insert(pos, "garbage line here\n");
  std::stringstream corrupted(text);
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(LoadTraces(corrupted, &loaded));
}

TEST(TraceIoTest, FileRoundTrip) {
  const auto records = SmallCorpus(5, 13);
  const std::string path = ::testing::TempDir() + "/costream_traces.txt";
  ASSERT_TRUE(SaveTracesToFile(path, records));
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(LoadTracesFromFile(path, &loaded));
  EXPECT_EQ(loaded.size(), records.size());
  std::remove(path.c_str());
}

TEST(TraceIoTest, LoadFromMissingFileFails) {
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(LoadTracesFromFile("/nonexistent/costream.txt", &loaded));
}

// Replaces the value of the first " key=value" token in the serialized text.
std::string ReplaceFirstToken(std::string text, const std::string& key,
                              const std::string& replacement) {
  const std::string needle = " " + key + "=";
  const size_t pos = text.find(needle);
  EXPECT_NE(pos, std::string::npos) << key;
  const size_t start = pos + needle.size();
  const size_t stop = std::min(text.find(' ', start), text.find('\n', start));
  text.replace(start, stop - start, replacement);
  return text;
}

std::string SerializedCorpus() {
  std::stringstream buffer;
  SaveTraces(buffer, SmallCorpus(1, 12));
  return buffer.str();
}

bool Loads(const std::string& text) {
  std::stringstream is(text);
  std::vector<TraceRecord> loaded;
  return LoadTraces(is, &loaded);
}

// "par=3x" used to parse as 3 through the double-then-cast path.
TEST(TraceIoTest, RejectsTrailingGarbageInIntegralField) {
  EXPECT_FALSE(Loads(ReplaceFirstToken(SerializedCorpus(), "par", "3x")));
}

// "par=3.7" used to truncate to 3 instead of failing.
TEST(TraceIoTest, RejectsFractionalIntegralField) {
  EXPECT_FALSE(Loads(ReplaceFirstToken(SerializedCorpus(), "par", "3.7")));
}

// A value beyond int range used to be accepted with an undefined cast.
TEST(TraceIoTest, RejectsOutOfRangeIntegralField) {
  EXPECT_FALSE(
      Loads(ReplaceFirstToken(SerializedCorpus(), "par", "99999999999")));
}

TEST(TraceIoTest, RejectsTrailingGarbageInDoubleField) {
  EXPECT_FALSE(Loads(ReplaceFirstToken(SerializedCorpus(), "rate", "12.5qq")));
}

TEST(TraceIoTest, RejectsNonNumericDoubleField) {
  EXPECT_FALSE(Loads(ReplaceFirstToken(SerializedCorpus(), "rate", "abc")));
}

TEST(TraceIoTest, RejectsEmptyNumericValue) {
  EXPECT_FALSE(Loads(ReplaceFirstToken(SerializedCorpus(), "par", "")));
}

// Extreme but representable values must survive the parse exactly.
TEST(TraceIoTest, ExtremeValuesParseExactly) {
  std::string text =
      ReplaceFirstToken(SerializedCorpus(), "par", "2147483647");
  text = ReplaceFirstToken(text, "wsz", "1e300");
  std::stringstream is(text);
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(LoadTraces(is, &loaded));
  ASSERT_EQ(loaded.size(), 1u);
  bool found_par = false;
  bool found_wsz = false;
  for (int i = 0; i < loaded[0].query.num_operators(); ++i) {
    const auto& op = loaded[0].query.op(i);
    found_par = found_par || op.parallelism == 2147483647;
    found_wsz = found_wsz || op.window.size == 1e300;
  }
  EXPECT_TRUE(found_par);
  EXPECT_TRUE(found_wsz);
}

}  // namespace
}  // namespace costream::workload
