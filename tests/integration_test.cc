// End-to-end integration: corpus generation -> training -> prediction
// quality -> cost-based placement optimization. Sizes are kept small so the
// test stays fast; the benches run the full-scale pipelines.
#include <gtest/gtest.h>

#include "baselines/heuristic.h"
#include "core/ensemble.h"
#include "eval/metrics.h"
#include "placement/optimizer.h"
#include "workload/corpus.h"

namespace costream {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::CorpusConfig config;
    config.num_queries = 900;
    config.seed = 321;
    records_ = new std::vector<workload::TraceRecord>(
        workload::BuildCorpus(config));
    split_ = new workload::SplitIndices(
        workload::SplitCorpus(static_cast<int64_t>(records_->size()), 0.8, 0.1,
                              5));
  }
  static void TearDownTestSuite() {
    delete records_;
    delete split_;
    records_ = nullptr;
    split_ = nullptr;
  }

  static std::vector<workload::TraceRecord>* records_;
  static workload::SplitIndices* split_;
};

std::vector<workload::TraceRecord>* IntegrationTest::records_ = nullptr;
workload::SplitIndices* IntegrationTest::split_ = nullptr;

TEST_F(IntegrationTest, ThroughputModelBeatsTrivialBaseline) {
  const auto train_recs = workload::Gather(*records_, split_->train);
  const auto val_recs = workload::Gather(*records_, split_->val);
  const auto test_recs = workload::Gather(*records_, split_->test);
  const auto train =
      workload::ToTrainSamples(train_recs, sim::Metric::kThroughput);
  const auto val = workload::ToTrainSamples(val_recs, sim::Metric::kThroughput);
  const auto test =
      workload::ToTrainSamples(test_recs, sim::Metric::kThroughput);

  core::CostModel model(core::CostModelConfig{});
  core::TrainConfig config;
  config.epochs = 14;
  TrainModel(model, train, val, config);
  const eval::QErrorSummary q = core::EvaluateRegression(model, test);

  // Trivial baseline: always predict the training median.
  std::vector<double> targets;
  for (const auto& s : train) targets.push_back(s.regression_target);
  const double median = eval::Quantile(targets, 0.5);
  std::vector<double> actual, constant;
  for (const auto& s : test) {
    actual.push_back(s.regression_target);
    constant.push_back(median);
  }
  const eval::QErrorSummary trivial = eval::SummarizeQErrors(actual, constant);

  EXPECT_LT(q.q50, 2.5);
  EXPECT_LT(q.q50, trivial.q50 * 0.5);
}

TEST_F(IntegrationTest, SuccessClassifierBeatsCoinFlipOnBalancedSet) {
  // Failures are a small minority class (~3-4% of executions), so this test
  // uses its own larger corpus: the shared 900-record corpus would provide
  // only a couple dozen failure examples to learn from.
  workload::CorpusConfig train_config;
  train_config.num_queries = 2600;
  train_config.seed = 654;
  const auto train_recs = workload::BuildCorpus(train_config);
  auto train = workload::ToTrainSamples(train_recs, sim::Metric::kSuccess);

  core::CostModelConfig mc;
  mc.head = core::HeadKind::kClassification;
  core::CostModel model(mc);
  core::TrainConfig config;
  config.epochs = 14;
  TrainModel(model, train, {}, config);

  workload::CorpusConfig eval_config;
  eval_config.num_queries = 1200;
  eval_config.seed = 655;
  const auto test_recs = workload::BuildCorpus(eval_config);
  auto test = workload::ToTrainSamples(test_recs, sim::Metric::kSuccess);
  std::vector<bool> labels;
  for (const auto& s : test) labels.push_back(s.label);
  const std::vector<int> balanced = eval::BalancedIndices(labels);
  ASSERT_GE(balanced.size(), 20u);
  std::vector<core::TrainSample> balanced_samples;
  for (int i : balanced) balanced_samples.push_back(test[i]);
  EXPECT_GT(core::EvaluateClassification(model, balanced_samples), 0.6);
}

TEST_F(IntegrationTest, OptimizedPlacementBeatsHeuristicOnAverage) {
  const auto train_recs = workload::Gather(*records_, split_->train);
  const auto val_recs = workload::Gather(*records_, split_->val);
  const auto train =
      workload::ToTrainSamples(train_recs, sim::Metric::kProcessingLatency);
  const auto val =
      workload::ToTrainSamples(val_recs, sim::Metric::kProcessingLatency);

  core::Ensemble target(core::CostModelConfig{}, 1);
  core::TrainConfig config;
  config.epochs = 14;
  target.Train(train, val, config);
  placement::PlacementOptimizer optimizer(&target, nullptr, nullptr);

  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(777);
  sim::FluidConfig fluid;
  fluid.noise_sigma = 0.0;

  double log_speedup_sum = 0.0;
  const int kQueries = 12;
  for (int i = 0; i < kQueries; ++i) {
    const dsps::QueryGraph q =
        generator.Generate(workload::QueryTemplate::kLinear, rng);
    const sim::Cluster cluster = generator.GenerateCluster(rng);
    const sim::Placement heuristic =
        baselines::GovernorHeuristicPlacement(q, cluster);
    placement::OptimizerConfig oc;
    oc.enumeration.num_candidates = 30;
    oc.enumeration.seed = rng.Fork();
    const auto result = optimizer.Optimize(q, cluster, oc);

    const double lp_heuristic =
        sim::EvaluateFluid(q, cluster, heuristic, fluid)
            .metrics.processing_latency_ms;
    const double lp_optimized =
        sim::EvaluateFluid(q, cluster, result.best, fluid)
            .metrics.processing_latency_ms;
    log_speedup_sum += std::log(std::max(lp_heuristic, 1e-3) /
                                std::max(lp_optimized, 1e-3));
  }
  // Geometric-mean speedup must exceed 1 (the optimizer helps on average).
  EXPECT_GT(std::exp(log_speedup_sum / kQueries), 1.0);
}

}  // namespace
}  // namespace costream
