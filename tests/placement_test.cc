#include "placement/enumeration.h"
#include "placement/optimizer.h"

#include <limits>
#include <tuple>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "dsps/query_builder.h"
#include "workload/corpus.h"

namespace costream::placement {
namespace {

sim::Cluster HeterogeneousCluster() {
  sim::Cluster cluster;
  cluster.nodes.push_back({50.0, 1000.0, 25.0, 80.0});     // edge
  cluster.nodes.push_back({100.0, 2000.0, 100.0, 40.0});   // edge
  cluster.nodes.push_back({300.0, 8000.0, 800.0, 10.0});   // fog
  cluster.nodes.push_back({400.0, 8000.0, 1600.0, 5.0});   // fog
  cluster.nodes.push_back({800.0, 32000.0, 10000.0, 1.0}); // cloud
  cluster.nodes.push_back({700.0, 24000.0, 6400.0, 2.0});  // cloud
  return cluster;
}

TEST(CapabilityBinsTest, BinsAreOrderedByCapability) {
  sim::Cluster cluster = HeterogeneousCluster();
  const std::vector<int> bins = CapabilityBins(cluster, 3);
  ASSERT_EQ(bins.size(), 6u);
  EXPECT_EQ(bins[0], 0);
  EXPECT_EQ(bins[1], 0);
  EXPECT_EQ(bins[2], 1);
  EXPECT_EQ(bins[3], 1);
  EXPECT_EQ(bins[4], 2);
  EXPECT_EQ(bins[5], 2);
}

TEST(CapabilityBinsTest, SingleNodeSingleBin) {
  sim::Cluster cluster;
  cluster.nodes.push_back({100.0, 2000.0, 100.0, 10.0});
  EXPECT_EQ(CapabilityBins(cluster, 3), std::vector<int>{0});
}

TEST(PlacementRulesTest, AllOnOneNodeConforms) {
  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(1);
  const dsps::QueryGraph q =
      generator.Generate(workload::QueryTemplate::kTwoWayJoin, rng);
  sim::Cluster cluster = HeterogeneousCluster();
  sim::Placement placement(q.num_operators(), 4);
  EXPECT_EQ(CheckPlacementRules(q, cluster, placement), "");
}

TEST(PlacementRulesTest, DecreasingBinViolatesRule2) {
  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(2);
  const dsps::QueryGraph q =
      generator.Generate(workload::QueryTemplate::kLinear, rng);
  sim::Cluster cluster = HeterogeneousCluster();
  // Source on the cloud node, everything downstream on an edge node.
  sim::Placement placement(q.num_operators(), 0);
  placement[q.Sources()[0]] = 4;
  EXPECT_NE(CheckPlacementRules(q, cluster, placement), "");
}

TEST(PlacementRulesTest, ReturningToAVisitedNodeViolatesRule3) {
  // Chain source -> filter -> sink placed 2 -> 4 -> 2: data returns to 2.
  dsps::QueryBuilder b;
  auto s = b.Source(100.0, {dsps::DataType::kInt});
  auto f = b.Filter(s, dsps::FilterFunction::kLess, dsps::DataType::kInt, 0.5);
  const dsps::QueryGraph q = b.Sink(f);
  sim::Cluster cluster = HeterogeneousCluster();
  sim::Placement placement = {2, 4, 2};
  EXPECT_NE(CheckPlacementRules(q, cluster, placement), "");
}

// Property: every sampled candidate conforms to the rules, across templates
// and seeds.
class EnumerationPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EnumerationPropertyTest, AllCandidatesConform) {
  const auto [template_index, seed] = GetParam();
  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(100 + seed);
  const auto template_kind =
      static_cast<workload::QueryTemplate>(template_index);
  const dsps::QueryGraph q = generator.Generate(template_kind, rng);
  sim::Cluster cluster = HeterogeneousCluster();

  EnumerationConfig config;
  config.num_candidates = 30;
  config.seed = seed;
  const std::vector<sim::Placement> candidates =
      EnumerateCandidates(q, cluster, config);
  EXPECT_FALSE(candidates.empty());
  for (const sim::Placement& p : candidates) {
    EXPECT_EQ(CheckPlacementRules(q, cluster, p), "")
        << "template " << template_index << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TemplatesAndSeeds, EnumerationPropertyTest,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 5)));

TEST(EnumerationTest, CandidatesAreDistinct) {
  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(3);
  const dsps::QueryGraph q =
      generator.Generate(workload::QueryTemplate::kLinear, rng);
  sim::Cluster cluster = HeterogeneousCluster();
  EnumerationConfig config;
  config.num_candidates = 20;
  const auto candidates = EnumerateCandidates(q, cluster, config);
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      EXPECT_NE(candidates[i], candidates[j]);
    }
  }
}

TEST(EnumerationTest, SingleNodeClusterStillEnumerates) {
  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(4);
  const dsps::QueryGraph q =
      generator.Generate(workload::QueryTemplate::kLinear, rng);
  sim::Cluster cluster;
  cluster.nodes.push_back({400.0, 8000.0, 1000.0, 5.0});
  EnumerationConfig config;
  config.num_candidates = 10;
  const auto candidates = EnumerateCandidates(q, cluster, config);
  ASSERT_EQ(candidates.size(), 1u);
  for (int node : candidates[0]) EXPECT_EQ(node, 0);
}

// A stub regression model: the optimizer's behavior is tested against a
// quickly trained tiny model (the full-quality path is covered by the
// integration test and benches).
core::Ensemble TinyTargetEnsemble(const std::vector<workload::TraceRecord>& records) {
  core::CostModelConfig config;
  config.hidden_dim = 8;
  core::Ensemble ensemble(config, 1);
  auto samples =
      workload::ToTrainSamples(records, sim::Metric::kProcessingLatency);
  core::TrainConfig tc;
  tc.epochs = 3;
  ensemble.Train(samples, {}, tc);
  return ensemble;
}

TEST(OptimizerTest, ReturnsValidRuleConformingPlacement) {
  workload::CorpusConfig cc;
  cc.num_queries = 60;
  cc.seed = 5;
  const auto records = workload::BuildCorpus(cc);
  core::Ensemble target = TinyTargetEnsemble(records);

  PlacementOptimizer optimizer(&target, nullptr, nullptr);
  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(6);
  const dsps::QueryGraph q =
      generator.Generate(workload::QueryTemplate::kLinear, rng);
  sim::Cluster cluster = HeterogeneousCluster();
  OptimizerConfig config;
  config.enumeration.num_candidates = 20;
  const OptimizerResult result = optimizer.Optimize(q, cluster, config);
  EXPECT_EQ(CheckPlacementRules(q, cluster, result.best), "");
  EXPECT_GT(result.candidates_evaluated, 0);
}

TEST(OptimizerTest, PicksCandidateWithLowestPredictedCost) {
  workload::CorpusConfig cc;
  cc.num_queries = 60;
  cc.seed = 7;
  const auto records = workload::BuildCorpus(cc);
  core::Ensemble target = TinyTargetEnsemble(records);

  PlacementOptimizer optimizer(&target, nullptr, nullptr);
  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(8);
  const dsps::QueryGraph q =
      generator.Generate(workload::QueryTemplate::kLinear, rng);
  sim::Cluster cluster = HeterogeneousCluster();
  OptimizerConfig config;
  config.enumeration.num_candidates = 15;
  config.enumeration.seed = 9;
  const OptimizerResult result = optimizer.Optimize(q, cluster, config);

  // Re-enumerate with the same seed: the chosen placement must be the
  // argmin of the predictions.
  const auto candidates = EnumerateCandidates(q, cluster, config.enumeration);
  double best = std::numeric_limits<double>::infinity();
  sim::Placement best_placement;
  for (const auto& candidate : candidates) {
    const double cost = optimizer.PredictTarget(q, cluster, candidate);
    if (cost < best) {
      best = cost;
      best_placement = candidate;
    }
  }
  EXPECT_EQ(result.best, best_placement);
  EXPECT_NEAR(result.predicted_cost, best, 1e-9);
}

TEST(OptimizerTest, ThroughputTargetMaximizes) {
  workload::CorpusConfig cc;
  cc.num_queries = 60;
  cc.seed = 10;
  const auto records = workload::BuildCorpus(cc);
  core::CostModelConfig mc;
  mc.hidden_dim = 8;
  core::Ensemble target(mc, 1);
  auto samples = workload::ToTrainSamples(records, sim::Metric::kThroughput);
  core::TrainConfig tc;
  tc.epochs = 3;
  target.Train(samples, {}, tc);

  PlacementOptimizer optimizer(&target, nullptr, nullptr);
  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(11);
  const dsps::QueryGraph q =
      generator.Generate(workload::QueryTemplate::kLinear, rng);
  sim::Cluster cluster = HeterogeneousCluster();
  OptimizerConfig config;
  config.target = sim::Metric::kThroughput;
  config.enumeration.num_candidates = 15;
  const OptimizerResult result = optimizer.Optimize(q, cluster, config);

  const auto candidates = EnumerateCandidates(q, cluster, config.enumeration);
  for (const auto& candidate : candidates) {
    EXPECT_LE(optimizer.PredictTarget(q, cluster, candidate),
              result.predicted_cost + 1e-9);
  }
}

TEST(OptimizerDeathTest, RejectsClassificationTarget) {
  core::CostModelConfig mc;
  mc.head = core::HeadKind::kClassification;
  core::Ensemble classifier(mc, 1);
  EXPECT_DEATH(PlacementOptimizer(&classifier, nullptr, nullptr),
               "COSTREAM_CHECK");
}

}  // namespace
}  // namespace costream::placement
