// Geo-distributed topology coverage: per-link WAN matrices on the cluster,
// link-level congestion shared across co-routed flows in both engines, DES
// per-instance scheduling for parallelism > 1, and — critically — bitwise
// preservation of legacy (no-link-matrix, single-server) behavior: every new
// code path is gated, so clusters without matrices and configs without
// per-instance scheduling must reproduce the pre-extension numbers exactly.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dsps/query_builder.h"
#include "nn/random.h"
#include "placement/enumeration.h"
#include "sim/des.h"
#include "sim/fluid_engine.h"
#include "sim/geo.h"
#include "workload/generator.h"

namespace costream::sim {
namespace {

using dsps::DataType;
using dsps::FilterFunction;
using dsps::QueryBuilder;
using dsps::QueryGraph;

// --- Link matrix plumbing ----------------------------------------------------

TEST(GeoClusterTest, LinkAccessorsFallBackToNodeNics) {
  Cluster cluster{{HardwareNode{100.0, 4000.0, 100.0, 10.0},
                   HardwareNode{800.0, 16000.0, 1000.0, 1.0}}};
  EXPECT_FALSE(cluster.has_link_matrix());
  EXPECT_EQ(cluster.LinkBandwidthMbits(0, 1), 100.0);
  EXPECT_EQ(cluster.LinkLatencyMs(0, 1), 10.0);
  EXPECT_EQ(cluster.LinkBandwidthMbits(1, 0), 1000.0);
  EXPECT_EQ(cluster.LinkLatencyMs(1, 0), 1.0);
  EXPECT_EQ(ValidateLinkMatrix(cluster), "");
}

TEST(GeoClusterTest, ApplyGeoRegionsBuildsValidWanMatrix) {
  Cluster cluster{{HardwareNode{50.0, 2000.0, 25.0, 20.0},
                   HardwareNode{200.0, 8000.0, 200.0, 5.0},
                   HardwareNode{800.0, 16000.0, 1000.0, 1.0}}};
  GeoWanProfile wan;
  wan.wan_bandwidth_mbits = 100.0;
  wan.wan_latency_ms = 60.0;
  ApplyGeoRegions({0, 0, 1}, wan, &cluster);
  ASSERT_TRUE(cluster.has_link_matrix());
  EXPECT_EQ(ValidateLinkMatrix(cluster), "");
  // Same region: the sender's NIC values, untouched.
  EXPECT_EQ(cluster.LinkBandwidthMbits(0, 1), 25.0);
  EXPECT_EQ(cluster.LinkLatencyMs(0, 1), 20.0);
  // Cross region: bandwidth capped by the WAN, latency stacked on top.
  EXPECT_EQ(cluster.LinkBandwidthMbits(0, 2), 25.0);   // NIC below WAN cap
  EXPECT_EQ(cluster.LinkBandwidthMbits(1, 2), 100.0);  // WAN caps the NIC
  EXPECT_EQ(cluster.LinkLatencyMs(1, 2), 65.0);
  EXPECT_EQ(cluster.LinkBandwidthMbits(2, 0), 100.0);
  EXPECT_EQ(cluster.LinkLatencyMs(2, 0), 61.0);
}

TEST(GeoClusterTest, MakeGeoClusterLayoutAndTiers) {
  GeoClusterConfig config;  // 2 regions x (2 edge + 1 fog) + 2 cloud
  const Cluster cluster = MakeGeoCluster(config);
  ASSERT_EQ(cluster.num_nodes(), 8);
  ASSERT_TRUE(cluster.has_link_matrix());
  EXPECT_EQ(ValidateLinkMatrix(cluster), "");
  EXPECT_EQ(GeoTierOf(config, 0), GeoTier::kEdge);
  EXPECT_EQ(GeoTierOf(config, 2), GeoTier::kFog);
  EXPECT_EQ(GeoTierOf(config, 3), GeoTier::kEdge);
  EXPECT_EQ(GeoTierOf(config, 6), GeoTier::kCloud);
  EXPECT_EQ(GeoTierOf(config, 7), GeoTier::kCloud);
  // Edge -> local fog keeps the edge NIC; edge -> remote anything is WAN.
  EXPECT_EQ(cluster.LinkBandwidthMbits(0, 2), config.edge.bandwidth_mbits);
  EXPECT_EQ(cluster.LinkLatencyMs(0, 3),
            config.edge.latency_ms + config.wan.wan_latency_ms);
  // Fog -> cloud crosses into the shared cloud region.
  EXPECT_EQ(cluster.LinkBandwidthMbits(2, 6),
            std::min(config.fog.bandwidth_mbits,
                     config.wan.wan_bandwidth_mbits));
  // Cloud nodes talk to each other at full NIC speed.
  EXPECT_EQ(cluster.LinkBandwidthMbits(6, 7), config.cloud.bandwidth_mbits);
}

TEST(GeoClusterTest, ValidateLinkMatrixRejectsMalformed) {
  Cluster cluster{{HardwareNode{100.0, 4000.0, 100.0, 10.0},
                   HardwareNode{800.0, 16000.0, 1000.0, 1.0}}};
  // Only one of the two matrices present.
  cluster.link_bandwidth_mbits = {100.0, 100.0, 100.0, 100.0};
  EXPECT_NE(ValidateLinkMatrix(cluster), "");
  // Wrong size.
  cluster.link_latency_ms = {1.0, 1.0};
  EXPECT_NE(ValidateLinkMatrix(cluster), "");
  // Well-formed.
  cluster.link_latency_ms = {1.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(ValidateLinkMatrix(cluster), "");
  // Off-diagonal bandwidth must be positive and finite.
  cluster.link_bandwidth_mbits[1] = 0.0;
  EXPECT_NE(ValidateLinkMatrix(cluster), "");
  cluster.link_bandwidth_mbits[1] = 100.0;
  cluster.link_latency_ms[2] = -1.0;
  EXPECT_NE(ValidateLinkMatrix(cluster), "");
}

// --- Legacy bitwise preservation ---------------------------------------------

// Exact (hex-float) fluid and DES outputs captured on the pre-extension
// build for legacy clusters. Every new feature in this layer is gated behind
// has_link_matrix() / per_instance_scheduling, so these must stay BITWISE
// identical — any drift means a legacy code path was disturbed.
TEST(GeoLegacyGoldenTest, HandBuiltPipelineIsBitwiseStable) {
  QueryBuilder b;
  auto s = b.Source(1500.0, {DataType::kInt, DataType::kInt, DataType::kInt});
  auto f = b.Filter(s, FilterFunction::kLess, DataType::kInt, 0.6);
  QueryGraph q = b.Sink(f);
  for (int i = 0; i < q.num_operators(); ++i) {
    if (q.op(i).type == dsps::OperatorType::kFilter) {
      q.mutable_op(i).parallelism = 4;
    }
  }
  const Cluster c{{HardwareNode{100, 4000, 100, 10.0},
                   HardwareNode{400, 8000, 400, 5.0},
                   HardwareNode{800, 16000, 1000, 1.0}}};
  const Placement p = {0, 1, 2};

  FluidConfig fc;
  fc.noise_sigma = 0.0;
  const FluidReport fluid = EvaluateFluid(q, c, p, fc);
  EXPECT_EQ(fluid.metrics.throughput, 0x1.c2p+9);
  EXPECT_EQ(fluid.metrics.e2e_latency_ms, 0x1.40ab40bbbf3c4p+5);
  EXPECT_EQ(fluid.metrics.processing_latency_ms, 0x1.e2ad02eefcf0ep+3);
  EXPECT_EQ(fluid.bottleneck_utilization, 0x1.96fa82e87d2c7p-5);
  EXPECT_FALSE(fluid.metrics.backpressure);
  EXPECT_TRUE(fluid.metrics.success);
  EXPECT_TRUE(fluid.link_utilization.empty());  // legacy cluster: no links

  DesConfig dc;
  dc.duration_s = 12.0;
  dc.seed = 42;
  const DesReport des = RunDes(q, c, p, dc);
  EXPECT_EQ(des.metrics.throughput, 0x1.c2c0ed917aa3p+9);
  EXPECT_EQ(des.metrics.e2e_latency_ms, 0x1.e19a29838c20dp+3);
  EXPECT_EQ(des.metrics.processing_latency_ms, 0x1.e19210385c861p+3);
  ASSERT_FALSE(des.node_peak_memory_mb.empty());
  EXPECT_EQ(des.node_peak_memory_mb[0], 0x1.b8002dp+7);
  EXPECT_FALSE(des.metrics.backpressure);
  EXPECT_TRUE(des.metrics.success);
  EXPECT_EQ(des.events_processed, 94004u);
  EXPECT_EQ(des.sink_tuples, 10818u);
}

TEST(GeoLegacyGoldenTest, GeneratorCorpusCasesAreBitwiseStable) {
  struct Golden {
    double fluid_thr, fluid_lat, fluid_plat, fluid_util;
    bool fluid_bp, fluid_ok;
    double des_thr, des_lat, des_plat;
    bool des_bp, des_ok;
    uint64_t des_events, des_sink;
  };
  const Golden golden[3] = {
      {0x1.6f13b072e7cb6p+6, 0x1.008d7322b52cap+10, 0x1.f49ae6456a595p+9,
       0x1.0b630a915379fp-6, false, true, 0x1.e755555555555p+5,
       0x1.3cca25a8c673dp+9, 0x1.3cc9fc07d2625p+9, false, true, 13292u, 731u},
      {0x1.9bbf0c0f4bbf6p+2, 0x1.cc9bb6edbf0d5p+14, 0x1.cc37b6edbf0d5p+14,
       0x1.c432ca57a786cp-5, false, true, 0x1.20007dd960303p+1,
       0x1.c6babf1a1f597p+12, 0x1.c6ba9fea5c16ap+12, false, true, 56568u,
       27u},
      {0x1.b28215023398dp-13, 0x1.1f8a8dcf3c4b3p+9, 0x1.130a8dcf3c4b3p+9,
       0x1.a3f4666ec9e23p-6, false, false, 0x0p+0, 0x1.76f7fbc73fb2fp+13,
       0x1.76f7fbc73fb2fp+13, false, false, 57072u, 0u},
  };

  const workload::QueryGenerator gen{workload::GeneratorConfig{}};
  const workload::QueryTemplate templates[] = {
      workload::QueryTemplate::kLinear, workload::QueryTemplate::kTwoWayJoin,
      workload::QueryTemplate::kThreeWayJoin};
  nn::Rng rng(90210);
  for (int i = 0; i < 3; ++i) {
    SCOPED_TRACE("gen case " + std::to_string(i));
    const QueryGraph query = gen.Generate(templates[i % 3], rng);
    const Cluster cluster = gen.GenerateCluster(rng);
    ASSERT_FALSE(cluster.has_link_matrix());  // geo_probability defaults to 0
    const auto bins = placement::CapabilityBins(cluster);
    const Placement placed =
        placement::SamplePlacement(query, cluster, bins, rng);

    FluidConfig fc;
    fc.noise_sigma = 0.0;
    const FluidReport fluid = EvaluateFluid(query, cluster, placed, fc);
    EXPECT_EQ(fluid.metrics.throughput, golden[i].fluid_thr);
    EXPECT_EQ(fluid.metrics.e2e_latency_ms, golden[i].fluid_lat);
    EXPECT_EQ(fluid.metrics.processing_latency_ms, golden[i].fluid_plat);
    EXPECT_EQ(fluid.bottleneck_utilization, golden[i].fluid_util);
    EXPECT_EQ(fluid.metrics.backpressure, golden[i].fluid_bp);
    EXPECT_EQ(fluid.metrics.success, golden[i].fluid_ok);

    DesConfig dc;
    dc.duration_s = 12.0;
    dc.seed = 5000 + static_cast<uint64_t>(i);
    const DesReport des = RunDes(query, cluster, placed, dc);
    EXPECT_EQ(des.metrics.throughput, golden[i].des_thr);
    EXPECT_EQ(des.metrics.e2e_latency_ms, golden[i].des_lat);
    EXPECT_EQ(des.metrics.processing_latency_ms, golden[i].des_plat);
    EXPECT_EQ(des.metrics.backpressure, golden[i].des_bp);
    EXPECT_EQ(des.metrics.success, golden[i].des_ok);
    EXPECT_EQ(des.events_processed, golden[i].des_events);
    EXPECT_EQ(des.sink_tuples, golden[i].des_sink);
  }
}

// --- Link congestion in both engines -----------------------------------------

// Two flows routed over the same directed node pair share one link: choking
// that link must drive both engines into backpressure, while the same
// workload over an unconstrained link runs clean. The per-node NICs are
// identical in both cases — only the link matrix differs — so this isolates
// the per-link model.
TEST(GeoDesVsFluidTest, SharedLinkCongestionDetectedByBothEngines) {
  auto make_query = [] {
    QueryBuilder b;
    auto s1 = b.Source(2000.0, {DataType::kInt, DataType::kInt});
    auto s2 = b.Source(2000.0, {DataType::kInt, DataType::kInt});
    dsps::WindowSpec w;
    w.policy = dsps::WindowPolicy::kCountBased;
    w.type = dsps::WindowType::kTumbling;
    w.size = 40;
    w.slide = 40;
    auto joined = b.WindowedJoin(s1, s2, w, DataType::kInt, 0.01);
    return b.Sink(joined);
  };
  Cluster cluster{{HardwareNode{800.0, 16000.0, 1000.0, 1.0},
                   HardwareNode{800.0, 16000.0, 1000.0, 1.0}}};
  QueryGraph q = make_query();
  // Both sources on node 0, join machinery and sink on node 1: both source
  // flows traverse the directed link 0 -> 1.
  Placement p(q.num_operators(), 1);
  for (int i = 0; i < q.num_operators(); ++i) {
    if (q.op(i).type == dsps::OperatorType::kSource) p[i] = 0;
  }

  FluidConfig fc;
  fc.noise_sigma = 0.0;
  DesConfig dc;
  dc.duration_s = 10.0;
  dc.seed = 11;

  // Wide link: clean run in both engines.
  ApplyGeoRegions({0, 0}, GeoWanProfile{}, &cluster);
  const FluidReport fluid_wide = EvaluateFluid(q, cluster, p, fc);
  const DesReport des_wide = RunDes(q, cluster, p, dc);
  EXPECT_FALSE(fluid_wide.metrics.backpressure);
  EXPECT_FALSE(des_wide.metrics.backpressure);
  ASSERT_EQ(fluid_wide.link_utilization.size(), 4u);
  EXPECT_GT(fluid_wide.link_utilization[0 * 2 + 1], 0.0);

  // Choked link: each flow alone would fit, together they exceed the link.
  const double flow_mbits = fluid_wide.link_utilization[0 * 2 + 1] * 1000.0;
  ASSERT_GT(flow_mbits, 0.0);
  GeoWanProfile chokepoint;
  chokepoint.wan_bandwidth_mbits = flow_mbits * 0.7;  // < sum, > each half
  chokepoint.wan_latency_ms = 5.0;
  ApplyGeoRegions({0, 1}, chokepoint, &cluster);
  const FluidReport fluid_choked = EvaluateFluid(q, cluster, p, fc);
  const DesReport des_choked = RunDes(q, cluster, p, dc);
  EXPECT_TRUE(fluid_choked.metrics.backpressure);
  EXPECT_TRUE(des_choked.metrics.backpressure);
  EXPECT_LT(des_choked.metrics.throughput, des_wide.metrics.throughput);
}

TEST(GeoDesVsFluidTest, WanLatencyRaisesE2eLatencyInBothEngines) {
  QueryBuilder b;
  auto s = b.Source(200.0, {DataType::kInt});
  QueryGraph q = b.Sink(s);
  Cluster cluster{{HardwareNode{400.0, 8000.0, 1000.0, 2.0},
                   HardwareNode{800.0, 16000.0, 1000.0, 1.0}}};
  const Placement split = {0, 1};

  FluidConfig fc;
  fc.noise_sigma = 0.0;
  DesConfig dc;
  dc.duration_s = 10.0;

  Cluster near = cluster;
  ApplyGeoRegions({0, 0}, GeoWanProfile{}, &near);
  Cluster far = cluster;
  GeoWanProfile wan;
  wan.wan_latency_ms = 120.0;
  ApplyGeoRegions({0, 1}, wan, &far);

  const double fluid_near =
      EvaluateFluid(q, near, split, fc).metrics.processing_latency_ms;
  const double fluid_far =
      EvaluateFluid(q, far, split, fc).metrics.processing_latency_ms;
  const double des_near = RunDes(q, near, split, dc).metrics.processing_latency_ms;
  const double des_far = RunDes(q, far, split, dc).metrics.processing_latency_ms;
  EXPECT_LT(fluid_near, fluid_far);
  EXPECT_LT(des_near, des_far);
  // The increase is the added WAN propagation delay in both engines.
  EXPECT_NEAR(fluid_far - fluid_near, 120.0, 30.0);
  EXPECT_NEAR(des_far - des_near, 120.0, 30.0);
}

// --- DES per-instance scheduling ---------------------------------------------

struct ParScenario {
  QueryGraph query;
  Cluster cluster;
  Placement placement;
};

ParScenario ParallelFilter(double rate, double sel, double cpu, int par) {
  QueryBuilder b;
  // String-heavy tuples keep per-tuple cost high enough that the calibrated
  // boundary rates stay in DES-tractable territory.
  auto s = b.Source(rate, {DataType::kString, DataType::kString,
                           DataType::kString, DataType::kString,
                           DataType::kString, DataType::kString,
                           DataType::kInt});
  auto f = b.Filter(s, FilterFunction::kStartsWith, DataType::kString, sel);
  QueryGraph q = b.Sink(f);
  // Parallelism on every operator: the whole chain scales with `par`, so
  // saturation is governed by multi-instance scheduling (a lone parallel
  // filter would leave the single-instance source as the bottleneck and the
  // sweep would never exercise parallelism).
  for (int i = 0; i < q.num_operators(); ++i) {
    q.mutable_op(i).parallelism = par;
  }
  Cluster cluster{{HardwareNode{cpu, 16000.0, 10000.0, 1.0}}};
  Placement placement(q.num_operators(), 0);
  return ParScenario{std::move(q), std::move(cluster), std::move(placement)};
}

// Per-instance scheduling serves one tuple at one instance-share of the
// operator's cores instead of funneling the whole effective-core budget into
// a single fast server. Capacity (cap * share = effective cores) is
// unchanged — throughput must still agree with the fluid model — but a
// single tuple's service time is honest, so processing latency cannot be
// below the legacy single-server approximation at low load.
TEST(GeoDesVsFluidTest, PerInstanceSchedulingKeepsFluidCapacity) {
  const ParScenario s = ParallelFilter(3000.0, 0.6, 400.0, 4);
  FluidConfig fc;
  fc.noise_sigma = 0.0;
  const FluidReport fluid =
      EvaluateFluid(s.query, s.cluster, s.placement, fc);
  ASSERT_FALSE(fluid.metrics.backpressure);

  DesConfig legacy;
  legacy.duration_s = 20.0;
  legacy.seed = 21;
  const DesReport des_legacy = RunDes(s.query, s.cluster, s.placement, legacy);

  DesConfig per_instance = legacy;
  per_instance.per_instance_scheduling = true;
  const DesReport des_pi = RunDes(s.query, s.cluster, s.placement,
                                  per_instance);

  for (const DesReport* des : {&des_legacy, &des_pi}) {
    EXPECT_FALSE(des->metrics.backpressure);
    EXPECT_TRUE(des->metrics.success);
    const double ratio = fluid.metrics.throughput /
                         std::max(des->metrics.throughput, 1e-9);
    EXPECT_LT(ratio, 1.25);
    EXPECT_GT(ratio, 1.0 / 1.25);
  }
  EXPECT_GE(des_pi.metrics.processing_latency_ms,
            des_legacy.metrics.processing_latency_ms);
}

// Backpressure boundary with parallelism > 1 under per-instance scheduling
// (the regime the legacy single-server DES could not schedule truthfully).
// Integer cores and par <= cores put every instance at exactly speed 1, so
// DES capacity equals fluid capacity and the labels must agree outside a
// ±5% deadband around saturation, by majority inside it.
TEST(GeoDesVsFluidTest, ParallelBackpressureBoundarySweep) {
  struct Combo {
    double cpu;
    int par;
  };
  const Combo combos[] = {{200.0, 2}, {400.0, 4}};

  int deadband_checked = 0;
  int deadband_agree = 0;
  for (const Combo& combo : combos) {
    FluidConfig fc;
    fc.noise_sigma = 0.0;
    const ParScenario probe =
        ParallelFilter(1000.0, 1.0, combo.cpu, combo.par);
    const double u0 =
        EvaluateFluid(probe.query, probe.cluster, probe.placement, fc)
            .bottleneck_utilization;
    ASSERT_GT(u0, 0.0);

    for (int step = 0; step <= 10; ++step) {
      const double target = 0.9 + 0.02 * step;
      const double rate = 1000.0 * target / u0;
      SCOPED_TRACE("cpu " + std::to_string(combo.cpu) + " par " +
                   std::to_string(combo.par) + " target " +
                   std::to_string(target));
      const ParScenario s = ParallelFilter(rate, 1.0, combo.cpu, combo.par);
      const FluidReport fluid =
          EvaluateFluid(s.query, s.cluster, s.placement, fc);
      EXPECT_NEAR(fluid.bottleneck_utilization, target, 0.01);

      DesConfig dc;
      dc.duration_s = 10.0;
      dc.seed = 8000 + static_cast<uint64_t>(step);
      dc.per_instance_scheduling = true;
      const DesReport des = RunDes(s.query, s.cluster, s.placement, dc);

      EXPECT_EQ(fluid.metrics.success, des.metrics.success);
      const bool agree =
          fluid.metrics.backpressure == des.metrics.backpressure;
      if (target <= 0.95 || target >= 1.05) {
        EXPECT_TRUE(agree)
            << "fluid bp " << fluid.metrics.backpressure << " des bp "
            << des.metrics.backpressure;
      } else {
        ++deadband_checked;
        if (agree) ++deadband_agree;
      }
    }
  }
  EXPECT_GE(deadband_agree * 2, deadband_checked);
}

// --- Randomized geo sweep ----------------------------------------------------

// The randomized DES-vs-fluid sweep extended past single-instance operators
// and single-tier clusters: every cluster is a multi-region geo topology
// with a per-link WAN matrix, half the operators carry parallelism 2 or 4,
// and the DES runs per-instance scheduling. Same acceptance structure as
// the legacy sweep: labels agree off the saturation boundary, throughput
// ratios stay inside a generous per-case band with a tight median.
TEST(GeoDesVsFluidTest, RandomizedGeoParallelSweepAgrees) {
  constexpr int kNumQueries = 45;
  constexpr double kThroughputBandPerCase = 12.0;
  constexpr double kThroughputBandMedian = 1.6;
  constexpr double kBorderlineLow = 0.7;
  constexpr double kBorderlineHigh = 1.5;

  workload::GeneratorConfig config;
  config.hardware.geo_probability = 1.0;  // every cluster gets a WAN matrix
  config.parallelism_fraction = 0.5;
  config.parallelism_choices = {2, 4};
  const workload::QueryGenerator generator{config};
  const workload::QueryTemplate templates[] = {
      workload::QueryTemplate::kLinear, workload::QueryTemplate::kTwoWayJoin,
      workload::QueryTemplate::kThreeWayJoin};
  nn::Rng rng(4047);

  std::vector<double> ratios;
  int geo_clusters = 0;
  int label_checked = 0;
  int label_agreements = 0;
  for (int i = 0; i < kNumQueries; ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const QueryGraph query = generator.Generate(templates[i % 3], rng);
    const Cluster cluster = generator.GenerateCluster(rng);
    if (cluster.has_link_matrix()) ++geo_clusters;
    const std::vector<int> bins = placement::CapabilityBins(cluster);
    const Placement placed =
        placement::SamplePlacement(query, cluster, bins, rng);

    FluidConfig fluid_config;
    fluid_config.noise_sigma = 0.0;
    const FluidReport fluid =
        EvaluateFluid(query, cluster, placed, fluid_config);
    DesConfig des_config;
    des_config.duration_s = 20.0;
    des_config.seed = 9000 + static_cast<uint64_t>(i);
    des_config.per_instance_scheduling = true;
    const DesReport des = RunDes(query, cluster, placed, des_config);

    const bool borderline = fluid.bottleneck_utilization > kBorderlineLow &&
                            fluid.bottleneck_utilization < kBorderlineHigh;
    if (!borderline) {
      ++label_checked;
      const bool agree =
          fluid.metrics.backpressure == des.metrics.backpressure &&
          fluid.metrics.success == des.metrics.success;
      if (agree) ++label_agreements;
    }
    if (!borderline && fluid.metrics.success && des.metrics.success &&
        !fluid.metrics.backpressure && !des.metrics.backpressure) {
      const double ratio = std::max(fluid.metrics.throughput, 1e-9) /
                           std::max(des.metrics.throughput, 1e-9);
      EXPECT_LT(ratio, kThroughputBandPerCase);
      EXPECT_GT(ratio, 1.0 / kThroughputBandPerCase);
      ratios.push_back(ratio);
    }
  }

  EXPECT_EQ(geo_clusters, kNumQueries);  // geo_probability = 1 is exhaustive
  EXPECT_GE(label_checked, kNumQueries / 2);
  ASSERT_GE(ratios.size(), static_cast<size_t>(kNumQueries / 4));
  std::sort(ratios.begin(), ratios.end());
  const double median = ratios[ratios.size() / 2];
  EXPECT_LT(median, kThroughputBandMedian);
  EXPECT_GT(median, 1.0 / kThroughputBandMedian);
  EXPECT_GE(label_agreements, label_checked * 9 / 10)
      << label_agreements << " of " << label_checked << " label agreements";
}

}  // namespace
}  // namespace costream::sim
