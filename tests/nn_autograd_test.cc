#include "nn/autograd.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/random.h"

namespace costream::nn {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = rng.Uniform(-1.0, 1.0);
  return m;
}

// Finite-difference gradient check: builds the loss via `loss_fn` (which
// must read the parameter via Tape::Leaf) and compares the analytic
// parameter gradient against central differences.
void CheckGradient(Parameter& p,
                   const std::function<Var(Tape&)>& loss_fn,
                   double tolerance = 1e-6) {
  Tape tape;
  Var loss = loss_fn(tape);
  p.ZeroGrad();
  tape.Backward(loss);
  const Matrix analytic = p.grad;

  const double eps = 1e-5;
  for (int i = 0; i < p.value.size(); ++i) {
    const double saved = p.value.data()[i];
    p.value.data()[i] = saved + eps;
    Tape tp;
    const double up = tp.value(loss_fn(tp))(0, 0);
    p.value.data()[i] = saved - eps;
    Tape tm;
    const double down = tm.value(loss_fn(tm))(0, 0);
    p.value.data()[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric,
                tolerance * std::max(1.0, std::fabs(numeric)))
        << "param entry " << i;
  }
}

TEST(AutogradTest, InputHoldsValue) {
  Tape tape;
  Var x = tape.Input(Matrix::Row({1.0, 2.0}));
  EXPECT_EQ(tape.value(x)(0, 1), 2.0);
}

TEST(AutogradTest, MatMulForward) {
  Tape tape;
  Var a = tape.Input(Matrix(2, 2, {1, 2, 3, 4}));
  Var b = tape.Input(Matrix(2, 2, {5, 6, 7, 8}));
  Var y = tape.MatMul(a, b);
  EXPECT_DOUBLE_EQ(tape.value(y)(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(tape.value(y)(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(tape.value(y)(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(tape.value(y)(1, 1), 50.0);
}

TEST(AutogradTest, AddAndSubForward) {
  Tape tape;
  Var a = tape.Input(Matrix::Row({1.0, 2.0}));
  Var b = tape.Input(Matrix::Row({10.0, 20.0}));
  EXPECT_DOUBLE_EQ(tape.value(tape.Add(a, b))(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(tape.value(tape.Sub(a, b))(0, 0), -9.0);
}

TEST(AutogradTest, AddRowBroadcasts) {
  Tape tape;
  Var a = tape.Input(Matrix(2, 2, {1, 2, 3, 4}));
  Var row = tape.Input(Matrix::Row({10.0, 20.0}));
  Var y = tape.AddRow(a, row);
  EXPECT_DOUBLE_EQ(tape.value(y)(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(tape.value(y)(1, 1), 24.0);
}

TEST(AutogradTest, AddNSumsAll) {
  Tape tape;
  Var a = tape.Input(Matrix::Row({1.0}));
  Var b = tape.Input(Matrix::Row({2.0}));
  Var c = tape.Input(Matrix::Row({3.0}));
  EXPECT_DOUBLE_EQ(tape.value(tape.AddN({a, b, c}))(0, 0), 6.0);
}

TEST(AutogradTest, AddNWithSingleInputCopiesValue) {
  Tape tape;
  Var a = tape.Input(Matrix::Row({4.0}));
  Var s = tape.AddN({a});
  // A distinct node, so the gradient is delivered at the sum's tape
  // position (matching SegmentSum), with a bitwise-identical value.
  EXPECT_NE(s.index, a.index);
  EXPECT_EQ(tape.value(s)(0, 0), 4.0);
}

TEST(AutogradTest, ReluClampsNegatives) {
  Tape tape;
  Var a = tape.Input(Matrix::Row({-1.0, 2.0}));
  Var y = tape.Relu(a);
  EXPECT_DOUBLE_EQ(tape.value(y)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(tape.value(y)(0, 1), 2.0);
}

TEST(AutogradTest, SigmoidMidpoint) {
  Tape tape;
  Var a = tape.Input(Matrix::Row({0.0}));
  EXPECT_DOUBLE_EQ(tape.value(tape.Sigmoid(a))(0, 0), 0.5);
}

TEST(AutogradTest, ConcatColsLayout) {
  Tape tape;
  Var a = tape.Input(Matrix::Row({1.0, 2.0}));
  Var b = tape.Input(Matrix::Row({3.0}));
  Var y = tape.ConcatCols(a, b);
  EXPECT_EQ(tape.value(y).cols(), 3);
  EXPECT_DOUBLE_EQ(tape.value(y)(0, 2), 3.0);
}

TEST(AutogradTest, SumAllReducesToScalar) {
  Tape tape;
  Var a = tape.Input(Matrix(2, 2, {1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(tape.value(tape.SumAll(a))(0, 0), 10.0);
}

TEST(AutogradTest, MseLossValue) {
  Tape tape;
  Var p = tape.Input(Matrix::Row({1.0, 3.0}));
  Var loss = tape.MseLoss(p, Matrix::Row({0.0, 1.0}));
  EXPECT_DOUBLE_EQ(tape.value(loss)(0, 0), (1.0 + 4.0) / 2.0);
}

TEST(AutogradTest, BceLossMatchesClosedForm) {
  Tape tape;
  Var z = tape.Input(Matrix::Scalar(0.3));
  Var loss1 = tape.BceWithLogitsLoss(z, 1.0);
  const double expected1 = std::log1p(std::exp(-0.3));
  EXPECT_NEAR(tape.value(loss1)(0, 0), expected1, 1e-12);
  Var loss0 = tape.BceWithLogitsLoss(z, 0.0);
  const double expected0 = 0.3 + std::log1p(std::exp(-0.3));
  EXPECT_NEAR(tape.value(loss0)(0, 0), expected0, 1e-12);
}

TEST(AutogradTest, LeafAccumulatesIntoParameter) {
  Parameter p;
  p.value = Matrix::Row({2.0});
  p.ZeroGrad();
  Tape tape;
  Var x = tape.Leaf(&p);
  Var loss = tape.MseLoss(x, Matrix::Scalar(0.0));
  tape.Backward(loss);
  // d/dp (p^2) = 2p = 4.
  EXPECT_NEAR(p.grad(0, 0), 4.0, 1e-12);
  // A second backward accumulates.
  Tape tape2;
  Var x2 = tape2.Leaf(&p);
  tape2.Backward(tape2.MseLoss(x2, Matrix::Scalar(0.0)));
  EXPECT_NEAR(p.grad(0, 0), 8.0, 1e-12);
}

// --- Gradient checks over random compositions --------------------------------

TEST(AutogradGradCheck, MatMulChain) {
  Rng rng(1);
  Parameter p;
  p.value = RandomMatrix(3, 4, rng);
  const Matrix x = RandomMatrix(1, 3, rng);
  const Matrix target(1, 4);
  CheckGradient(p, [&](Tape& t) {
    return t.MseLoss(t.MatMul(t.Input(x), t.Leaf(&p)), target);
  });
}

TEST(AutogradGradCheck, AddRowBias) {
  Rng rng(2);
  Parameter p;
  p.value = RandomMatrix(1, 4, rng);
  const Matrix x = RandomMatrix(2, 4, rng);
  const Matrix target(2, 4);
  CheckGradient(p, [&](Tape& t) {
    return t.MseLoss(t.AddRow(t.Input(x), t.Leaf(&p)), target);
  });
}

TEST(AutogradGradCheck, ReluComposition) {
  Rng rng(3);
  Parameter p;
  p.value = RandomMatrix(3, 3, rng);
  const Matrix x = RandomMatrix(1, 3, rng);
  const Matrix target(1, 3);
  CheckGradient(p, [&](Tape& t) {
    return t.MseLoss(t.Relu(t.MatMul(t.Input(x), t.Leaf(&p))), target);
  });
}

TEST(AutogradGradCheck, SigmoidComposition) {
  Rng rng(4);
  Parameter p;
  p.value = RandomMatrix(2, 2, rng);
  const Matrix x = RandomMatrix(1, 2, rng);
  Matrix target(1, 2);
  target.Fill(0.3);
  CheckGradient(p, [&](Tape& t) {
    return t.MseLoss(t.Sigmoid(t.MatMul(t.Input(x), t.Leaf(&p))), target);
  });
}

TEST(AutogradGradCheck, TanhComposition) {
  Rng rng(5);
  Parameter p;
  p.value = RandomMatrix(2, 2, rng);
  const Matrix x = RandomMatrix(1, 2, rng);
  const Matrix target(1, 2);
  CheckGradient(p, [&](Tape& t) {
    return t.MseLoss(t.Tanh(t.MatMul(t.Input(x), t.Leaf(&p))), target);
  });
}

TEST(AutogradGradCheck, MulHadamard) {
  Rng rng(6);
  Parameter p;
  p.value = RandomMatrix(1, 4, rng);
  const Matrix x = RandomMatrix(1, 4, rng);
  const Matrix target(1, 4);
  CheckGradient(p, [&](Tape& t) {
    return t.MseLoss(t.Mul(t.Input(x), t.Leaf(&p)), target);
  });
}

TEST(AutogradGradCheck, ScaleAndSub) {
  Rng rng(7);
  Parameter p;
  p.value = RandomMatrix(1, 3, rng);
  const Matrix x = RandomMatrix(1, 3, rng);
  const Matrix target(1, 3);
  CheckGradient(p, [&](Tape& t) {
    Var v = t.Leaf(&p);
    return t.MseLoss(t.Sub(t.Scale(v, 2.5), t.Input(x)), target);
  });
}

TEST(AutogradGradCheck, ConcatBothSides) {
  Rng rng(8);
  Parameter p;
  p.value = RandomMatrix(1, 3, rng);
  const Matrix target(1, 6);
  CheckGradient(p, [&](Tape& t) {
    Var v = t.Leaf(&p);
    return t.MseLoss(t.ConcatCols(v, t.Scale(v, -1.0)), target);
  });
}

TEST(AutogradGradCheck, AddNSharedParameter) {
  Rng rng(9);
  Parameter p;
  p.value = RandomMatrix(1, 2, rng);
  const Matrix target(1, 2);
  CheckGradient(p, [&](Tape& t) {
    Var v = t.Leaf(&p);
    return t.MseLoss(t.AddN({v, v, v}), target);
  });
}

TEST(AutogradGradCheck, SumAllThroughRelu) {
  Rng rng(10);
  Parameter p;
  p.value = RandomMatrix(2, 3, rng);
  CheckGradient(p, [&](Tape& t) {
    Var s = t.SumAll(t.Relu(t.Leaf(&p)));
    return t.MseLoss(s, Matrix::Scalar(1.0));
  });
}

TEST(AutogradGradCheck, BceLogitGradient) {
  Rng rng(11);
  Parameter p;
  p.value = RandomMatrix(2, 1, rng);
  const Matrix x = RandomMatrix(1, 2, rng);
  CheckGradient(p, [&](Tape& t) {
    return t.BceWithLogitsLoss(t.MatMul(t.Input(x), t.Leaf(&p)), 1.0);
  });
}

// Message-passing-like structure: shared MLP applied twice with concat and
// sum, mirroring the COSTREAM forward pass.
TEST(AutogradGradCheck, MessagePassingComposite) {
  Rng rng(12);
  Parameter w;
  w.value = RandomMatrix(4, 2, rng);
  const Matrix a = RandomMatrix(1, 2, rng);
  const Matrix b = RandomMatrix(1, 2, rng);
  const Matrix target(1, 2);
  CheckGradient(w, [&](Tape& t) {
    Var wa = t.Leaf(&w);
    Var ha = t.Input(a);
    Var hb = t.Input(b);
    Var h1 = t.Relu(t.MatMul(t.ConcatCols(ha, hb), wa));
    Var h2 = t.Relu(t.MatMul(t.ConcatCols(h1, hb), wa));
    return t.MseLoss(t.AddN({h1, h2}), target);
  });
}

// Fuzz: random compositions of unary/binary ops over a shared parameter
// must pass the finite-difference check. Exercises gradient accumulation
// through arbitrary reuse patterns.
class AutogradFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AutogradFuzzTest, RandomCompositionGradCheck) {
  Rng rng(1000 + GetParam());
  Parameter p;
  const int dim = rng.Int(2, 4);
  p.value = RandomMatrix(1, dim, rng);
  // Pre-generate constants so the closure is deterministic.
  std::vector<Matrix> constants;
  for (int i = 0; i < 8; ++i) constants.push_back(RandomMatrix(1, dim, rng));
  std::vector<int> ops;
  for (int i = 0; i < 8; ++i) ops.push_back(rng.Int(0, 5));
  const Matrix target(1, dim);

  CheckGradient(p, [&](Tape& t) {
    Var v = t.Leaf(&p);
    Var acc = v;
    for (int i = 0; i < 8; ++i) {
      Var c = t.Input(constants[i]);
      switch (ops[i]) {
        case 0:
          acc = t.Add(acc, c);
          break;
        case 1:
          acc = t.Sub(acc, c);
          break;
        case 2:
          acc = t.Mul(acc, c);
          break;
        case 3:
          acc = t.Tanh(acc);
          break;
        case 4:
          acc = t.Scale(acc, 0.7);
          break;
        case 5:
          acc = t.AddN({acc, v});
          break;
      }
    }
    return t.MseLoss(acc, target);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradFuzzTest, ::testing::Range(0, 12));

TEST(AutogradDeathTest, ShapeMismatchAborts) {
  Tape tape;
  Var a = tape.Input(Matrix::Row({1.0, 2.0}));
  Var b = tape.Input(Matrix::Row({1.0, 2.0, 3.0}));
  EXPECT_DEATH(tape.Add(a, b), "COSTREAM_CHECK");
}

TEST(AutogradDeathTest, BackwardRequiresScalar) {
  Tape tape;
  Var a = tape.Input(Matrix::Row({1.0, 2.0}));
  EXPECT_DEATH(tape.Backward(a), "scalar");
}

}  // namespace
}  // namespace costream::nn
