#include "core/model.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/ensemble.h"
#include "core/trainer.h"
#include "dsps/query_builder.h"

namespace costream::core {
namespace {

using dsps::DataType;
using dsps::FilterFunction;
using dsps::QueryBuilder;
using dsps::QueryGraph;

QueryGraph SmallQuery(double rate, double sel) {
  QueryBuilder b;
  auto s = b.Source(rate, {DataType::kInt, DataType::kInt});
  auto f = b.Filter(s, FilterFunction::kLess, DataType::kInt, sel);
  return b.Sink(f);
}

sim::Cluster SmallCluster() {
  sim::Cluster cluster;
  cluster.nodes.push_back({100.0, 2000.0, 100.0, 10.0});
  cluster.nodes.push_back({800.0, 32000.0, 10000.0, 1.0});
  return cluster;
}

JointGraph SmallGraph(double rate = 800.0, double sel = 0.5,
                      FeaturizationMode mode = FeaturizationMode::kFull) {
  return BuildJointGraph(SmallQuery(rate, sel), SmallCluster(), {0, 1, 1},
                         mode);
}

TEST(CostModelTest, ForwardProducesScalar) {
  CostModel model(CostModelConfig{});
  nn::Tape tape;
  nn::Var out = model.Forward(tape, SmallGraph());
  EXPECT_EQ(tape.value(out).rows(), 1);
  EXPECT_EQ(tape.value(out).cols(), 1);
  EXPECT_TRUE(std::isfinite(tape.value(out)(0, 0)));
}

TEST(CostModelTest, RegressionPredictionNonNegative) {
  CostModel model(CostModelConfig{});
  EXPECT_GE(model.PredictRegression(SmallGraph()), 0.0);
}

TEST(CostModelTest, ProbabilityInUnitInterval) {
  CostModelConfig config;
  config.head = HeadKind::kClassification;
  CostModel model(config);
  const double p = model.PredictProbability(SmallGraph());
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(CostModelTest, DifferentSeedsGiveDifferentPredictions) {
  CostModelConfig a;
  a.seed = 1;
  CostModelConfig b;
  b.seed = 2;
  CostModel ma(a), mb(b);
  EXPECT_NE(ma.PredictRegression(SmallGraph()),
            mb.PredictRegression(SmallGraph()));
}

TEST(CostModelTest, SameSeedIsDeterministic) {
  CostModelConfig config;
  config.seed = 5;
  CostModel a(config), b(config);
  EXPECT_EQ(a.PredictRegression(SmallGraph()),
            b.PredictRegression(SmallGraph()));
}

TEST(CostModelTest, PredictionDependsOnPlacement) {
  CostModel model(CostModelConfig{});
  QueryGraph q = SmallQuery(800.0, 0.5);
  sim::Cluster cluster = SmallCluster();
  const double a =
      model.PredictRegression(BuildJointGraph(q, cluster, {0, 0, 0}));
  const double b =
      model.PredictRegression(BuildJointGraph(q, cluster, {1, 1, 1}));
  EXPECT_NE(a, b);
}

TEST(CostModelTest, OperatorsOnlyModeIgnoresPlacement) {
  CostModelConfig config;
  config.featurization = FeaturizationMode::kOperatorsOnly;
  CostModel model(config);
  QueryGraph q = SmallQuery(800.0, 0.5);
  sim::Cluster cluster = SmallCluster();
  const double a = model.PredictRegression(BuildJointGraph(
      q, cluster, {0, 0, 0}, FeaturizationMode::kOperatorsOnly));
  const double b = model.PredictRegression(BuildJointGraph(
      q, cluster, {1, 1, 1}, FeaturizationMode::kOperatorsOnly));
  EXPECT_EQ(a, b);
}

TEST(CostModelTest, PlacementOnlyModeSeesColocationButNotHardware) {
  CostModelConfig config;
  config.featurization = FeaturizationMode::kPlacementOnly;
  CostModel model(config);
  QueryGraph q = SmallQuery(800.0, 0.5);
  sim::Cluster cluster = SmallCluster();
  // All co-located on node 0 vs all co-located on node 1: identical joint
  // graphs because hardware features are blanked.
  const double a = model.PredictRegression(BuildJointGraph(
      q, cluster, {0, 0, 0}, FeaturizationMode::kPlacementOnly));
  const double b = model.PredictRegression(BuildJointGraph(
      q, cluster, {1, 1, 1}, FeaturizationMode::kPlacementOnly));
  EXPECT_EQ(a, b);
  // But spreading operators across nodes changes the structure.
  const double c = model.PredictRegression(BuildJointGraph(
      q, cluster, {0, 1, 1}, FeaturizationMode::kPlacementOnly));
  EXPECT_NE(a, c);
}

TEST(CostModelTest, TraditionalMessagePassingDiffersFromStaged) {
  CostModelConfig staged;
  staged.seed = 3;
  CostModelConfig traditional;
  traditional.seed = 3;
  traditional.message_passing = MessagePassingMode::kTraditional;
  CostModel ms(staged), mt(traditional);
  // Compare raw model outputs (PredictRegression clamps negatives to 0,
  // which could mask the difference for untrained models).
  const JointGraph g = SmallGraph();
  nn::Tape ta, tb;
  const double a = ta.value(ms.Forward(ta, g))(0, 0);
  const double b = tb.value(mt.Forward(tb, g))(0, 0);
  EXPECT_NE(a, b);
}

TEST(CostModelTest, SnapshotRestoreRoundTrip) {
  CostModel model(CostModelConfig{});
  const JointGraph g = SmallGraph();
  const double before = model.PredictRegression(g);
  const auto snapshot = model.SnapshotParameters();
  // Perturb.
  model.parameters()[0]->value.Fill(0.1);
  EXPECT_NE(model.PredictRegression(g), before);
  model.RestoreParameters(snapshot);
  EXPECT_EQ(model.PredictRegression(g), before);
}

TEST(CostModelTest, SaveLoadRoundTrip) {
  CostModel model(CostModelConfig{});
  const JointGraph g = SmallGraph();
  const double before = model.PredictRegression(g);
  const std::string path = ::testing::TempDir() + "/costream_model.bin";
  ASSERT_TRUE(model.Save(path));
  CostModel loaded(CostModelConfig{});
  ASSERT_TRUE(loaded.Load(path));
  EXPECT_EQ(loaded.PredictRegression(g), before);
  std::remove(path.c_str());
}

TEST(CostModelTest, LoadRejectsDifferentArchitecture) {
  CostModel model(CostModelConfig{});
  const std::string path = ::testing::TempDir() + "/costream_model2.bin";
  ASSERT_TRUE(model.Save(path));
  CostModelConfig other;
  other.hidden_dim = 16;
  CostModel different(other);
  EXPECT_FALSE(different.Load(path));
  std::remove(path.c_str());
}

TEST(EnsembleTest, MembersDifferByInitialization) {
  Ensemble ensemble(CostModelConfig{}, 3);
  const JointGraph g = SmallGraph();
  const double a = ensemble.member(0).PredictRegression(g);
  const double b = ensemble.member(1).PredictRegression(g);
  EXPECT_NE(a, b);
}

TEST(EnsembleTest, RegressionPredictionIsMean) {
  Ensemble ensemble(CostModelConfig{}, 3);
  const JointGraph g = SmallGraph();
  double mean = 0.0;
  for (int i = 0; i < 3; ++i) mean += ensemble.member(i).PredictRegression(g);
  mean /= 3.0;
  EXPECT_NEAR(ensemble.PredictRegression(g), mean, 1e-12);
}

TEST(EnsembleTest, SaveLoadRoundTrip) {
  Ensemble ensemble(CostModelConfig{}, 2);
  const JointGraph g = SmallGraph();
  const double before = ensemble.PredictRegression(g);
  const std::string prefix = ::testing::TempDir() + "/costream_ensemble";
  ASSERT_TRUE(ensemble.Save(prefix));
  Ensemble loaded(CostModelConfig{}, 2);
  ASSERT_TRUE(loaded.Load(prefix));
  EXPECT_EQ(loaded.PredictRegression(g), before);
  for (int i = 0; i < 2; ++i) {
    std::remove((prefix + ".member" + std::to_string(i) + ".bin").c_str());
  }
}

TEST(EnsembleTest, LoadFailsOnMissingFiles) {
  Ensemble ensemble(CostModelConfig{}, 2);
  EXPECT_FALSE(ensemble.Load(::testing::TempDir() + "/does_not_exist"));
}

TEST(EnsembleTest, BinaryPredictionIsMajorityVote) {
  CostModelConfig config;
  config.head = HeadKind::kClassification;
  Ensemble ensemble(config, 3);
  const JointGraph g = SmallGraph();
  int votes = 0;
  for (int i = 0; i < 3; ++i) {
    if (ensemble.member(i).PredictProbability(g) >= 0.5) ++votes;
  }
  EXPECT_EQ(ensemble.PredictBinary(g), votes >= 2);
}

}  // namespace
}  // namespace costream::core
