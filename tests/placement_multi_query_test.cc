// Tests of the multi-query placement support: background load in the fluid
// engine, load aggregation, and the effective-cluster transformation. Load
// bookkeeping routes through the service-layer ClusterLoadLedger — the
// shared state every deployed query registers with — instead of ad-hoc
// accumulation.
#include "placement/multi_query.h"

#include <gtest/gtest.h>

#include "dsps/query_builder.h"
#include "service/load_ledger.h"

namespace costream::placement {
namespace {

using dsps::DataType;
using dsps::FilterFunction;
using dsps::QueryBuilder;
using dsps::QueryGraph;

QueryGraph HeavyQuery() {
  QueryBuilder b;
  auto s = b.Source(12800.0, std::vector<DataType>(8, DataType::kString));
  auto f = b.Filter(s, FilterFunction::kStartsWith, DataType::kString, 0.8);
  return b.Sink(f);
}

QueryGraph LightQuery() {
  QueryBuilder b;
  auto s = b.Source(400.0, {DataType::kInt, DataType::kInt});
  auto f = b.Filter(s, FilterFunction::kLess, DataType::kInt, 0.5);
  return b.Sink(f);
}

sim::Cluster TwoNodeCluster() {
  sim::Cluster cluster;
  cluster.nodes.push_back({400.0, 8000.0, 1000.0, 5.0});
  cluster.nodes.push_back({400.0, 8000.0, 1000.0, 5.0});
  return cluster;
}

sim::FluidConfig Noiseless() {
  sim::FluidConfig config;
  config.noise_sigma = 0.0;
  return config;
}

TEST(BackgroundLoadTest, ComputedLoadIsPositiveWhereOperatorsRun) {
  const QueryGraph q = HeavyQuery();
  const sim::Cluster cluster = TwoNodeCluster();
  const sim::Placement placement(q.num_operators(), 0);
  const sim::BackgroundLoad load =
      sim::ComputeBackgroundLoad(q, cluster, placement);
  ASSERT_EQ(load.cpu_load_us.size(), 2u);
  EXPECT_GT(load.cpu_load_us[0], 0.0);
  EXPECT_EQ(load.cpu_load_us[1], 0.0);
  EXPECT_GT(load.memory_mb[0], 0.0);   // worker base memory at least
  EXPECT_EQ(load.memory_mb[1], 0.0);
}

TEST(BackgroundLoadTest, CrossNodeEdgesProduceNetworkLoad) {
  const QueryGraph q = HeavyQuery();
  const sim::Cluster cluster = TwoNodeCluster();
  const sim::Placement split = {0, 1, 1};
  const sim::BackgroundLoad load =
      sim::ComputeBackgroundLoad(q, cluster, split);
  EXPECT_GT(load.out_bytes_per_s[0], 0.0);
}

TEST(BackgroundLoadTest, BackgroundCausesBackpressureForTheNewQuery) {
  const sim::Cluster cluster = TwoNodeCluster();
  const QueryGraph heavy = HeavyQuery();
  const sim::Placement heavy_placement(heavy.num_operators(), 0);
  const QueryGraph light = LightQuery();
  const sim::Placement light_placement(light.num_operators(), 0);

  // Alone, the light query runs fine on node 0.
  const sim::FluidReport idle =
      sim::EvaluateFluid(light, cluster, light_placement, Noiseless());
  EXPECT_FALSE(idle.metrics.backpressure);

  // Deploy three heavy queries on node 0 into a shared ledger: the node is
  // saturated and the new light query backpressures against the ledger's
  // aggregated demand.
  service::ClusterLoadLedger ledger(cluster);
  const sim::BackgroundLoad one =
      sim::ComputeBackgroundLoad(heavy, cluster, heavy_placement);
  for (int i = 0; i < 3; ++i) ledger.Admit(i, one);
  EXPECT_GT(ledger.NodeUtilization(0), 1.0);

  sim::FluidConfig config = Noiseless();
  config.background = ledger.TotalLoad();
  const sim::FluidReport shared =
      sim::EvaluateFluid(light, cluster, light_placement, config);
  EXPECT_TRUE(shared.metrics.backpressure);
  EXPECT_LT(shared.metrics.throughput, idle.metrics.throughput);
}

TEST(BackgroundLoadTest, AggregateLoadSumsDeployedQueries) {
  const sim::Cluster cluster = TwoNodeCluster();
  const QueryGraph a = HeavyQuery();
  const QueryGraph b = LightQuery();
  const sim::Placement pa(a.num_operators(), 0);
  const sim::Placement pb(b.num_operators(), 1);
  const sim::BackgroundLoad combined =
      AggregateLoad({{&a, &pa}, {&b, &pb}}, cluster);
  const sim::BackgroundLoad la = sim::ComputeBackgroundLoad(a, cluster, pa);
  const sim::BackgroundLoad lb = sim::ComputeBackgroundLoad(b, cluster, pb);
  for (int n = 0; n < 2; ++n) {
    EXPECT_NEAR(combined.cpu_load_us[n],
                la.cpu_load_us[n] + lb.cpu_load_us[n], 1e-9);
    EXPECT_NEAR(combined.memory_mb[n], la.memory_mb[n] + lb.memory_mb[n],
                1e-9);
  }

  // The ledger computes the identical totals (bitwise: both sum the same
  // per-query loads in the same ascending order).
  service::ClusterLoadLedger ledger(cluster);
  ledger.Admit(0, la);
  ledger.Admit(1, lb);
  const sim::BackgroundLoad total = ledger.TotalLoad();
  for (int n = 0; n < 2; ++n) {
    EXPECT_EQ(total.cpu_load_us[n], combined.cpu_load_us[n]);
    EXPECT_EQ(total.out_bytes_per_s[n], combined.out_bytes_per_s[n]);
    EXPECT_EQ(total.memory_mb[n], combined.memory_mb[n]);
  }
  EXPECT_EQ(ledger.CheckInvariants(), "");
}

TEST(EffectiveClusterTest, EmptyBackgroundIsIdentity) {
  const sim::Cluster cluster = TwoNodeCluster();
  const sim::Cluster effective =
      EffectiveCluster(cluster, sim::BackgroundLoad{});
  for (int n = 0; n < 2; ++n) {
    EXPECT_EQ(effective.nodes[n].cpu_pct, cluster.nodes[n].cpu_pct);
  }
}

TEST(EffectiveClusterTest, BusyNodesShrink) {
  const sim::Cluster cluster = TwoNodeCluster();
  const QueryGraph heavy = HeavyQuery();
  const sim::Placement placement(heavy.num_operators(), 0);
  const sim::BackgroundLoad load =
      sim::ComputeBackgroundLoad(heavy, cluster, placement);
  const sim::Cluster effective = EffectiveCluster(cluster, load);
  // Node 0 lost CPU and RAM; node 1 is untouched.
  EXPECT_LT(effective.nodes[0].cpu_pct, cluster.nodes[0].cpu_pct);
  EXPECT_LT(effective.nodes[0].ram_mb, cluster.nodes[0].ram_mb);
  EXPECT_EQ(effective.nodes[1].cpu_pct, cluster.nodes[1].cpu_pct);
  // Capacities never collapse to zero.
  EXPECT_GT(effective.nodes[0].cpu_pct, 0.0);
  EXPECT_GT(effective.nodes[0].ram_mb, 0.0);
}

TEST(EffectiveClusterTest, MatchesLedgerLoadedView) {
  // EffectiveCluster and the ledger's LoadedView are the same
  // transformation (sim::DerateCluster) fed the same totals.
  const sim::Cluster cluster = TwoNodeCluster();
  const QueryGraph heavy = HeavyQuery();
  const sim::Placement placement(heavy.num_operators(), 0);
  const sim::BackgroundLoad load =
      sim::ComputeBackgroundLoad(heavy, cluster, placement);

  service::ClusterLoadLedger ledger(cluster);
  ledger.Admit(42, load);
  const sim::Cluster from_helper = EffectiveCluster(cluster, load);
  const sim::Cluster from_ledger = ledger.LoadedView();
  ASSERT_EQ(from_ledger.num_nodes(), from_helper.num_nodes());
  for (int n = 0; n < from_helper.num_nodes(); ++n) {
    EXPECT_EQ(from_ledger.nodes[n].cpu_pct, from_helper.nodes[n].cpu_pct);
    EXPECT_EQ(from_ledger.nodes[n].ram_mb, from_helper.nodes[n].ram_mb);
    EXPECT_EQ(from_ledger.nodes[n].bandwidth_mbits,
              from_helper.nodes[n].bandwidth_mbits);
    EXPECT_EQ(from_ledger.nodes[n].latency_ms, from_helper.nodes[n].latency_ms);
  }
}

TEST(EffectiveClusterTest, LatencyIsUnaffected) {
  const sim::Cluster cluster = TwoNodeCluster();
  const QueryGraph heavy = HeavyQuery();
  const sim::Placement placement(heavy.num_operators(), 0);
  const sim::BackgroundLoad load =
      sim::ComputeBackgroundLoad(heavy, cluster, placement);
  const sim::Cluster effective = EffectiveCluster(cluster, load);
  EXPECT_EQ(effective.nodes[0].latency_ms, cluster.nodes[0].latency_ms);
}

}  // namespace
}  // namespace costream::placement
