#include "nn/random.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace costream::nn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Int(0, 1000), b.Int(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Int(0, 1'000'000) == b.Int(0, 1'000'000)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, IntInclusiveBounds) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.Int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, LogNormalFactorCentersAroundOne) {
  Rng rng(6);
  double log_sum = 0.0;
  for (int i = 0; i < 5000; ++i) {
    log_sum += std::log(rng.LogNormalFactor(0.1));
  }
  EXPECT_NEAR(log_sum / 5000.0, 0.0, 0.01);
}

TEST(RngTest, ChoiceCoversAllElements) {
  Rng rng(7);
  std::vector<int> values = {10, 20, 30};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    const int v = rng.Choice(values);
    if (v == 10) ++counts[0];
    if (v == 20) ++counts[1];
    if (v == 30) ++counts[2];
  }
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(8);
  std::vector<int> values = {1, 2, 3, 4, 5};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkProducesDistinctStreams) {
  Rng rng(9);
  Rng child1(rng.Fork());
  Rng child2(rng.Fork());
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (child1.Int(0, 1'000'000) == child2.Int(0, 1'000'000)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(10);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

}  // namespace
}  // namespace costream::nn
