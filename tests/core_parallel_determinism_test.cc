// The thread-pool parallel paths must be invisible in the numerics: training
// with num_threads = N produces bitwise-identical parameters to
// num_threads = 1 after every epoch, ensemble predictions are identical, and
// the placement optimizer / enumerator / parallelism tuner return identical
// results for every thread count. These tests are the contract that lets the
// parallel code ship without a tolerance anywhere.
#include <vector>

#include <gtest/gtest.h>

#include "core/ensemble.h"
#include "core/trainer.h"
#include "placement/enumeration.h"
#include "placement/optimizer.h"
#include "placement/parallelism_tuner.h"
#include "workload/corpus.h"

namespace costream {
namespace {

std::vector<workload::TraceRecord> FixedCorpus(int num_queries,
                                               uint64_t seed) {
  workload::CorpusConfig config;
  config.num_queries = num_queries;
  config.seed = seed;
  config.duration_s = 60.0;
  return workload::BuildCorpus(config);
}

void ExpectParamsIdentical(const std::vector<nn::Matrix>& a,
                           const std::vector<nn::Matrix>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].SameShape(b[i]));
    for (int j = 0; j < a[i].size(); ++j) {
      ASSERT_EQ(a[i].data()[j], b[i].data()[j])
          << "param " << i << " entry " << j;
    }
  }
}

TEST(ParallelDeterminismTest, TrainedParametersIdenticalAfterEveryEpoch) {
  const auto records = FixedCorpus(36, 17);
  const auto samples =
      workload::ToTrainSamples(records, sim::Metric::kThroughput);
  ASSERT_GE(samples.size(), 20u);

  core::CostModelConfig model_config;
  model_config.hidden_dim = 16;
  core::CostModel serial_model(model_config);
  core::CostModel parallel_model(model_config);

  // Train epoch by epoch so the parameters can be compared after each one.
  for (int epoch = 0; epoch < 3; ++epoch) {
    core::TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 8;
    tc.seed = 100 + epoch;
    tc.num_threads = 1;
    const core::TrainResult serial =
        core::TrainModel(serial_model, samples, {}, tc);
    tc.num_threads = 4;
    const core::TrainResult parallel =
        core::TrainModel(parallel_model, samples, {}, tc);

    ASSERT_EQ(serial.train_losses.size(), parallel.train_losses.size());
    for (size_t i = 0; i < serial.train_losses.size(); ++i) {
      ASSERT_EQ(serial.train_losses[i], parallel.train_losses[i]);
      ASSERT_EQ(serial.val_losses[i], parallel.val_losses[i]);
    }
    ExpectParamsIdentical(serial_model.SnapshotParameters(),
                          parallel_model.SnapshotParameters());
  }
}

TEST(ParallelDeterminismTest, MultiEpochRunWithValidationIdentical) {
  const auto records = FixedCorpus(30, 23);
  const auto train =
      workload::ToTrainSamples(records, sim::Metric::kProcessingLatency);
  ASSERT_GE(train.size(), 12u);
  const std::vector<core::TrainSample> val(train.begin(), train.begin() + 6);

  core::CostModelConfig model_config;
  model_config.hidden_dim = 16;
  core::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 5;  // exercises a ragged final batch
  tc.seed = 7;

  core::CostModel serial_model(model_config);
  tc.num_threads = 1;
  const core::TrainResult serial = core::TrainModel(serial_model, train, val, tc);
  core::CostModel parallel_model(model_config);
  tc.num_threads = 4;
  const core::TrainResult parallel =
      core::TrainModel(parallel_model, train, val, tc);

  ASSERT_EQ(serial.best_epoch, parallel.best_epoch);
  ASSERT_EQ(serial.best_val_loss, parallel.best_val_loss);
  ASSERT_EQ(serial.train_losses, parallel.train_losses);
  ASSERT_EQ(serial.val_losses, parallel.val_losses);
  ExpectParamsIdentical(serial_model.SnapshotParameters(),
                        parallel_model.SnapshotParameters());
}

TEST(ParallelDeterminismTest, EnsembleTrainingAndPredictionIdentical) {
  const auto records = FixedCorpus(24, 31);
  const auto samples =
      workload::ToTrainSamples(records, sim::Metric::kBackpressure);
  ASSERT_GE(samples.size(), 10u);

  core::CostModelConfig model_config;
  model_config.hidden_dim = 12;
  model_config.head = core::HeadKind::kClassification;

  core::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 8;

  core::Ensemble serial_ensemble(model_config, 3);
  tc.num_threads = 1;
  serial_ensemble.Train(samples, {}, tc);

  core::Ensemble parallel_ensemble(model_config, 3);
  tc.num_threads = 4;
  parallel_ensemble.Train(samples, {}, tc);
  parallel_ensemble.set_num_threads(4);

  for (int i = 0; i < serial_ensemble.size(); ++i) {
    ExpectParamsIdentical(serial_ensemble.member(i).SnapshotParameters(),
                          parallel_ensemble.member(i).SnapshotParameters());
  }
  for (const auto& record : records) {
    const core::JointGraph graph = core::BuildJointGraph(
        record.query, record.cluster, record.placement);
    ASSERT_EQ(serial_ensemble.PredictProbability(graph),
              parallel_ensemble.PredictProbability(graph));
    ASSERT_EQ(serial_ensemble.PredictBinary(graph),
              parallel_ensemble.PredictBinary(graph));
    ASSERT_EQ(serial_ensemble.PredictRegression(graph),
              parallel_ensemble.PredictRegression(graph));
  }
}

TEST(ParallelDeterminismTest, CandidateEnumerationIdentical) {
  const auto records = FixedCorpus(6, 41);
  for (const auto& record : records) {
    placement::EnumerationConfig config;
    config.num_candidates = 25;
    config.num_threads = 1;
    const auto serial =
        placement::EnumerateCandidates(record.query, record.cluster, config);
    config.num_threads = 4;
    const auto parallel =
        placement::EnumerateCandidates(record.query, record.cluster, config);
    ASSERT_EQ(serial, parallel);
  }
}

TEST(ParallelDeterminismTest, OptimizerRankingIdentical) {
  const auto records = FixedCorpus(4, 47);

  core::CostModelConfig regression_config;
  regression_config.hidden_dim = 12;
  core::Ensemble target(regression_config, 2);

  core::CostModelConfig classification_config = regression_config;
  classification_config.head = core::HeadKind::kClassification;
  classification_config.seed = 11;
  core::Ensemble success(classification_config, 2);
  classification_config.seed = 21;
  core::Ensemble backpressure(classification_config, 2);

  const placement::PlacementOptimizer optimizer(&target, &success,
                                                &backpressure);
  for (const auto& record : records) {
    placement::OptimizerConfig config;
    config.enumeration.num_candidates = 30;
    config.num_threads = 1;
    config.enumeration.num_threads = 1;
    const auto serial = optimizer.Optimize(record.query, record.cluster, config);
    config.num_threads = 4;
    config.enumeration.num_threads = 4;
    const auto parallel =
        optimizer.Optimize(record.query, record.cluster, config);

    ASSERT_EQ(serial.best, parallel.best);
    ASSERT_EQ(serial.predicted_cost, parallel.predicted_cost);
    ASSERT_EQ(serial.any_feasible, parallel.any_feasible);
    ASSERT_EQ(serial.candidates_evaluated, parallel.candidates_evaluated);
    ASSERT_EQ(serial.candidates_filtered, parallel.candidates_filtered);
  }
}

TEST(ParallelDeterminismTest, ParallelismTunerIdentical) {
  const auto records = FixedCorpus(3, 53);

  core::CostModelConfig config;
  config.hidden_dim = 12;
  core::Ensemble target(config, 2);

  for (const auto& record : records) {
    placement::ParallelismTunerConfig tuner_config;
    tuner_config.max_rounds = 3;
    tuner_config.num_threads = 1;
    const auto serial = placement::TuneParallelism(
        record.query, record.cluster, record.placement, target, tuner_config);
    tuner_config.num_threads = 4;
    const auto parallel = placement::TuneParallelism(
        record.query, record.cluster, record.placement, target, tuner_config);

    ASSERT_EQ(serial.parallelism, parallel.parallelism);
    ASSERT_EQ(serial.predicted_initial, parallel.predicted_initial);
    ASSERT_EQ(serial.predicted_tuned, parallel.predicted_tuned);
    ASSERT_EQ(serial.changes, parallel.changes);
  }
}

}  // namespace
}  // namespace costream
