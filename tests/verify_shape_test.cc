#include "verify/plan_rules.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/featurizer.h"
#include "core/model.h"
#include "dsps/query_builder.h"
#include "verify/placement_rules.h"
#include "verify/shape_program.h"

namespace costream::verify {
namespace {

using dsps::DataType;
using dsps::FilterFunction;
using dsps::QueryBuilder;
using dsps::QueryGraph;

int CountRule(const VerifyReport& report, std::string_view rule) {
  int n = 0;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == rule) ++n;
  }
  return n;
}

int AddInput(ShapeProgram& p, int rows, int cols) {
  ShapeOp op;
  op.kind = ShapeOp::Kind::kInput;
  op.rows = rows;
  op.cols = cols;
  p.ops.push_back(op);
  return static_cast<int>(p.ops.size()) - 1;
}

// --- TP*: hand-built shape programs -----------------------------------------

TEST(VerifyShapeTest, GemmInnerDimMismatchIsTP001) {
  ShapeProgram p;
  const int x = AddInput(p, 4, 3);
  ShapeOp mul;
  mul.kind = ShapeOp::Kind::kLinear;
  mul.a = x;
  mul.rows = 5;  // weight wants 5 input columns; x has 3
  mul.cols = 2;
  p.ops.push_back(mul);
  VerifyReport report;
  InferShapes(p, &report);
  EXPECT_EQ(CountRule(report, kRuleTapeGemmMismatch), 1);
}

TEST(VerifyShapeTest, ConcatRowMismatchIsTP002) {
  ShapeProgram p;
  const int a = AddInput(p, 4, 3);
  const int b = AddInput(p, 5, 3);
  ShapeOp cat;
  cat.kind = ShapeOp::Kind::kConcatCols;
  cat.a = a;
  cat.b = b;
  p.ops.push_back(cat);
  VerifyReport report;
  InferShapes(p, &report);
  EXPECT_EQ(CountRule(report, kRuleTapeConcatMismatch), 1);
}

TEST(VerifyShapeTest, GatherRowOutOfRangeIsTP003) {
  ShapeProgram p;
  const int x = AddInput(p, 3, 2);
  ShapeOp gather;
  gather.kind = ShapeOp::Kind::kRowGather;
  gather.a = x;
  gather.indices = {0, 3};  // 3 is past the last row
  p.ops.push_back(gather);
  VerifyReport report;
  InferShapes(p, &report);
  EXPECT_EQ(CountRule(report, kRuleTapeGatherRange), 1);
}

TEST(VerifyShapeTest, ScatterRowOutOfRangeIsTP004) {
  ShapeProgram p;
  const int base = AddInput(p, 3, 2);
  const int update = AddInput(p, 1, 2);
  ShapeOp scatter;
  scatter.kind = ShapeOp::Kind::kRowScatter;
  scatter.a = base;
  scatter.b = update;
  scatter.indices = {5};
  p.ops.push_back(scatter);
  VerifyReport report;
  InferShapes(p, &report);
  EXPECT_EQ(CountRule(report, kRuleTapeScatterRange), 1);
}

TEST(VerifyShapeTest, DuplicateScatterTargetIsTP004) {
  ShapeProgram p;
  const int base = AddInput(p, 3, 2);
  const int update = AddInput(p, 2, 2);
  ShapeOp scatter;
  scatter.kind = ShapeOp::Kind::kRowScatter;
  scatter.a = base;
  scatter.b = update;
  scatter.indices = {1, 1};
  p.ops.push_back(scatter);
  VerifyReport report;
  InferShapes(p, &report);
  EXPECT_EQ(CountRule(report, kRuleTapeScatterRange), 1);
}

TEST(VerifyShapeTest, MalformedSegmentOffsetsAreTP005) {
  ShapeProgram p;
  const int x = AddInput(p, 4, 2);
  ShapeOp seg;
  seg.kind = ShapeOp::Kind::kSegmentSum;
  seg.a = x;
  seg.offsets = {0, 2, 2};  // empty second segment
  seg.children = {0, 1};
  p.ops.push_back(seg);
  VerifyReport report;
  InferShapes(p, &report);
  EXPECT_EQ(CountRule(report, kRuleTapeSegmentMalformed), 1);
}

TEST(VerifyShapeTest, AddRowShapeMismatchIsTP006) {
  ShapeProgram p;
  const int x = AddInput(p, 4, 3);
  const int row = AddInput(p, 1, 2);  // wrong width for x
  ShapeOp add;
  add.kind = ShapeOp::Kind::kAddRow;
  add.a = x;
  add.b = row;
  p.ops.push_back(add);
  VerifyReport report;
  InferShapes(p, &report);
  EXPECT_EQ(CountRule(report, kRuleTapeAddRowMismatch), 1);
}

TEST(VerifyShapeTest, NonScalarResultIsTP007) {
  ShapeProgram p;
  p.result = AddInput(p, 2, 2);
  VerifyReport report;
  InferShapes(p, &report);
  EXPECT_EQ(CountRule(report, kRuleTapeResultNotScalar), 1);
}

TEST(VerifyShapeTest, ForwardOperandReferenceIsTP008) {
  ShapeProgram p;
  ShapeOp sum;
  sum.kind = ShapeOp::Kind::kSumRows;
  sum.a = 1;  // references a later op
  p.ops.push_back(sum);
  AddInput(p, 2, 2);
  VerifyReport report;
  InferShapes(p, &report);
  EXPECT_EQ(CountRule(report, kRuleTapeBadOperand), 1);
}

TEST(VerifyShapeTest, FailurePoisonsDependentsWithoutCascading) {
  // One real defect must yield one diagnostic, not an avalanche from every
  // downstream op whose shape became unknown.
  ShapeProgram p;
  const int x = AddInput(p, 4, 3);
  ShapeOp mul;
  mul.kind = ShapeOp::Kind::kLinear;
  mul.a = x;
  mul.rows = 7;
  mul.cols = 2;
  p.ops.push_back(mul);
  ShapeOp sum;
  sum.kind = ShapeOp::Kind::kSumRows;
  sum.a = 1;
  p.ops.push_back(sum);
  p.result = 2;
  VerifyReport report;
  const std::vector<ShapeDim> shapes = InferShapes(p, &report);
  EXPECT_EQ(static_cast<int>(report.diagnostics().size()), 1);
  EXPECT_FALSE(shapes[1].known());
  EXPECT_FALSE(shapes[2].known());
}

// --- JG*/FP*: joint graph and plan fixtures ---------------------------------

struct PlannedFixture {
  core::CostModelConfig config;
  std::unique_ptr<core::CostModel> model;
  core::JointGraph graph;
  core::ForwardPlan plan;
  ModelLayerDims dims;
};

PlannedFixture MakePlanned() {
  PlannedFixture f;
  f.config.hidden_dim = 8;
  f.model = std::make_unique<core::CostModel>(f.config);

  QueryBuilder b;
  const auto src = b.Source(1000.0, {DataType::kInt, DataType::kInt});
  const auto filtered =
      b.Filter(src, FilterFunction::kLess, DataType::kInt, 0.5);
  const QueryGraph query = b.Sink(filtered);
  sim::Cluster cluster;
  cluster.nodes.push_back({400.0, 16000.0, 1000.0, 5.0});
  cluster.nodes.push_back({100.0, 2000.0, 100.0, 25.0});
  f.graph = core::BuildJointGraph(query, cluster, sim::Placement{0, 1, 0},
                                  f.config.featurization);
  f.model->BuildForwardPlan(f.graph, f.plan);
  f.dims = DimsFromModel(*f.model);
  return f;
}

TEST(VerifyShapeTest, RealPlanIsClean) {
  const PlannedFixture f = MakePlanned();
  VerifyReport report;
  VerifyForwardPlan(f.graph, f.plan, f.dims, &report);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.diagnostics().empty()) << report.DebugString();
}

TEST(VerifyShapeTest, DanglingDataflowEdgeIsJG002) {
  PlannedFixture f = MakePlanned();
  f.graph.dataflow_edges.emplace_back(0, 99);
  VerifyReport report;
  VerifyJointGraph(f.graph, &f.dims, &report);
  EXPECT_GE(CountRule(report, kRuleJointDataflowEdge), 1);
}

TEST(VerifyShapeTest, CorruptTopoOrderIsJG004) {
  PlannedFixture f = MakePlanned();
  std::swap(f.graph.topo_order.front(), f.graph.topo_order.back());
  VerifyReport report;
  VerifyJointGraph(f.graph, &f.dims, &report);
  EXPECT_GE(CountRule(report, kRuleJointTopoOrder), 1);
}

TEST(VerifyShapeTest, WrongFeatureWidthIsJG005AndTP001) {
  PlannedFixture f = MakePlanned();
  // Truncate one node's feature vector: JG005 catches it against the encoder
  // input width, and the lowered shape program independently proves the
  // encoder GEMM can no longer run.
  f.graph.nodes[1].features.pop_back();
  VerifyReport report;
  VerifyJointGraph(f.graph, &f.dims, &report);
  EXPECT_GE(CountRule(report, kRuleJointFeatureDim), 1);

  ShapeProgram lowered = BuildPlanProgram(f.graph, f.plan, f.dims);
  VerifyReport shape_report;
  InferShapes(lowered, &shape_report);
  EXPECT_GE(CountRule(shape_report, kRuleTapeGemmMismatch), 1);
}

TEST(VerifyShapeTest, MissingPlacementEdgeIsJG006) {
  PlannedFixture f = MakePlanned();
  f.graph.placement_edges.pop_back();
  VerifyReport report;
  VerifyJointGraph(f.graph, &f.dims, &report);
  EXPECT_GE(CountRule(report, kRuleJointHostCoverage), 1);
}

TEST(VerifyShapeTest, UnbuiltPlanIsFP001) {
  const PlannedFixture f = MakePlanned();
  VerifyReport report;
  VerifyForwardPlan(f.graph, core::ForwardPlan{}, f.dims, &report);
  EXPECT_EQ(CountRule(report, kRulePlanNotReady), 1);
}

TEST(VerifyShapeTest, PlanGraphMismatchIsFP002) {
  PlannedFixture small = MakePlanned();
  // Build a plan for a *larger* query, then verify it against the small
  // graph: the encode partition no longer covers the graph's nodes.
  QueryBuilder b;
  auto stream = b.Source(1000.0, {DataType::kInt, DataType::kInt});
  stream = b.Filter(stream, FilterFunction::kLess, DataType::kInt, 0.5);
  stream = b.Filter(stream, FilterFunction::kGreater, DataType::kInt, 0.5);
  const QueryGraph query = b.Sink(stream);
  sim::Cluster cluster;
  cluster.nodes.push_back({400.0, 16000.0, 1000.0, 5.0});
  const core::JointGraph big = core::BuildJointGraph(
      query, cluster, sim::Placement(query.num_operators(), 0),
      small.config.featurization);
  core::ForwardPlan big_plan;
  small.model->BuildForwardPlan(big, big_plan);

  VerifyReport report;
  VerifyForwardPlan(small.graph, big_plan, small.dims, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(CountRule(report, kRulePlanEncodePartition), 1);
}

}  // namespace
}  // namespace costream::verify
