#include "sim/cost_model.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "nn/random.h"
#include "sim/hardware.h"

namespace costream::sim {
namespace {

using dsps::DataType;
using dsps::OperatorDescriptor;
using dsps::OperatorType;

TEST(CostModelTest, ValueCostOrdering) {
  EXPECT_LT(ValueCostUs(DataType::kInt), ValueCostUs(DataType::kDouble));
  EXPECT_LT(ValueCostUs(DataType::kDouble), ValueCostUs(DataType::kString));
}

TEST(CostModelTest, StringFilterCostsMoreThanIntFilter) {
  OperatorDescriptor f;
  f.type = OperatorType::kFilter;
  f.tuple_width_in = 5.0;
  f.literal_data_type = DataType::kInt;
  const double int_cost = PerTupleCostUs(f);
  f.literal_data_type = DataType::kString;
  f.filter_function = dsps::FilterFunction::kStartsWith;
  const double affix_cost = PerTupleCostUs(f);
  EXPECT_GT(affix_cost, int_cost);
}

TEST(CostModelTest, JoinProbeGrowsWithOppositeWindow) {
  OperatorDescriptor j;
  j.type = OperatorType::kJoin;
  j.tuple_width_in = 4.0;
  j.join_key_type = DataType::kInt;
  EXPECT_LT(PerTupleCostUs(j, 10.0), PerTupleCostUs(j, 10000.0));
}

TEST(CostModelTest, WiderTuplesCostMore) {
  OperatorDescriptor s;
  s.type = OperatorType::kSource;
  s.tuple_width_out = 3.0;
  s.frac_int = 1.0;
  const double narrow = PerTupleCostUs(s);
  s.tuple_width_out = 10.0;
  EXPECT_GT(PerTupleCostUs(s), narrow);
}

TEST(CostModelTest, OnlyStatefulOperatorsHaveOutputCosts) {
  OperatorDescriptor f;
  f.type = OperatorType::kFilter;
  EXPECT_EQ(PerOutputCostUs(f), 0.0);
  OperatorDescriptor j;
  j.type = OperatorType::kJoin;
  j.tuple_width_out = 6.0;
  EXPECT_GT(PerOutputCostUs(j), 0.0);
  OperatorDescriptor a;
  a.type = OperatorType::kAggregate;
  a.tuple_width_out = 2.0;
  EXPECT_GT(PerOutputCostUs(a), 0.0);
}

TEST(CostModelTest, GcSlowdownIsOneBelowPressureStart) {
  EXPECT_EQ(GcSlowdown(100.0, 10000.0), 1.0);
}

TEST(CostModelTest, GcSlowdownMonotoneInMemory) {
  const double ram = 1000.0;
  double prev = 0.0;
  for (double mem = 100.0; mem <= 900.0; mem += 100.0) {
    const double slow = GcSlowdown(mem, ram);
    EXPECT_GE(slow, prev);
    EXPECT_GE(slow, 1.0);
    prev = slow;
  }
}

TEST(CostModelTest, GcSlowdownDecreasesWithMoreRam) {
  EXPECT_GE(GcSlowdown(500.0, 1000.0), GcSlowdown(500.0, 32000.0));
}

TEST(CostModelTest, CrashMemoryScalesWithRam) {
  EXPECT_LT(CrashMemoryMb(1000.0), CrashMemoryMb(32000.0));
  EXPECT_GT(CrashMemoryMb(1000.0), 0.0);
}

TEST(CostModelTest, WindowStateScalesWithTuplesAndBytes) {
  EXPECT_GT(WindowStateMb(1000.0, 200.0), WindowStateMb(100.0, 200.0));
  EXPECT_GT(WindowStateMb(1000.0, 400.0), WindowStateMb(1000.0, 200.0));
  EXPECT_EQ(WindowStateMb(0.0, 200.0), 0.0);
}

// The shared effective-core cap must be bitwise-equal to BOTH formulations
// it replaced: the fluid engine computed max(min(par, cores), 1e-3) and the
// DES computed min(max(cores, 1e-3), par) — provably equal for par >= 1, and
// the helper clamps par below 1 first, so randomized pairs must agree with
// both expressions exactly (this is what keeps the engines' capacity models
// in lockstep).
TEST(EffectiveOpCoresTest, MatchesBothLegacyFormulationsBitwise) {
  nn::Rng rng(424242);
  for (int trial = 0; trial < 2000; ++trial) {
    const int par = rng.Int(1, 12);
    // Mix grid-like values, fractional cores, and tiny/zero capacities.
    const double cpu_pct = trial % 3 == 0
                               ? 100.0 * rng.Int(0, 8)
                               : rng.Uniform(0.0, 900.0);
    const double cores = cpu_pct / 100.0;
    const double fluid_legacy =
        std::max(std::min(static_cast<double>(par), cores), 1e-3);
    const double des_legacy =
        std::min(std::max(cores, 1e-3), static_cast<double>(par));
    const double shared = EffectiveOpCores(par, cpu_pct);
    ASSERT_EQ(shared, fluid_legacy) << "par " << par << " cpu " << cpu_pct;
    ASSERT_EQ(shared, des_legacy) << "par " << par << " cpu " << cpu_pct;
  }
}

// Per-instance decomposition: cap * per-instance speed reconstructs the
// aggregate effective cores exactly, the cap never exceeds parallelism or
// whole cores, and integer-core nodes with par <= cores run every instance
// at exactly speed 1 (the regime where DES capacity equals fluid capacity).
TEST(EffectiveOpCoresTest, InstanceDecompositionInvariants) {
  nn::Rng rng(5150);
  for (int trial = 0; trial < 2000; ++trial) {
    const int par = rng.Int(1, 12);
    const double cpu_pct =
        trial % 2 == 0 ? 100.0 * rng.Int(1, 8) : rng.Uniform(10.0, 900.0);
    const int cap = OperatorInstanceCap(par, cpu_pct);
    const double speed = InstanceServiceCores(par, cpu_pct);
    ASSERT_GE(cap, 1);
    ASSERT_LE(cap, std::max(par, 1));
    ASSERT_LE(cap, std::max(1, static_cast<int>(cpu_pct / 100.0 + 1e-9)));
    ASSERT_DOUBLE_EQ(cap * speed, EffectiveOpCores(par, cpu_pct));
    const bool integer_cores =
        cpu_pct == 100.0 * static_cast<int>(cpu_pct / 100.0 + 1e-9);
    if (integer_cores && par <= static_cast<int>(cpu_pct / 100.0 + 1e-9)) {
      ASSERT_EQ(speed, 1.0) << "par " << par << " cpu " << cpu_pct;
    }
  }
}

TEST(CapabilityScoreTest, StrongerNodesScoreHigher) {
  HardwareNode weak{50.0, 1000.0, 25.0, 160.0};
  HardwareNode strong{800.0, 32000.0, 10000.0, 1.0};
  EXPECT_LT(CapabilityScore(weak), CapabilityScore(strong));
}

TEST(CapabilityScoreTest, EachDimensionContributes) {
  HardwareNode base{200.0, 8000.0, 400.0, 10.0};
  HardwareNode more_cpu = base;
  more_cpu.cpu_pct = 800.0;
  HardwareNode more_ram = base;
  more_ram.ram_mb = 32000.0;
  HardwareNode more_bw = base;
  more_bw.bandwidth_mbits = 10000.0;
  HardwareNode less_lat = base;
  less_lat.latency_ms = 1.0;
  EXPECT_GT(CapabilityScore(more_cpu), CapabilityScore(base));
  EXPECT_GT(CapabilityScore(more_ram), CapabilityScore(base));
  EXPECT_GT(CapabilityScore(more_bw), CapabilityScore(base));
  EXPECT_GT(CapabilityScore(less_lat), CapabilityScore(base));
}

}  // namespace
}  // namespace costream::sim
