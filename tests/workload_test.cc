#include "workload/benchmarks.h"
#include "workload/corpus.h"
#include "workload/generator.h"
#include "workload/grids.h"
#include "workload/trace_io.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

namespace costream::workload {
namespace {

TEST(GridsTest, TrainingGridsMatchTableII) {
  const HardwareGrid hw = HardwareGrid::Training();
  EXPECT_EQ(hw.cpu_pct.size(), 9u);
  EXPECT_EQ(hw.cpu_pct.front(), 50.0);
  EXPECT_EQ(hw.cpu_pct.back(), 800.0);
  EXPECT_EQ(hw.ram_mb.size(), 7u);
  EXPECT_EQ(hw.bandwidth_mbits.size(), 10u);
  EXPECT_EQ(hw.latency_ms.size(), 8u);

  const WorkloadGrid wl = WorkloadGrid::Training();
  EXPECT_EQ(wl.event_rate_linear.size(), 9u);
  EXPECT_EQ(wl.event_rate_linear.back(), 25600.0);
  EXPECT_EQ(wl.event_rate_three_way.size(), 12u);
  EXPECT_EQ(wl.window_count_sizes.back(), 640.0);
  EXPECT_EQ(wl.window_time_sizes.back(), 16.0);
  EXPECT_EQ(wl.filter_functions.size(), 7u);
}

TEST(GridsTest, InterpolationGridAvoidsTrainingValues) {
  const HardwareGrid train = HardwareGrid::Training();
  const HardwareGrid interp = HardwareGrid::Interpolation();
  for (double v : interp.cpu_pct) {
    EXPECT_EQ(std::count(train.cpu_pct.begin(), train.cpu_pct.end(), v), 0);
    EXPECT_GE(v, train.cpu_pct.front());
    EXPECT_LE(v, train.cpu_pct.back());
  }
  for (double v : interp.ram_mb) {
    EXPECT_EQ(std::count(train.ram_mb.begin(), train.ram_mb.end(), v), 0);
  }
}

TEST(GeneratorTest, TemplatesProduceValidQueries) {
  QueryGenerator generator(GeneratorConfig{});
  nn::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    for (auto t : {QueryTemplate::kLinear, QueryTemplate::kTwoWayJoin,
                   QueryTemplate::kThreeWayJoin, QueryTemplate::kFilterChain}) {
      const dsps::QueryGraph q = generator.Generate(t, rng);
      EXPECT_EQ(q.Validate(), "") << ToString(t);
    }
  }
}

TEST(GeneratorTest, TemplateShapesAreCorrect) {
  QueryGenerator generator(GeneratorConfig{});
  nn::Rng rng(2);
  const dsps::QueryGraph linear =
      generator.Generate(QueryTemplate::kLinear, rng);
  EXPECT_EQ(linear.Sources().size(), 1u);
  EXPECT_EQ(linear.CountType(dsps::OperatorType::kJoin), 0);

  const dsps::QueryGraph two = generator.Generate(QueryTemplate::kTwoWayJoin, rng);
  EXPECT_EQ(two.Sources().size(), 2u);
  EXPECT_EQ(two.CountType(dsps::OperatorType::kJoin), 1);

  const dsps::QueryGraph three =
      generator.Generate(QueryTemplate::kThreeWayJoin, rng);
  EXPECT_EQ(three.Sources().size(), 3u);
  EXPECT_EQ(three.CountType(dsps::OperatorType::kJoin), 2);
}

TEST(GeneratorTest, TrainingQueriesNeverChainFilters) {
  // Exp 5 requires filter chains to be structurally unseen during training.
  QueryGenerator generator(GeneratorConfig{});
  nn::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    for (auto t : {QueryTemplate::kLinear, QueryTemplate::kTwoWayJoin,
                   QueryTemplate::kThreeWayJoin}) {
      const dsps::QueryGraph q = generator.Generate(t, rng);
      for (const auto& [from, to] : q.edges()) {
        const bool chain =
            q.op(from).type == dsps::OperatorType::kFilter &&
            q.op(to).type == dsps::OperatorType::kFilter;
        EXPECT_FALSE(chain) << ToString(t);
      }
    }
  }
}

TEST(GeneratorTest, FilterChainsHaveRequestedLength) {
  GeneratorConfig config;
  config.filter_chain_length = 3;
  QueryGenerator generator(config);
  nn::Rng rng(4);
  const dsps::QueryGraph q =
      generator.Generate(QueryTemplate::kFilterChain, rng);
  EXPECT_EQ(q.CountType(dsps::OperatorType::kFilter), 3);
  // And they do chain.
  int chained_edges = 0;
  for (const auto& [from, to] : q.edges()) {
    if (q.op(from).type == dsps::OperatorType::kFilter &&
        q.op(to).type == dsps::OperatorType::kFilter) {
      ++chained_edges;
    }
  }
  EXPECT_EQ(chained_edges, 2);
}

TEST(GeneratorTest, FilterCountDistributionRoughlyMatchesPaper) {
  QueryGenerator generator(GeneratorConfig{});
  nn::Rng rng(5);
  std::vector<int> counts(5, 0);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const dsps::QueryGraph q =
        generator.Generate(QueryTemplate::kThreeWayJoin, rng);
    const int f = q.CountType(dsps::OperatorType::kFilter);
    ASSERT_LE(f, 4);
    ++counts[f];
  }
  // 3-way joins support all four positions; expect roughly 35/34/24/6.
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.35, 0.05);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.34, 0.05);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.24, 0.05);
  EXPECT_NEAR(counts[4] / static_cast<double>(n), 0.06, 0.03);
}

TEST(GeneratorTest, EventRatesComeFromTemplateGrid) {
  QueryGenerator generator(GeneratorConfig{});
  const WorkloadGrid grid = WorkloadGrid::Training();
  nn::Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const dsps::QueryGraph q =
        generator.Generate(QueryTemplate::kTwoWayJoin, rng);
    for (int src : q.Sources()) {
      const double rate = q.op(src).input_event_rate;
      EXPECT_NE(std::find(grid.event_rate_two_way.begin(),
                          grid.event_rate_two_way.end(), rate),
                grid.event_rate_two_way.end());
    }
  }
}

TEST(GeneratorTest, ClusterSizesWithinConfiguredBounds) {
  GeneratorConfig config;
  config.min_cluster_nodes = 4;
  config.max_cluster_nodes = 6;
  QueryGenerator generator(config);
  nn::Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    const sim::Cluster cluster = generator.GenerateCluster(rng);
    EXPECT_GE(cluster.num_nodes(), 4);
    EXPECT_LE(cluster.num_nodes(), 6);
  }
}

TEST(CorpusTest, BuildsRequestedNumberOfRecords) {
  CorpusConfig config;
  config.num_queries = 100;
  const auto records = BuildCorpus(config);
  EXPECT_EQ(records.size(), 100u);
  for (const auto& r : records) {
    EXPECT_EQ(r.query.Validate(), "");
    EXPECT_EQ(sim::ValidatePlacement(r.query, r.cluster, r.placement), "");
    EXPECT_TRUE(std::isfinite(r.metrics.throughput));
  }
}

TEST(CorpusTest, DeterministicForSeed) {
  CorpusConfig config;
  config.num_queries = 30;
  config.seed = 99;
  const auto a = BuildCorpus(config);
  const auto b = BuildCorpus(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].metrics.throughput, b[i].metrics.throughput);
    EXPECT_EQ(a[i].placement, b[i].placement);
  }
}

// The tentpole determinism contract: record i's RNG stream derives from
// (seed, i) alone, so generation is bitwise-identical at any thread count.
// Compared through the v2 binary serialization, which is itself bit-exact.
TEST(CorpusTest, ParallelGenerationBitwiseIdentical) {
  CorpusConfig config;
  config.num_queries = 60;
  config.seed = 2024;
  std::map<int, std::string> images;
  for (int threads : {1, 2, 8}) {
    config.num_threads = threads;
    std::ostringstream os;
    SaveTracesV2(os, BuildCorpus(config));
    images[threads] = std::move(os).str();
  }
  EXPECT_FALSE(images[1].empty());
  EXPECT_EQ(images[1], images[2]);
  EXPECT_EQ(images[1], images[8]);
}

TEST(CorpusTest, ParallelFeaturizationMatchesSerial) {
  CorpusConfig config;
  config.num_queries = 80;
  config.seed = 2025;
  const auto records = BuildCorpus(config);
  for (sim::Metric metric :
       {sim::Metric::kThroughput, sim::Metric::kSuccess}) {
    const auto serial = ToTrainSamples(records, metric,
                                       core::FeaturizationMode::kFull, 1);
    const auto parallel = ToTrainSamples(records, metric,
                                         core::FeaturizationMode::kFull, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].regression_target, parallel[i].regression_target);
      EXPECT_EQ(serial[i].label, parallel[i].label);
      ASSERT_EQ(serial[i].graph.nodes.size(), parallel[i].graph.nodes.size());
      for (size_t v = 0; v < serial[i].graph.nodes.size(); ++v) {
        EXPECT_EQ(serial[i].graph.nodes[v].features,
                  parallel[i].graph.nodes[v].features);
      }
    }
    std::vector<std::vector<double>> x1, x8;
    std::vector<double> y1, y8;
    ToFlatDataset(records, metric, &x1, &y1, 1);
    ToFlatDataset(records, metric, &x8, &y8, 8);
    EXPECT_EQ(x1, x8);
    EXPECT_EQ(y1, y8);
  }
}

TEST(CorpusTest, TemplateMixRoughlyMatchesWeights) {
  CorpusConfig config;
  config.num_queries = 2000;
  const auto records = BuildCorpus(config);
  int linear = 0;
  for (const auto& r : records) {
    if (r.template_kind == QueryTemplate::kLinear) ++linear;
  }
  EXPECT_NEAR(linear / 2000.0, 0.35, 0.04);
}

TEST(CorpusTest, RegressionSamplesExcludeFailures) {
  CorpusConfig config;
  config.num_queries = 400;
  const auto records = BuildCorpus(config);
  const auto samples = ToTrainSamples(records, sim::Metric::kThroughput);
  int successes = 0;
  for (const auto& r : records) successes += r.metrics.success;
  EXPECT_EQ(static_cast<int>(samples.size()), successes);
}

TEST(CorpusTest, ClassificationSamplesKeepEverything) {
  CorpusConfig config;
  config.num_queries = 200;
  const auto records = BuildCorpus(config);
  const auto samples = ToTrainSamples(records, sim::Metric::kSuccess);
  EXPECT_EQ(samples.size(), records.size());
}

TEST(CorpusTest, FlatDatasetAlignsWithGraphDataset) {
  CorpusConfig config;
  config.num_queries = 150;
  const auto records = BuildCorpus(config);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  ToFlatDataset(records, sim::Metric::kE2eLatency, &x, &y);
  const auto samples = ToTrainSamples(records, sim::Metric::kE2eLatency);
  ASSERT_EQ(x.size(), samples.size());
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_EQ(y[i], samples[i].regression_target);
  }
}

TEST(SplitTest, PartitionsAreDisjointAndComplete) {
  const SplitIndices split = SplitCorpus(100, 0.8, 0.1, 42);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.val.size(), 10u);
  EXPECT_EQ(split.test.size(), 10u);
  std::set<int> all;
  for (int i : split.train) all.insert(i);
  for (int i : split.val) all.insert(i);
  for (int i : split.test) all.insert(i);
  EXPECT_EQ(all.size(), 100u);
}

TEST(SplitTest, DifferentSeedsShuffleDifferently) {
  const SplitIndices a = SplitCorpus(100, 0.8, 0.1, 1);
  const SplitIndices b = SplitCorpus(100, 0.8, 0.1, 2);
  EXPECT_NE(a.train, b.train);
}

TEST(BenchmarksTest, AllBenchmarkQueriesAreValid) {
  nn::Rng rng(8);
  for (auto kind : {BenchmarkQuery::kAdvertisement,
                    BenchmarkQuery::kSpikeDetection,
                    BenchmarkQuery::kSmartGridGlobal,
                    BenchmarkQuery::kSmartGridLocal}) {
    for (int i = 0; i < 10; ++i) {
      const TraceRecord record =
          MakeBenchmarkTrace(kind, GeneratorConfig{}, rng);
      EXPECT_EQ(record.query.Validate(), "") << ToString(kind);
      EXPECT_EQ(sim::ValidatePlacement(record.query, record.cluster,
                                       record.placement),
                "");
    }
  }
}

TEST(BenchmarksTest, SmartGridUsesUnseenWindowLength) {
  nn::Rng rng(9);
  const TraceRecord record = MakeBenchmarkTrace(
      BenchmarkQuery::kSmartGridGlobal, GeneratorConfig{}, rng);
  bool found_window = false;
  for (int i = 0; i < record.query.num_operators(); ++i) {
    const auto& op = record.query.op(i);
    if (op.type != dsps::OperatorType::kWindow) continue;
    found_window = true;
    EXPECT_GT(op.window.size, WorkloadGrid::Training().window_time_sizes.back());
  }
  EXPECT_TRUE(found_window);
}

TEST(BenchmarksTest, AdvertisementJoinsTwoStreams) {
  nn::Rng rng(10);
  const TraceRecord record = MakeBenchmarkTrace(
      BenchmarkQuery::kAdvertisement, GeneratorConfig{}, rng);
  EXPECT_EQ(record.query.Sources().size(), 2u);
  EXPECT_EQ(record.query.CountType(dsps::OperatorType::kJoin), 1);
  EXPECT_EQ(record.query.CountType(dsps::OperatorType::kFilter), 1);
}

}  // namespace
}  // namespace costream::workload
