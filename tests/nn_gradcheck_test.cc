// Central finite-difference gradient checks of the reverse-mode tape: every
// op used by CostModel::Forward is verified on small dense problems, and the
// full GNN (staged and traditional message passing, both heads) is verified
// end-to-end through a real joint graph. This is the correctness net that
// lets the parallel trainer claim "same gradients, faster".
#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "core/featurizer.h"
#include "core/model.h"
#include "dsps/query_builder.h"
#include "nn/autograd.h"
#include "nn/random.h"

namespace costream::nn {
namespace {

constexpr double kStep = 1e-5;
constexpr double kRelTol = 1e-6;

// Builds the scalar loss on a fresh tape from the current parameter values.
using LossBuilder = std::function<Var(Tape&)>;

double Evaluate(const LossBuilder& builder) {
  Tape tape;
  return tape.value(builder(tape))(0, 0);
}

// Checks d(loss)/d(entry) of every parameter entry against a central finite
// difference, with relative tolerance kRelTol.
void CheckGradients(std::vector<Parameter*> params,
                    const LossBuilder& builder) {
  Tape tape;
  Var loss = builder(tape);
  for (Parameter* p : params) p->ZeroGrad();
  tape.Backward(loss);

  for (size_t k = 0; k < params.size(); ++k) {
    Parameter* p = params[k];
    for (int r = 0; r < p->value.rows(); ++r) {
      for (int c = 0; c < p->value.cols(); ++c) {
        const double saved = p->value(r, c);
        p->value(r, c) = saved + kStep;
        const double up = Evaluate(builder);
        p->value(r, c) = saved - kStep;
        const double down = Evaluate(builder);
        p->value(r, c) = saved;
        const double numeric = (up - down) / (2.0 * kStep);
        const double analytic = p->grad(r, c);
        const double scale =
            std::max({1.0, std::fabs(numeric), std::fabs(analytic)});
        EXPECT_NEAR(analytic, numeric, kRelTol * scale)
            << "param " << k << " entry (" << r << "," << c << ")";
      }
    }
  }
}

// A parameter with deterministic pseudo-random entries. Values stay within
// (-1, 1) and away from ReLU kinks for the chosen seeds.
Parameter MakeParam(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Parameter p;
  p.value = Matrix(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      p.value(r, c) = rng.Uniform(-0.9, 0.9);
    }
  }
  return p;
}

TEST(GradCheckTest, MatMulChain) {
  Parameter a = MakeParam(2, 3, 11);
  Parameter b = MakeParam(3, 4, 12);
  CheckGradients({&a, &b}, [&](Tape& t) {
    return t.SumAll(t.MatMul(t.Leaf(&a), t.Leaf(&b)));
  });
}

TEST(GradCheckTest, AddSubScaleMul) {
  Parameter a = MakeParam(3, 3, 21);
  Parameter b = MakeParam(3, 3, 22);
  CheckGradients({&a, &b}, [&](Tape& t) {
    Var sum = t.Add(t.Leaf(&a), t.Leaf(&b));
    Var diff = t.Sub(sum, t.Scale(t.Leaf(&b), 0.25));
    return t.SumAll(t.Mul(diff, t.Leaf(&a)));
  });
}

TEST(GradCheckTest, AddRowBroadcast) {
  Parameter x = MakeParam(4, 3, 31);
  Parameter row = MakeParam(1, 3, 32);
  CheckGradients({&x, &row}, [&](Tape& t) {
    Var y = t.AddRow(t.Leaf(&x), t.Leaf(&row));
    return t.SumAll(t.Mul(y, y));
  });
}

TEST(GradCheckTest, AddNFanIn) {
  Parameter a = MakeParam(2, 2, 41);
  Parameter b = MakeParam(2, 2, 42);
  Parameter c = MakeParam(2, 2, 43);
  CheckGradients({&a, &b, &c}, [&](Tape& t) {
    Var sum = t.AddN({t.Leaf(&a), t.Leaf(&b), t.Leaf(&c), t.Leaf(&a)});
    return t.SumAll(t.Mul(sum, sum));
  });
}

TEST(GradCheckTest, ConcatCols) {
  Parameter a = MakeParam(3, 2, 51);
  Parameter b = MakeParam(3, 4, 52);
  CheckGradients({&a, &b}, [&](Tape& t) {
    Var cat = t.ConcatCols(t.Leaf(&a), t.Leaf(&b));
    return t.SumAll(t.Mul(cat, cat));
  });
}

TEST(GradCheckTest, RowGatherWithRepeatedRows) {
  Parameter a = MakeParam(4, 3, 55);
  // Row 2 is gathered twice: its gradient accumulates two contributions.
  const std::vector<int> rows = {2, 0, 2, 1};
  CheckGradients({&a}, [&](Tape& t) {
    Var y = t.RowGather(t.Leaf(&a), rows);
    return t.SumAll(t.Mul(y, y));
  });
}

TEST(GradCheckTest, SegmentSumOverEdgeList) {
  Parameter a = MakeParam(4, 2, 56);
  // Three segments over a 4-row source; row 0 feeds two segments, and the
  // multi-child segments exercise the copy-then-add forward path.
  const std::vector<int> offsets = {0, 2, 3, 5};
  const std::vector<int> children = {0, 2, 1, 3, 0};
  CheckGradients({&a}, [&](Tape& t) {
    Var y = t.SegmentSum(t.Leaf(&a), offsets, children);
    return t.SumAll(t.Mul(y, y));
  });
}

TEST(GradCheckTest, RowScatterSplitsGradients) {
  Parameter base = MakeParam(4, 3, 57);
  Parameter update = MakeParam(2, 3, 58);
  // Rows 2 and 0 are replaced (update gradient), rows 1 and 3 pass through
  // (base gradient); the replaced base rows must receive zero gradient.
  const std::vector<int> rows = {2, 0};
  CheckGradients({&base, &update}, [&](Tape& t) {
    Var y = t.RowScatter(t.Leaf(&base), t.Leaf(&update), rows);
    return t.SumAll(t.Mul(y, y));
  });
}

TEST(GradCheckTest, SumRows) {
  Parameter a = MakeParam(5, 3, 59);
  CheckGradients({&a}, [&](Tape& t) {
    Var y = t.SumRows(t.Leaf(&a));
    return t.SumAll(t.Mul(y, y));
  });
}

TEST(GradCheckTest, BatchedMessagePassingStage) {
  // One full batched stage wired exactly like CostModel::ForwardBatched*:
  // segment-sum of neighbour states, gather of own states, concat, a linear
  // update, scatter back into the state matrix, then a readout row sum.
  Parameter state = MakeParam(4, 2, 65);
  Parameter weight = MakeParam(4, 2, 66);
  const std::vector<int> offsets = {0, 2, 3};
  const std::vector<int> children = {0, 1, 3};
  const std::vector<int> rows = {1, 2};
  CheckGradients({&state, &weight}, [&](Tape& t) {
    Var s = t.Leaf(&state);
    Var msg = t.SegmentSum(s, offsets, children);
    Var own = t.RowGather(s, rows);
    Var cat = t.ConcatCols(msg, own);
    Var updated = t.MatMul(cat, t.Leaf(&weight));
    Var next = t.RowScatter(s, updated, rows);
    Var read = t.SumRows(next);
    return t.SumAll(t.Mul(read, read));
  });
}

TEST(GradCheckTest, FusedLinearNoActivation) {
  Parameter x = MakeParam(4, 3, 71);
  Parameter w = MakeParam(3, 5, 72);
  Parameter b = MakeParam(1, 5, 73);
  CheckGradients({&x, &w, &b}, [&](Tape& t) {
    Var y = t.Linear(t.Leaf(&x), t.Leaf(&w), t.Leaf(&b), /*relu=*/false);
    return t.SumAll(t.Mul(y, y));
  });
}

TEST(GradCheckTest, FusedLinearWithRelu) {
  Parameter x = MakeParam(4, 3, 74);
  Parameter w = MakeParam(3, 5, 75);
  Parameter b = MakeParam(1, 5, 76);
  // Nudge the pre-activations away from the relu kink so the central
  // difference never straddles it.
  {
    Tape t;
    Var z = t.AddRow(t.MatMul(t.Leaf(&x), t.Leaf(&w)), t.Leaf(&b));
    const Matrix& zv = t.value(z);
    for (int r = 0; r < zv.rows(); ++r) {
      for (int c = 0; c < zv.cols(); ++c) {
        if (std::fabs(zv(r, c)) < 0.05) {
          b.value(0, c) += zv(r, c) < 0.0 ? -0.1 : 0.1;
        }
      }
    }
  }
  CheckGradients({&x, &w, &b}, [&](Tape& t) {
    Var y = t.Linear(t.Leaf(&x), t.Leaf(&w), t.Leaf(&b), /*relu=*/true);
    return t.SumAll(t.Mul(y, y));
  });
}

TEST(GradCheckTest, FusedLinearMatchesUnfusedChainBitwise) {
  // The fused op promises bitwise identity with MatMul + AddRow + Relu —
  // values, and gradients of every operand — including a wide output that
  // exercises both column-block widths and the scalar tail.
  Parameter x = MakeParam(3, 7, 81);
  Parameter w = MakeParam(7, 21, 82);
  Parameter b = MakeParam(1, 21, 83);
  const auto run = [&](bool fused) {
    Tape t;
    Var y = fused ? t.Linear(t.Leaf(&x), t.Leaf(&w), t.Leaf(&b), true)
                  : t.Relu(t.AddRow(t.MatMul(t.Leaf(&x), t.Leaf(&w)),
                                    t.Leaf(&b)));
    Var loss = t.SumAll(t.Mul(y, y));
    for (Parameter* p : {&x, &w, &b}) p->ZeroGrad();
    t.Backward(loss);
    std::vector<double> out;
    const Matrix& yv = t.value(y);
    out.insert(out.end(), yv.data(), yv.data() + yv.size());
    for (Parameter* p : {&x, &w, &b}) {
      out.insert(out.end(), p->grad.data(), p->grad.data() + p->grad.size());
    }
    return out;
  };
  const std::vector<double> fused = run(true);
  const std::vector<double> unfused = run(false);
  ASSERT_EQ(fused.size(), unfused.size());
  for (size_t i = 0; i < fused.size(); ++i) {
    ASSERT_EQ(fused[i], unfused[i]) << "entry " << i;
  }
}

TEST(GradCheckTest, ReluAwayFromKink) {
  // Entries of MakeParam(…, 61) are bounded away from 0 by more than kStep,
  // so the finite difference never straddles the kink.
  Parameter a = MakeParam(3, 3, 61);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      double& v = a.value(r, c);
      if (std::fabs(v) < 0.05) v = v < 0.0 ? -0.05 : 0.05;
    }
  }
  CheckGradients({&a}, [&](Tape& t) {
    Var y = t.Relu(t.Leaf(&a));
    return t.SumAll(t.Mul(y, y));
  });
}

TEST(GradCheckTest, SigmoidTanh) {
  Parameter a = MakeParam(2, 3, 71);
  CheckGradients({&a}, [&](Tape& t) {
    Var s = t.Sigmoid(t.Leaf(&a));
    Var h = t.Tanh(t.Leaf(&a));
    return t.SumAll(t.Mul(s, h));
  });
}

TEST(GradCheckTest, MseLoss) {
  Parameter a = MakeParam(2, 3, 81);
  Matrix target = MakeParam(2, 3, 82).value;
  CheckGradients({&a}, [&](Tape& t) {
    return t.MseLoss(t.Tanh(t.Leaf(&a)), target);
  });
}

TEST(GradCheckTest, BceWithLogitsBothLabels) {
  for (const double label : {0.0, 1.0}) {
    Parameter a = MakeParam(1, 1, 91);
    CheckGradients({&a}, [&](Tape& t) {
      return t.BceWithLogitsLoss(t.SumAll(t.Leaf(&a)), label);
    });
  }
}

TEST(GradCheckTest, GradientSinkMatchesDirectAccumulation) {
  Parameter a = MakeParam(3, 3, 101);
  Parameter b = MakeParam(3, 3, 102);
  const LossBuilder builder = [&](Tape& t) {
    Var prod = t.MatMul(t.Leaf(&a), t.Leaf(&b));
    return t.SumAll(t.Mul(prod, t.Leaf(&a)));
  };

  a.ZeroGrad();
  b.ZeroGrad();
  {
    Tape tape;
    tape.Backward(builder(tape));
  }
  const Matrix direct_a = a.grad;
  const Matrix direct_b = b.grad;

  GradientSink sink;
  sink.Reset({&a, &b});
  a.ZeroGrad();
  b.ZeroGrad();
  {
    Tape tape;
    tape.Backward(builder(tape), &sink);
  }
  // Leaf gradients went into the sink, not the parameters.
  for (int j = 0; j < a.grad.size(); ++j) {
    EXPECT_EQ(a.grad.data()[j], 0.0);
    EXPECT_EQ(b.grad.data()[j], 0.0);
  }
  sink.FlushToParams();
  for (int j = 0; j < direct_a.size(); ++j) {
    EXPECT_EQ(a.grad.data()[j], direct_a.data()[j]);
    EXPECT_EQ(b.grad.data()[j], direct_b.data()[j]);
  }
}

// ---------------------------------------------------------------------------
// End-to-end gradient checks through the full COSTREAM GNN.

core::JointGraph SmallJointGraph() {
  using dsps::DataType;
  dsps::QueryBuilder b;
  auto s1 = b.Source(900.0, {DataType::kInt, DataType::kDouble});
  auto s2 = b.Source(500.0, {DataType::kInt});
  dsps::WindowSpec w;
  w.policy = dsps::WindowPolicy::kCountBased;
  w.type = dsps::WindowType::kTumbling;
  w.size = 50;
  w.slide = 50;
  auto joined = b.WindowedJoin(s1, s2, w, DataType::kInt, 0.05);
  auto filtered =
      b.Filter(joined, dsps::FilterFunction::kLess, DataType::kInt, 0.4);
  dsps::QueryGraph query = b.Sink(filtered);

  sim::Cluster cluster{{sim::HardwareNode{200.0, 4000.0, 100.0, 8.0},
                        sim::HardwareNode{800.0, 16000.0, 1000.0, 1.0}}};
  sim::Placement placement(query.num_operators(), 0);
  placement[query.num_operators() - 1] = 1;  // sink on the strong node
  return core::BuildJointGraph(query, cluster, placement);
}

void CheckModelGradients(core::MessagePassingMode mode, core::HeadKind head) {
  core::CostModelConfig config;
  config.hidden_dim = 6;  // keeps the finite-difference sweep fast
  config.message_passing = mode;
  config.head = head;
  config.seed = 5;
  core::CostModel model(config);
  const core::JointGraph graph = SmallJointGraph();

  const LossBuilder builder = [&](Tape& t) {
    Var out = model.Forward(t, graph);
    if (head == core::HeadKind::kRegression) {
      return t.MseLoss(out, Matrix::Scalar(4.2));
    }
    return t.BceWithLogitsLoss(out, 1.0);
  };
  CheckGradients(model.parameters(), builder);
}

TEST(GradCheckTest, CostModelStagedRegression) {
  CheckModelGradients(core::MessagePassingMode::kStaged,
                      core::HeadKind::kRegression);
}

TEST(GradCheckTest, CostModelStagedClassification) {
  CheckModelGradients(core::MessagePassingMode::kStaged,
                      core::HeadKind::kClassification);
}

TEST(GradCheckTest, CostModelTraditionalRegression) {
  CheckModelGradients(core::MessagePassingMode::kTraditional,
                      core::HeadKind::kRegression);
}

}  // namespace
}  // namespace costream::nn
