// End-to-end contracts of the cross-request scoring fast path:
//  * pooled workspaces + candidate cache change NO decision bits (fast path
//    on/off and cache on/off replay identical admission scripts),
//  * the async admission queue is deterministic, a batch of one is bitwise
//    identical to a synchronous Admit, and batches replay bitwise,
//  * the quantized ranking tier keeps decisions bitwise thread-count
//    independent and agrees with the full-precision path on most decisions,
//  * the candidate cache actually hits (duplicate co-location patterns and
//    feature-identical nodes are common in enumeration).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "obs/metrics.h"
#include "service/placement_service.h"
#include "service/scoring_engine.h"
#include "workload/corpus.h"

namespace costream::service {
namespace {

sim::Cluster FixtureCluster() {
  // Three tiers of feature-identical nodes: interchangeable-node cache hits
  // are possible by construction (as in a real edge/fog/cloud landscape).
  sim::Cluster cluster;
  for (int i = 0; i < 4; ++i) cluster.nodes.push_back({100.0, 4000.0, 50.0, 40.0});
  for (int i = 0; i < 3; ++i) cluster.nodes.push_back({300.0, 24000.0, 800.0, 10.0});
  for (int i = 0; i < 2; ++i) cluster.nodes.push_back({600.0, 48000.0, 2000.0, 2.0});
  return cluster;
}

core::Ensemble TinyThroughputEnsemble() {
  workload::CorpusConfig cc;
  cc.num_queries = 50;
  cc.seed = 31;
  cc.duration_s = 30.0;
  const auto records = workload::BuildCorpus(cc);
  core::CostModelConfig config;
  config.hidden_dim = 8;
  core::Ensemble ensemble(config, 1);
  auto samples = workload::ToTrainSamples(records, sim::Metric::kThroughput);
  core::TrainConfig tc;
  tc.epochs = 3;
  ensemble.Train(samples, {}, tc);
  return ensemble;
}

ServiceConfig BaseConfig() {
  ServiceConfig config;
  config.target = sim::Metric::kThroughput;
  config.num_candidates = 12;
  config.seed = 177;
  config.num_threads = 1;
  return config;
}

std::vector<dsps::QueryGraph> ScriptQueries(int count) {
  workload::QueryGenerator generator(workload::GeneratorConfig{});
  nn::Rng rng(515);
  std::vector<dsps::QueryGraph> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    const auto t = static_cast<workload::QueryTemplate>(rng.Int(0, 2));
    queries.push_back(generator.Generate(t, rng));
  }
  return queries;
}

std::vector<AdmitResult> RunSync(const core::Ensemble& target,
                                 const ServiceConfig& config,
                                 const std::vector<dsps::QueryGraph>& queries) {
  PlacementService service(FixtureCluster(), &target, nullptr, nullptr,
                           config);
  std::vector<AdmitResult> results;
  for (const dsps::QueryGraph& query : queries) {
    results.push_back(service.Admit(query));
  }
  return results;
}

void ExpectSameDecisions(const std::vector<AdmitResult>& a,
                         const std::vector<AdmitResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "admission " << i;
    EXPECT_EQ(a[i].placement, b[i].placement) << "admission " << i;
    EXPECT_EQ(a[i].predicted, b[i].predicted) << "admission " << i;
    EXPECT_EQ(a[i].penalized, b[i].penalized) << "admission " << i;
    EXPECT_EQ(a[i].feasible, b[i].feasible) << "admission " << i;
  }
}

TEST(ServiceFastPathTest, FastPathOffAndOnAgreeBitwise) {
  const core::Ensemble target = TinyThroughputEnsemble();
  const std::vector<dsps::QueryGraph> queries = ScriptQueries(20);

  ServiceConfig off = BaseConfig();
  off.fast_path = false;
  ServiceConfig on = BaseConfig();
  on.fast_path = true;
  on.candidate_cache = true;
  // Quantized ranking stays off: with only pooling and caching active the
  // fast path must not move a single decision bit.
  ExpectSameDecisions(RunSync(target, off, queries),
                      RunSync(target, on, queries));
}

TEST(ServiceFastPathTest, CandidateCacheOnOffAgreeBitwise) {
  const core::Ensemble target = TinyThroughputEnsemble();
  const std::vector<dsps::QueryGraph> queries = ScriptQueries(20);

  ServiceConfig cached = BaseConfig();
  cached.candidate_cache = true;
  ServiceConfig uncached = BaseConfig();
  uncached.candidate_cache = false;
  ExpectSameDecisions(RunSync(target, cached, queries),
                      RunSync(target, uncached, queries));
}

TEST(ServiceFastPathTest, CandidateCacheHitsOnInterchangeableAndRepeat) {
  const core::Ensemble target = TinyThroughputEnsemble();
  const sim::Cluster cluster = FixtureCluster();
  FastPathConfig fast;
  fast.enabled = true;
  fast.candidate_cache = true;
  fast.num_threads = 1;
  ScoringEngine engine(&target, nullptr, nullptr, fast);

  const dsps::QueryGraph query = ScriptQueries(1)[0];
  const int n_ops = query.num_operators();
  std::vector<sim::Placement> candidates;
  candidates.push_back(sim::Placement(n_ops, 0));  // all ops on edge node 0
  candidates.push_back(sim::Placement(n_ops, 1));  // feature-identical node
  candidates.push_back(sim::Placement(n_ops, 7));  // different class (cloud)
  const std::vector<double> factors(candidates.size(), 1.0);

  obs::Counter& hits = obs::GetCounter("service.scoring.cache_hits");
  obs::Counter& misses = obs::GetCounter("service.scoring.cache_misses");
  const uint64_t hits0 = hits.Value();
  const uint64_t misses0 = misses.Value();

  // Candidate 1 places on a node bit-identical to candidate 0's: it never
  // reaches the model and returns candidate 0's exact bits.
  const ScoringEngine::ScoreResult first =
      engine.ScoreRequest(query, cluster, candidates, factors, true, {});
  EXPECT_EQ(hits.Value() - hits0, 1u);
  EXPECT_EQ(misses.Value() - misses0, 2u);
  EXPECT_EQ(first.scored[0].cost, first.scored[1].cost);
  EXPECT_EQ(first.scored[0].feasible, first.scored[1].feasible);

  // Re-scoring the same request (rip-up against an unchanged view) is pure
  // cache: no new misses, bitwise-identical scores.
  const ScoringEngine::ScoreResult second =
      engine.ScoreRequest(query, cluster, candidates, factors, true, {});
  EXPECT_EQ(hits.Value() - hits0, 4u);
  EXPECT_EQ(misses.Value() - misses0, 2u);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(first.scored[i].cost, second.scored[i].cost) << i;
    EXPECT_EQ(first.scored[i].feasible, second.scored[i].feasible) << i;
  }
}

TEST(ServiceFastPathTest, AsyncBatchOfOneMatchesSynchronousAdmit) {
  const core::Ensemble target = TinyThroughputEnsemble();
  const std::vector<dsps::QueryGraph> queries = ScriptQueries(12);
  const ServiceConfig config = BaseConfig();

  const std::vector<AdmitResult> sync = RunSync(target, config, queries);

  PlacementService service(FixtureCluster(), &target, nullptr, nullptr,
                           config);
  std::vector<AdmitResult> async;
  for (const dsps::QueryGraph& query : queries) {
    const int64_t ticket = service.AdmitAsync(query);
    EXPECT_EQ(service.pending_admissions(), 1);
    const std::vector<AdmitResult> drained = service.DrainAdmissions();
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0].id, ticket);
    async.push_back(drained[0]);
  }
  EXPECT_EQ(service.pending_admissions(), 0);
  ExpectSameDecisions(sync, async);
}

TEST(ServiceFastPathTest, AsyncBatchIsDeterministicAndFifo) {
  const core::Ensemble target = TinyThroughputEnsemble();
  const std::vector<dsps::QueryGraph> queries = ScriptQueries(10);

  const auto run_batched = [&](int num_threads) {
    ServiceConfig config = BaseConfig();
    config.num_threads = num_threads;
    PlacementService service(FixtureCluster(), &target, nullptr, nullptr,
                             config);
    std::vector<int64_t> tickets;
    for (const dsps::QueryGraph& query : queries) {
      tickets.push_back(service.AdmitAsync(query));
    }
    EXPECT_EQ(service.pending_admissions(),
              static_cast<int>(queries.size()));
    const std::vector<AdmitResult> results = service.DrainAdmissions();
    EXPECT_TRUE(service.DrainAdmissions().empty());
    // FIFO: results come back in submission order under submission ids.
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].id, tickets[i]);
    }
    return results;
  };

  const std::vector<AdmitResult> once = run_batched(1);
  const std::vector<AdmitResult> again = run_batched(1);
  const std::vector<AdmitResult> parallel = run_batched(4);
  ExpectSameDecisions(once, again);
  ExpectSameDecisions(once, parallel);
}

TEST(ServiceFastPathTest, QuantizedRankingIsThreadCountIndependent) {
  const core::Ensemble target = TinyThroughputEnsemble();
  const std::vector<dsps::QueryGraph> queries = ScriptQueries(16);

  const auto run = [&](int num_threads) {
    ServiceConfig config = BaseConfig();
    config.quantized_ranking = true;
    config.quant_kind = nn::QuantKind::kInt8;
    config.rank_top_k = 3;
    config.num_threads = num_threads;
    return RunSync(target, config, queries);
  };
  ExpectSameDecisions(run(1), run(4));
}

TEST(ServiceFastPathTest, QuantizedRankingMostlyAgreesWithFullPrecision) {
  const core::Ensemble target = TinyThroughputEnsemble();
  const std::vector<dsps::QueryGraph> queries = ScriptQueries(30);

  const std::vector<AdmitResult> full =
      RunSync(target, BaseConfig(), queries);
  for (const nn::QuantKind kind :
       {nn::QuantKind::kBf16, nn::QuantKind::kInt8}) {
    ServiceConfig config = BaseConfig();
    config.quantized_ranking = true;
    config.quant_kind = kind;
    config.rank_top_k = 4;
    const std::vector<AdmitResult> fast = RunSync(target, config, queries);
    ASSERT_EQ(full.size(), fast.size());
    int agree = 0;
    for (size_t i = 0; i < full.size(); ++i) {
      if (full[i].placement == fast[i].placement) ++agree;
    }
    // The hard >= 99% top-1 agreement gate runs in the bench over large
    // candidate sets; this is the unit-sized sanity floor.
    EXPECT_GE(agree, static_cast<int>(full.size() * 9) / 10)
        << ToString(kind) << ": " << agree << "/" << full.size();
  }
}

TEST(ServiceFastPathTest, QuantizedRankingReducesFullScores) {
  const core::Ensemble target = TinyThroughputEnsemble();
  const std::vector<dsps::QueryGraph> queries = ScriptQueries(10);
  obs::Counter& rescored =
      obs::GetCounter("service.scoring.rescored_candidates");
  obs::Counter& ranked = obs::GetCounter("service.scoring.ranked_candidates");
  const uint64_t rescored_before = rescored.Value();
  const uint64_t ranked_before = ranked.Value();
  ServiceConfig config = BaseConfig();
  config.quantized_ranking = true;
  config.rank_top_k = 3;
  RunSync(target, config, queries);
  const uint64_t ranked_delta = ranked.Value() - ranked_before;
  const uint64_t rescored_delta = rescored.Value() - rescored_before;
  EXPECT_GT(ranked_delta, 0u);
  EXPECT_GT(rescored_delta, 0u);
  // Ranking looked at every candidate; full precision touched only top-k's.
  EXPECT_LT(rescored_delta, ranked_delta);
}

// --- Rank-widening budget boundary -------------------------------------------

// A success classifier trained on all-false labels: every candidate scores
// infeasible, forcing the widening fallback down its full path.
core::Ensemble AlwaysInfeasibleSuccessEnsemble() {
  workload::CorpusConfig cc;
  cc.num_queries = 30;
  cc.seed = 77;
  cc.duration_s = 20.0;
  auto records = workload::BuildCorpus(cc);
  for (auto& r : records) r.metrics.success = false;
  core::CostModelConfig config;
  config.hidden_dim = 8;
  config.head = core::HeadKind::kClassification;
  core::Ensemble ensemble(config, 1);
  auto samples = workload::ToTrainSamples(records, sim::Metric::kSuccess);
  core::TrainConfig tc;
  tc.epochs = 5;
  ensemble.Train(samples, {}, tc);
  return ensemble;
}

// One candidate per cluster node (all operators co-located), so candidate
// counts and score domains are exact and enumerable.
std::vector<sim::Placement> CoLocatedCandidates(const dsps::QueryGraph& query,
                                                const sim::Cluster& cluster) {
  std::vector<sim::Placement> candidates;
  for (int node = 0; node < cluster.num_nodes(); ++node) {
    candidates.emplace_back(query.num_operators(), node);
  }
  return candidates;
}

struct WidenRun {
  ScoringEngine::ScoreResult result;
  bool ranking_was_active = false;
};

WidenRun RunWidening(const core::Ensemble& target,
                     const core::Ensemble* success, int num_candidates,
                     int rank_top_k, int rank_widen_rounds) {
  const sim::Cluster cluster = FixtureCluster();
  dsps::QueryGraph query = ScriptQueries(1)[0];
  std::vector<sim::Placement> candidates =
      CoLocatedCandidates(query, cluster);
  candidates.resize(static_cast<size_t>(num_candidates),
                    candidates.empty() ? sim::Placement{} : candidates[0]);

  FastPathConfig config;
  config.quantized_ranking = true;
  config.rank_top_k = rank_top_k;
  config.rank_widen_rounds = rank_widen_rounds;
  config.num_threads = 1;
  ScoringEngine engine(&target, success, nullptr, config);

  WidenRun run;
  run.ranking_was_active = engine.RankingActive(num_candidates);
  std::vector<std::vector<double>> ranked;
  engine.RankRequests({&query}, {&candidates}, cluster, ranked);
  const std::vector<double> rank_row =
      ranked.empty() ? std::vector<double>{} : ranked[0];
  const std::vector<double> factors(candidates.size(), 1.0);
  run.result = engine.ScoreRequest(query, cluster, candidates, factors,
                                   /*maximize=*/true, rank_row);
  return run;
}

// The documented widening budget is rank_top_k * 2^rounds full-scored
// candidates (scoring_engine.h). Regression: the pre-fix loop doubled the
// window BEFORE its first use, scoring k * (2^(r+1) - 1) — e.g. 3 where the
// budget promises 2 — on every fully infeasible list.
TEST(ServiceFastPathTest, WideningRespectsDocumentedBudget) {
  const core::Ensemble target = TinyThroughputEnsemble();
  const core::Ensemble never = AlwaysInfeasibleSuccessEnsemble();

  // k=1, one widening round, all 9 candidates infeasible: budget 1*2^1 = 2.
  {
    const WidenRun run = RunWidening(target, &never, 9, 1, 1);
    ASSERT_TRUE(run.ranking_was_active);
    for (int i = 0; i < 9; ++i) {
      if (run.result.have_full[i]) {
        EXPECT_FALSE(run.result.scored[i].feasible);
      }
    }
    EXPECT_LE(run.result.full_scored, 2);
    EXPECT_GE(run.result.full_scored, 1);  // budget still buys a widening
  }
  // k=2, two rounds, all infeasible: budget 2*2^2 = 8 of 9.
  {
    const WidenRun run = RunWidening(target, &never, 9, 2, 2);
    ASSERT_TRUE(run.ranking_was_active);
    EXPECT_LE(run.result.full_scored, 8);
    EXPECT_GE(run.result.full_scored, 2);
  }
}

// An unbounded budget (negative rounds) must scan the whole list, resolving
// the exact best-any candidate even when nothing is feasible.
TEST(ServiceFastPathTest, UnboundedWideningScansAllCandidatesWhenInfeasible) {
  const core::Ensemble target = TinyThroughputEnsemble();
  const core::Ensemble never = AlwaysInfeasibleSuccessEnsemble();
  const WidenRun run = RunWidening(target, &never, 9, 1, -1);
  ASSERT_TRUE(run.ranking_was_active);
  EXPECT_EQ(run.result.full_scored, 9);
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(run.result.have_full[i]) << "candidate " << i;
    EXPECT_FALSE(run.result.scored[i].feasible) << "candidate " << i;
  }
}

// Boundary: a single-candidate list (and any list no longer than
// rank_top_k) never activates ranking — the lone candidate is scored in
// full precision and the request resolves.
TEST(ServiceFastPathTest, SingleCandidateListBypassesRanking) {
  const core::Ensemble target = TinyThroughputEnsemble();
  const core::Ensemble never = AlwaysInfeasibleSuccessEnsemble();
  {
    const WidenRun run = RunWidening(target, &never, 1, 4, 2);
    EXPECT_FALSE(run.ranking_was_active);
    EXPECT_EQ(run.result.full_scored, 1);
    EXPECT_TRUE(run.result.have_full[0]);
  }
  // rank_top_k >= candidate count: same bypass, every candidate scored.
  {
    const WidenRun run = RunWidening(target, nullptr, 4, 4, 2);
    EXPECT_FALSE(run.ranking_was_active);
    EXPECT_EQ(run.result.full_scored, 4);
  }
}

// Service-level contract: an all-infeasible admission under an exhausted
// widening budget still resolves to a valid placement (best-any over the
// scored head), flagged infeasible — never a crash, never an empty result.
TEST(ServiceFastPathTest, AllInfeasibleAdmissionResolvesBestAny) {
  const core::Ensemble target = TinyThroughputEnsemble();
  const core::Ensemble never = AlwaysInfeasibleSuccessEnsemble();
  ServiceConfig config = BaseConfig();
  config.quantized_ranking = true;
  config.rank_top_k = 1;
  config.rank_widen_rounds = 1;
  PlacementService service(FixtureCluster(), &target, &never, nullptr,
                           config);
  const std::vector<dsps::QueryGraph> queries = ScriptQueries(4);
  for (const dsps::QueryGraph& query : queries) {
    const AdmitResult result = service.Admit(query);
    EXPECT_FALSE(result.feasible);
    ASSERT_EQ(static_cast<int>(result.placement.size()),
              query.num_operators());
    for (int node : result.placement) {
      EXPECT_GE(node, 0);
      EXPECT_LT(node, FixtureCluster().num_nodes());
    }
  }
}

}  // namespace
}  // namespace costream::service
