#include "dsps/query_builder.h"

#include <gtest/gtest.h>

namespace costream::dsps {
namespace {

TEST(QueryBuilderTest, SourceWidthsAndFractions) {
  QueryBuilder b;
  auto s = b.Source(100.0, {DataType::kInt, DataType::kString,
                            DataType::kString, DataType::kDouble});
  EXPECT_EQ(s.width, 4.0);
  EXPECT_DOUBLE_EQ(s.frac_int, 0.25);
  EXPECT_DOUBLE_EQ(s.frac_string, 0.5);
  EXPECT_DOUBLE_EQ(s.frac_double, 0.25);
}

TEST(QueryBuilderTest, FilterPreservesWidth) {
  QueryBuilder b;
  auto s = b.Source(100.0, {DataType::kInt, DataType::kInt});
  auto f = b.Filter(s, FilterFunction::kLess, DataType::kInt, 0.5);
  EXPECT_EQ(f.width, 2.0);
  QueryGraph q = b.Sink(f);
  EXPECT_EQ(q.Validate(), "");
  EXPECT_EQ(q.op(1).selectivity, 0.5);
  EXPECT_EQ(q.op(1).tuple_width_in, 2.0);
}

TEST(QueryBuilderTest, GroupedAggregateOutputsKeyAndValue) {
  QueryBuilder b;
  auto s = b.Source(100.0, {DataType::kInt, DataType::kDouble});
  WindowSpec w;
  w.policy = WindowPolicy::kCountBased;
  w.size = 10;
  auto agg = b.WindowedAggregate(s, w, AggregateFunction::kMean,
                                 GroupByType::kInt, DataType::kDouble, 0.3);
  EXPECT_EQ(agg.width, 2.0);
  QueryGraph q = b.Sink(agg);
  EXPECT_EQ(q.Validate(), "");
  EXPECT_EQ(q.CountType(OperatorType::kWindow), 1);
  EXPECT_EQ(q.CountType(OperatorType::kAggregate), 1);
}

TEST(QueryBuilderTest, UngroupedAggregateOutputsSingleValue) {
  QueryBuilder b;
  auto s = b.Source(100.0, {DataType::kDouble});
  WindowSpec w;
  w.policy = WindowPolicy::kTimeBased;
  w.size = 2.0;
  auto agg = b.WindowedAggregate(s, w, AggregateFunction::kMax,
                                 GroupByType::kNone, DataType::kDouble, 1.0);
  EXPECT_EQ(agg.width, 1.0);
}

TEST(QueryBuilderTest, JoinConcatenatesWidths) {
  QueryBuilder b;
  auto s1 = b.Source(100.0, {DataType::kInt, DataType::kInt});
  auto s2 = b.Source(100.0, {DataType::kString});
  WindowSpec w;
  w.size = 20;
  auto joined = b.WindowedJoin(s1, s2, w, DataType::kInt, 0.01);
  EXPECT_EQ(joined.width, 3.0);
  QueryGraph q = b.Sink(joined);
  EXPECT_EQ(q.Validate(), "");
  // Two window nodes were inserted, one per join input.
  EXPECT_EQ(q.CountType(OperatorType::kWindow), 2);
}

TEST(QueryBuilderTest, JoinMixesTypeFractions) {
  QueryBuilder b;
  auto s1 = b.Source(100.0, {DataType::kInt, DataType::kInt});
  auto s2 = b.Source(100.0, {DataType::kString, DataType::kString});
  WindowSpec w;
  w.size = 20;
  auto joined = b.WindowedJoin(s1, s2, w, DataType::kInt, 0.01);
  EXPECT_DOUBLE_EQ(joined.frac_int, 0.5);
  EXPECT_DOUBLE_EQ(joined.frac_string, 0.5);
}

TEST(QueryBuilderTest, ThreeWayJoinValidates) {
  QueryBuilder b;
  auto s1 = b.Source(100.0, {DataType::kInt});
  auto s2 = b.Source(100.0, {DataType::kInt});
  auto s3 = b.Source(100.0, {DataType::kInt});
  WindowSpec w;
  w.size = 10;
  auto j1 = b.WindowedJoin(s1, s2, w, DataType::kInt, 0.01);
  auto j2 = b.WindowedJoin(j1, s3, w, DataType::kInt, 0.01);
  QueryGraph q = b.Sink(j2);
  EXPECT_EQ(q.Validate(), "");
  EXPECT_EQ(q.CountType(OperatorType::kJoin), 2);
  EXPECT_EQ(q.Sources().size(), 3u);
}

TEST(QueryBuilderTest, TumblingWindowSlideEqualsSize) {
  WindowSpec w;
  w.type = WindowType::kTumbling;
  w.size = 40;
  w.slide = 13;  // ignored for tumbling windows
  EXPECT_EQ(w.EffectiveSlide(), 40.0);
}

TEST(QueryBuilderTest, SlidingWindowUsesSlide) {
  WindowSpec w;
  w.type = WindowType::kSliding;
  w.size = 40;
  w.slide = 13;
  EXPECT_EQ(w.EffectiveSlide(), 13.0);
}

TEST(QueryBuilderDeathTest, AggregateRequiresWindowStream) {
  QueryBuilder b;
  auto s = b.Source(100.0, {DataType::kInt});
  EXPECT_DEATH(b.Aggregate(s, AggregateFunction::kMean, GroupByType::kNone,
                           DataType::kDouble, 1.0),
               "window");
}

TEST(QueryBuilderDeathTest, JoinRequiresWindowStreams) {
  QueryBuilder b;
  auto s1 = b.Source(100.0, {DataType::kInt});
  auto s2 = b.Source(100.0, {DataType::kInt});
  EXPECT_DEATH(b.Join(s1, s2, DataType::kInt, 0.1), "window");
}

TEST(QueryBuilderDeathTest, InvalidSelectivityAborts) {
  QueryBuilder b;
  auto s = b.Source(100.0, {DataType::kInt});
  EXPECT_DEATH(b.Filter(s, FilterFunction::kLess, DataType::kInt, 1.5),
               "COSTREAM_CHECK");
}

TEST(TypesTest, ToStringCoversEnums) {
  EXPECT_STREQ(ToString(DataType::kString), "string");
  EXPECT_STREQ(ToString(OperatorType::kAggregate), "aggregate");
  EXPECT_STREQ(ToString(FilterFunction::kStartsWith), "startswith");
  EXPECT_STREQ(ToString(AggregateFunction::kAvg), "avg");
  EXPECT_STREQ(ToString(WindowType::kSliding), "sliding");
  EXPECT_STREQ(ToString(WindowPolicy::kCountBased), "count");
  EXPECT_STREQ(ToString(GroupByType::kNone), "none");
}

TEST(TupleBytesTest, StringsAreHeavier) {
  const double ints = TupleBytes(5.0, 1.0, 0.0, 0.0);
  const double strings = TupleBytes(5.0, 0.0, 0.0, 1.0);
  EXPECT_GT(strings, ints);
  EXPECT_GT(ints, 0.0);
}

TEST(TupleBytesTest, GrowsWithWidth) {
  EXPECT_GT(TupleBytes(10.0, 1.0, 0.0, 0.0), TupleBytes(3.0, 1.0, 0.0, 0.0));
}

}  // namespace
}  // namespace costream::dsps
