#include "verify/placement_rules.h"

#include <gtest/gtest.h>

#include "dsps/query_builder.h"
#include "verify/rules.h"

namespace costream::verify {
namespace {

using dsps::DataType;
using dsps::FilterFunction;
using dsps::QueryBuilder;
using dsps::QueryGraph;
using sim::Cluster;
using sim::HardwareNode;
using sim::Placement;

QueryGraph CleanQuery() {
  QueryBuilder b;
  const auto src = b.Source(1000.0, {DataType::kInt, DataType::kInt});
  const auto filtered =
      b.Filter(src, FilterFunction::kLess, DataType::kInt, 0.5);
  return b.Sink(filtered);
}

Cluster SmallCluster() {
  Cluster cluster;
  cluster.nodes.push_back({400.0, 16000.0, 1000.0, 5.0});
  cluster.nodes.push_back({100.0, 2000.0, 100.0, 25.0});
  return cluster;
}

int CountRule(const VerifyReport& report, std::string_view rule) {
  int n = 0;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == rule) ++n;
  }
  return n;
}

TEST(VerifyPlacementTest, UnplacedOperatorIsPL001) {
  const QueryGraph query = CleanQuery();
  const Placement placement = {0, 1};  // three operators, two entries
  VerifyReport report;
  VerifyPlacement(query, SmallCluster(), placement, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(CountRule(report, kRulePlacementArity), 1);
}

TEST(VerifyPlacementTest, UnknownNodeIsPL002) {
  const QueryGraph query = CleanQuery();
  VerifyReport report;
  VerifyPlacement(query, SmallCluster(), Placement{0, 7, -1}, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(CountRule(report, kRulePlacementUnknownNode), 2);
}

TEST(VerifyPlacementTest, EmptyClusterIsPL003) {
  VerifyReport report;
  VerifyCluster(Cluster{}, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(CountRule(report, kRuleClusterEmpty), 1);
}

TEST(VerifyPlacementTest, NonPositiveHardwareFeatureIsPL004) {
  Cluster cluster = SmallCluster();
  cluster.nodes[1].ram_mb = 0.0;
  cluster.nodes[1].latency_ms = -2.0;
  VerifyReport report;
  VerifyCluster(cluster, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(CountRule(report, kRuleClusterBadNode), 1);
}

TEST(VerifyPlacementTest, GrossRamOverloadWarnsPL005) {
  QueryBuilder b;
  const auto src = b.Source(50000.0, {DataType::kInt, DataType::kInt});
  const dsps::WindowSpec w{dsps::WindowType::kTumbling,
                           dsps::WindowPolicy::kTimeBased, 600.0, 600.0};
  const auto agg =
      b.WindowedAggregate(src, w, dsps::AggregateFunction::kMean,
                          dsps::GroupByType::kNone, DataType::kInt, 0.1);
  const QueryGraph query = b.Sink(agg);
  Cluster cluster;
  // A node so starved that even the safety-factored estimate cannot fit the
  // ten-minute window state.
  cluster.nodes.push_back({100.0, 1.0, 100.0, 5.0});
  const Placement everything_on_node0(query.num_operators(), 0);
  VerifyReport report;
  VerifyPlacement(query, cluster, everything_on_node0, &report);
  // Capacity pre-feasibility is advisory: warnings, never errors.
  EXPECT_TRUE(report.ok()) << report.DebugString();
  EXPECT_GE(CountRule(report, kRulePlacementRamFeasibility), 1)
      << report.DebugString();
}

TEST(VerifyPlacementTest, GrossNetworkOverloadWarnsPL007) {
  QueryBuilder b;
  const auto src = b.Source(1e6, {DataType::kString, DataType::kString});
  const auto filtered =
      b.Filter(src, FilterFunction::kNotEq, DataType::kString, 1.0);
  const QueryGraph query = b.Sink(filtered);
  Cluster cluster;
  cluster.nodes.push_back({400.0, 16000.0, 0.001, 5.0});
  cluster.nodes.push_back({400.0, 16000.0, 0.001, 5.0});
  // Source on node 0 streams a megahertz of wide tuples over a 1 kbit/s
  // uplink to the filter on node 1.
  VerifyReport report;
  VerifyPlacement(query, cluster, Placement{0, 1, 1}, &report);
  EXPECT_TRUE(report.ok()) << report.DebugString();
  EXPECT_GE(CountRule(report, kRulePlacementNetFeasibility), 1)
      << report.DebugString();
}

TEST(VerifyPlacementTest, GrossCpuOverloadWarnsPL006) {
  QueryGraph query;
  dsps::OperatorDescriptor source;
  source.type = dsps::OperatorType::kSource;
  source.input_event_rate = 1000.0;
  source.tuple_data_types = {DataType::kInt, DataType::kInt};
  source.tuple_width_out = 2.0;
  query.AddOperator(source);
  dsps::OperatorDescriptor filter;
  filter.type = dsps::OperatorType::kFilter;
  filter.selectivity = 0.5;
  filter.tuple_width_in = 2.0;
  filter.tuple_width_out = 2.0;
  filter.parallelism = 40;  // 41 instances on a single-core node
  query.AddOperator(filter);
  dsps::OperatorDescriptor sink;
  sink.type = dsps::OperatorType::kSink;
  sink.tuple_width_in = 2.0;
  query.AddOperator(sink);
  query.AddEdge(0, 1);
  query.AddEdge(1, 2);
  Cluster cluster;
  cluster.nodes.push_back({100.0, 16000.0, 1000.0, 5.0});
  const Placement everything_on_node0(query.num_operators(), 0);
  VerifyReport report;
  VerifyPlacement(query, cluster, everything_on_node0, &report);
  EXPECT_TRUE(report.ok()) << report.DebugString();
  EXPECT_GE(CountRule(report, kRulePlacementCpuFeasibility), 1)
      << report.DebugString();
}

TEST(VerifyPlacementTest, MalformedLinkMatrixIsPL008) {
  Cluster cluster = SmallCluster();
  // Bandwidth matrix without its latency sibling.
  cluster.link_bandwidth_mbits = {1000.0, 100.0, 1000.0, 100.0};
  VerifyReport report;
  VerifyCluster(cluster, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(CountRule(report, kRuleClusterLinkMatrix), 1);

  // Wrong shape (2x2 cluster needs 4 entries per matrix).
  cluster.link_latency_ms = {5.0, 25.0};
  VerifyReport report2;
  VerifyCluster(cluster, &report2);
  EXPECT_EQ(CountRule(report2, kRuleClusterLinkMatrix), 1);

  // Well-formed matrices are clean.
  cluster.link_latency_ms = {5.0, 25.0, 5.0, 25.0};
  VerifyReport report3;
  VerifyCluster(cluster, &report3);
  EXPECT_TRUE(report3.ok()) << report3.DebugString();
  EXPECT_EQ(CountRule(report3, kRuleClusterLinkMatrix), 0);
}

TEST(VerifyPlacementTest, ChokedLinkWarnsPL009) {
  QueryBuilder b;
  const auto src = b.Source(1e6, {DataType::kString, DataType::kString});
  const auto filtered =
      b.Filter(src, FilterFunction::kNotEq, DataType::kString, 1.0);
  const QueryGraph query = b.Sink(filtered);
  Cluster cluster;
  // Fat per-node NICs: the per-node egress heuristic (PL007) stays quiet;
  // only the starved 0 -> 1 link in the matrix is the problem.
  cluster.nodes.push_back({400.0, 16000.0, 100000.0, 5.0});
  cluster.nodes.push_back({400.0, 16000.0, 100000.0, 5.0});
  cluster.link_bandwidth_mbits = {100000.0, 0.001, 100000.0, 100000.0};
  cluster.link_latency_ms = {5.0, 80.0, 80.0, 5.0};
  VerifyReport report;
  VerifyPlacement(query, cluster, Placement{0, 1, 1}, &report);
  EXPECT_TRUE(report.ok()) << report.DebugString();
  EXPECT_GE(CountRule(report, kRulePlacementLinkFeasibility), 1)
      << report.DebugString();
  EXPECT_EQ(CountRule(report, kRulePlacementNetFeasibility), 0)
      << report.DebugString();

  // The reverse placement routes over the healthy 1 -> 0 link: no warning.
  VerifyReport report2;
  VerifyPlacement(query, cluster, Placement{1, 0, 0}, &report2);
  EXPECT_EQ(CountRule(report2, kRulePlacementLinkFeasibility), 0)
      << report2.DebugString();
}

TEST(VerifyPlacementTest, ReasonablePlacedQueryIsClean) {
  const QueryGraph query = CleanQuery();
  VerifyReport report;
  VerifyPlacedQuery(query, SmallCluster(), Placement{0, 1, 0}, &report);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.diagnostics().empty()) << report.DebugString();
}

TEST(VerifyPlacementTest, StructuralErrorsSuppressCapacityHeuristics) {
  // With a malformed placement the capacity estimators must not run (they
  // index placement[op]); the report carries only the structural errors.
  const QueryGraph query = CleanQuery();
  VerifyReport report;
  VerifyPlacement(query, SmallCluster(), Placement{0}, &report);
  EXPECT_EQ(CountRule(report, kRulePlacementArity), 1);
  EXPECT_EQ(CountRule(report, kRulePlacementRamFeasibility), 0);
  EXPECT_EQ(CountRule(report, kRulePlacementCpuFeasibility), 0);
  EXPECT_EQ(CountRule(report, kRulePlacementNetFeasibility), 0);
}

}  // namespace
}  // namespace costream::verify
