#include "verify/graph_rules.h"

#include <gtest/gtest.h>

#include "dsps/query_builder.h"
#include "verify/rules.h"

namespace costream::verify {
namespace {

using dsps::DataType;
using dsps::FilterFunction;
using dsps::OperatorDescriptor;
using dsps::OperatorType;
using dsps::QueryBuilder;
using dsps::QueryGraph;
using dsps::WindowPolicy;
using dsps::WindowSpec;
using dsps::WindowType;

OperatorDescriptor MakeOp(OperatorType type) {
  OperatorDescriptor op;
  op.type = type;
  op.tuple_width_in = 2.0;
  op.tuple_width_out = 2.0;
  op.selectivity = 0.5;
  if (type == OperatorType::kSource) {
    op.input_event_rate = 1000.0;
    op.tuple_data_types = {DataType::kInt, DataType::kInt};
  }
  return op;
}

bool HasRule(const VerifyReport& report, std::string_view rule) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == rule) return true;
  }
  return false;
}

VerifyReport RunGraphRules(const QueryGraph& query) {
  VerifyReport report;
  VerifyQueryGraph(query, &report);
  return report;
}

TEST(VerifyGraphTest, EmptyGraphIsQG001) {
  const VerifyReport report = RunGraphRules(QueryGraph{});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasRule(report, kRuleGraphEmpty));
}

TEST(VerifyGraphTest, CyclicGraphIsQG003) {
  QueryGraph query;
  query.AddOperator(MakeOp(OperatorType::kSource));
  query.AddOperator(MakeOp(OperatorType::kFilter));
  query.AddOperator(MakeOp(OperatorType::kFilter));
  query.AddOperator(MakeOp(OperatorType::kSink));
  query.AddEdge(0, 1);
  query.AddEdge(1, 2);
  query.AddEdge(2, 1);  // the defect: dataflow cycle between the filters
  query.AddEdge(2, 3);
  const VerifyReport report = RunGraphRules(query);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasRule(report, kRuleGraphCycle));
}

TEST(VerifyGraphTest, TwoSinksIsQG004) {
  QueryGraph query;
  query.AddOperator(MakeOp(OperatorType::kSource));
  query.AddOperator(MakeOp(OperatorType::kSink));
  query.AddOperator(MakeOp(OperatorType::kSink));
  query.AddEdge(0, 1);
  query.AddEdge(0, 2);
  const VerifyReport report = RunGraphRules(query);
  EXPECT_TRUE(HasRule(report, kRuleGraphSinkCount));
}

TEST(VerifyGraphTest, DisconnectedOperatorIsQG005) {
  QueryGraph query;
  query.AddOperator(MakeOp(OperatorType::kSource));
  query.AddOperator(MakeOp(OperatorType::kSink));
  auto orphan = MakeOp(OperatorType::kFilter);
  query.AddOperator(orphan);  // never wired up
  query.AddEdge(0, 1);
  const VerifyReport report = RunGraphRules(query);
  EXPECT_TRUE(HasRule(report, kRuleGraphUnreachable));
  // The orphan also violates the unary-arity rule.
  EXPECT_TRUE(HasRule(report, kRuleGraphArity));
}

TEST(VerifyGraphTest, SlideExceedingSizeIsQG007) {
  QueryGraph query;
  query.AddOperator(MakeOp(OperatorType::kSource));
  auto window = MakeOp(OperatorType::kWindow);
  window.window =
      WindowSpec{WindowType::kSliding, WindowPolicy::kTimeBased, 1.0, 2.0};
  query.AddOperator(window);
  query.AddOperator(MakeOp(OperatorType::kSink));
  query.AddEdge(0, 1);
  query.AddEdge(1, 2);
  const VerifyReport report = RunGraphRules(query);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasRule(report, kRuleGraphWindowSpec));
}

TEST(VerifyGraphTest, NegativeWindowSizeIsQG007) {
  QueryGraph query;
  query.AddOperator(MakeOp(OperatorType::kSource));
  auto window = MakeOp(OperatorType::kWindow);
  window.window =
      WindowSpec{WindowType::kTumbling, WindowPolicy::kTimeBased, -3.0, 1.0};
  query.AddOperator(window);
  query.AddOperator(MakeOp(OperatorType::kSink));
  query.AddEdge(0, 1);
  query.AddEdge(1, 2);
  EXPECT_TRUE(HasRule(RunGraphRules(query), kRuleGraphWindowSpec));
}

TEST(VerifyGraphTest, SelectivityAboveOneIsQG008) {
  QueryGraph query;
  query.AddOperator(MakeOp(OperatorType::kSource));
  auto filter = MakeOp(OperatorType::kFilter);
  filter.selectivity = 1.5;
  query.AddOperator(filter);
  query.AddOperator(MakeOp(OperatorType::kSink));
  query.AddEdge(0, 1);
  query.AddEdge(1, 2);
  EXPECT_TRUE(HasRule(RunGraphRules(query), kRuleGraphSelectivity));
}

TEST(VerifyGraphTest, NegativeTupleWidthIsQG009) {
  QueryGraph query;
  query.AddOperator(MakeOp(OperatorType::kSource));
  auto filter = MakeOp(OperatorType::kFilter);
  filter.tuple_width_in = -1.0;
  query.AddOperator(filter);
  query.AddOperator(MakeOp(OperatorType::kSink));
  query.AddEdge(0, 1);
  query.AddEdge(1, 2);
  EXPECT_TRUE(HasRule(RunGraphRules(query), kRuleGraphTupleWidth));
}

TEST(VerifyGraphTest, ZeroRateSourceIsQG010) {
  QueryGraph query;
  auto source = MakeOp(OperatorType::kSource);
  source.input_event_rate = 0.0;
  query.AddOperator(source);
  query.AddOperator(MakeOp(OperatorType::kSink));
  query.AddEdge(0, 1);
  EXPECT_TRUE(HasRule(RunGraphRules(query), kRuleGraphSourceSpec));
}

TEST(VerifyGraphTest, AggregateFedByFilterIsQG011) {
  QueryGraph query;
  query.AddOperator(MakeOp(OperatorType::kSource));
  query.AddOperator(MakeOp(OperatorType::kFilter));
  query.AddOperator(MakeOp(OperatorType::kAggregate));
  query.AddOperator(MakeOp(OperatorType::kSink));
  query.AddEdge(0, 1);
  query.AddEdge(1, 2);  // aggregate reads a filter, not a window
  query.AddEdge(2, 3);
  EXPECT_TRUE(HasRule(RunGraphRules(query), kRuleGraphWindowFeed));
}

TEST(VerifyGraphTest, ZeroParallelismIsQG012) {
  QueryGraph query;
  query.AddOperator(MakeOp(OperatorType::kSource));
  auto filter = MakeOp(OperatorType::kFilter);
  filter.parallelism = 0;
  query.AddOperator(filter);
  query.AddOperator(MakeOp(OperatorType::kSink));
  query.AddEdge(0, 1);
  query.AddEdge(1, 2);
  EXPECT_TRUE(HasRule(RunGraphRules(query), kRuleGraphParallelism));
}

TEST(VerifyGraphTest, BuilderQueriesAreClean) {
  QueryBuilder b;
  const auto clicks = b.Source(500.0, {DataType::kInt, DataType::kString});
  const auto imps = b.Source(800.0, {DataType::kInt, DataType::kString});
  const auto filtered =
      b.Filter(clicks, FilterFunction::kNotEq, DataType::kString, 0.6);
  const WindowSpec w{WindowType::kSliding, WindowPolicy::kTimeBased, 2.0, 1.0};
  const auto joined =
      b.WindowedJoin(filtered, imps, w, DataType::kInt, 0.01);
  const VerifyReport report = RunGraphRules(b.Sink(joined));
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.diagnostics().empty()) << report.DebugString();
}

TEST(VerifyGraphTest, JsonReportIsDeterministicAndStructured) {
  QueryGraph query;
  const VerifyReport report = RunGraphRules(query);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"QG001\""), std::string::npos) << json;
  EXPECT_EQ(json, RunGraphRules(query).ToJson());
}

}  // namespace
}  // namespace costream::verify
