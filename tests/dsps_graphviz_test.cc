#include "dsps/graphviz.h"

#include <gtest/gtest.h>

#include "dsps/query_builder.h"

namespace costream::dsps {
namespace {

QueryGraph SmallQuery() {
  QueryBuilder b;
  auto s = b.Source(500.0, {DataType::kInt, DataType::kDouble});
  auto f = b.Filter(s, FilterFunction::kLess, DataType::kInt, 0.5);
  WindowSpec w;
  w.policy = WindowPolicy::kCountBased;
  w.size = 20;
  auto agg = b.WindowedAggregate(f, w, AggregateFunction::kMean,
                                 GroupByType::kInt, DataType::kDouble, 0.3);
  return b.Sink(agg);
}

TEST(GraphvizTest, EmitsValidDotStructure) {
  const QueryGraph q = SmallQuery();
  const std::string dot = ToGraphviz(q);
  EXPECT_NE(dot.find("digraph costream_query {"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  // One node statement per operator, one edge statement per edge.
  size_t node_count = 0;
  size_t pos = 0;
  while ((pos = dot.find("[label=", pos)) != std::string::npos) {
    ++node_count;
    ++pos;
  }
  EXPECT_EQ(node_count, static_cast<size_t>(q.num_operators()));
  size_t edge_count = 0;
  pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++edge_count;
    ++pos;
  }
  EXPECT_EQ(edge_count, q.edges().size());
}

TEST(GraphvizTest, LabelsCarryOperatorDetails) {
  const std::string dot = ToGraphviz(SmallQuery());
  EXPECT_NE(dot.find("500 ev/s"), std::string::npos);
  EXPECT_NE(dot.find("sel=0.5"), std::string::npos);
  EXPECT_NE(dot.find("mean by int"), std::string::npos);
}

TEST(GraphvizTest, PlacementClustersOperatorsByNode) {
  const QueryGraph q = SmallQuery();
  std::vector<int> placement(q.num_operators(), 0);
  placement.back() = 1;  // sink on another node
  const std::string dot = ToGraphviz(q, &placement);
  EXPECT_NE(dot.find("subgraph cluster_node0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_node1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"node 1\""), std::string::npos);
}

TEST(GraphvizTest, ParallelismAppearsInLabels) {
  QueryGraph q = SmallQuery();
  q.mutable_op(0).parallelism = 4;
  const std::string dot = ToGraphviz(q);
  EXPECT_NE(dot.find("p=4"), std::string::npos);
}

TEST(GraphvizTest, MismatchedPlacementFallsBackToFlatLayout) {
  const QueryGraph q = SmallQuery();
  std::vector<int> wrong_size = {0};
  const std::string dot = ToGraphviz(q, &wrong_size);
  EXPECT_EQ(dot.find("subgraph"), std::string::npos);
}

}  // namespace
}  // namespace costream::dsps
