#include "sim/fluid_engine.h"

#include <gtest/gtest.h>

#include "dsps/query_builder.h"
#include "workload/corpus.h"

namespace costream::sim {
namespace {

using dsps::DataType;
using dsps::FilterFunction;
using dsps::QueryBuilder;
using dsps::QueryGraph;

HardwareNode StrongNode() { return HardwareNode{800.0, 32000.0, 10000.0, 1.0}; }
HardwareNode WeakNode() { return HardwareNode{50.0, 1000.0, 25.0, 40.0}; }

QueryGraph SimpleFilterQuery(double rate, double selectivity) {
  QueryBuilder b;
  auto s = b.Source(rate, {DataType::kInt, DataType::kInt, DataType::kInt});
  auto f = b.Filter(s, FilterFunction::kLess, DataType::kInt, selectivity);
  return b.Sink(f);
}

FluidConfig Noiseless() {
  FluidConfig config;
  config.noise_sigma = 0.0;
  return config;
}

TEST(FluidEngineTest, FilterThroughputFollowsSelectivity) {
  QueryGraph q = SimpleFilterQuery(1000.0, 0.25);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  FluidReport report = EvaluateFluid(q, cluster, placement, Noiseless());
  EXPECT_NEAR(report.metrics.throughput, 250.0, 1.0);
  EXPECT_TRUE(report.metrics.success);
  EXPECT_FALSE(report.metrics.backpressure);
}

TEST(FluidEngineTest, ThroughputBoundedBySourceRate) {
  QueryGraph q = SimpleFilterQuery(1000.0, 1.0);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  FluidReport report = EvaluateFluid(q, cluster, placement, Noiseless());
  EXPECT_LE(report.metrics.throughput, 1000.0 * 1.001);
}

TEST(FluidEngineTest, WeakNodeBackpressuresHighRate) {
  QueryGraph q = SimpleFilterQuery(25600.0, 1.0);
  Cluster cluster{{WeakNode()}};
  Placement placement(q.num_operators(), 0);
  FluidReport report = EvaluateFluid(q, cluster, placement, Noiseless());
  EXPECT_TRUE(report.metrics.backpressure);
  EXPECT_GT(report.backpressure_rate, 0.0);
  EXPECT_LT(report.source_scale, 1.0);
  // Sustained throughput stays below the nominal rate.
  EXPECT_LT(report.metrics.throughput, 25600.0);
  // Backpressure inflates the end-to-end latency far beyond L_p.
  EXPECT_GT(report.metrics.e2e_latency_ms,
            report.metrics.processing_latency_ms * 10.0);
}

TEST(FluidEngineTest, MoreCpuNeverHurtsThroughput) {
  for (double rate : {1000.0, 5000.0, 25600.0}) {
    QueryGraph q = SimpleFilterQuery(rate, 1.0);
    double prev = -1.0;
    for (double cpu : {50.0, 100.0, 200.0, 400.0, 800.0}) {
      Cluster cluster{{HardwareNode{cpu, 16000.0, 10000.0, 1.0}}};
      Placement placement(q.num_operators(), 0);
      FluidReport report = EvaluateFluid(q, cluster, placement, Noiseless());
      EXPECT_GE(report.metrics.throughput, prev - 1e-6)
          << "rate " << rate << " cpu " << cpu;
      prev = report.metrics.throughput;
    }
  }
}

TEST(FluidEngineTest, NetworkLatencyAddsToProcessingLatency) {
  QueryGraph q = SimpleFilterQuery(100.0, 1.0);
  // Source on node 0, rest on node 1: one network hop.
  Cluster fast{{HardwareNode{400, 8000, 1000, 1.0}, StrongNode()}};
  Cluster slow{{HardwareNode{400, 8000, 1000, 160.0}, StrongNode()}};
  Placement placement = {0, 1, 1};
  const double lp_fast =
      EvaluateFluid(q, fast, placement, Noiseless()).metrics
          .processing_latency_ms;
  const double lp_slow =
      EvaluateFluid(q, slow, placement, Noiseless()).metrics
          .processing_latency_ms;
  EXPECT_GT(lp_slow, lp_fast + 150.0);
}

TEST(FluidEngineTest, CoLocationAvoidsNetworkLatency) {
  QueryGraph q = SimpleFilterQuery(100.0, 1.0);
  Cluster cluster{{HardwareNode{400, 8000, 1000, 80.0}, StrongNode()}};
  const double lp_colocated =
      EvaluateFluid(q, cluster, {0, 0, 0}, Noiseless())
          .metrics.processing_latency_ms;
  const double lp_split =
      EvaluateFluid(q, cluster, {0, 1, 1}, Noiseless())
          .metrics.processing_latency_ms;
  EXPECT_LT(lp_colocated, lp_split);
}

TEST(FluidEngineTest, TinyBandwidthBackpressuresWideTuples) {
  QueryBuilder b;
  auto s = b.Source(10000.0, std::vector<DataType>(10, DataType::kString));
  auto f = b.Filter(s, FilterFunction::kNotEq, DataType::kInt, 1.0);
  QueryGraph q = b.Sink(f);
  Cluster cluster{{HardwareNode{800, 16000, 25.0, 5.0}, StrongNode()}};
  Placement placement = {0, 1, 1};
  FluidReport report = EvaluateFluid(q, cluster, placement, Noiseless());
  EXPECT_TRUE(report.metrics.backpressure);
  // At the nominal rates the sender's uplink is the bottleneck (> 1); the
  // reported per-node stats are at the throttled scale, where it sits at ~1.
  EXPECT_GT(report.bottleneck_utilization, 1.0);
  EXPECT_GT(report.node_stats[0].net_utilization, 0.9);
}

TEST(FluidEngineTest, LargeWindowOnSmallRamDegradesOrCrashes) {
  QueryBuilder b;
  auto s1 = b.Source(2000.0, std::vector<DataType>(10, DataType::kString));
  auto s2 = b.Source(2000.0, std::vector<DataType>(10, DataType::kString));
  dsps::WindowSpec w;
  w.policy = dsps::WindowPolicy::kTimeBased;
  w.type = dsps::WindowType::kSliding;
  w.size = 16.0;
  w.slide = 8.0;
  auto joined = b.WindowedJoin(s1, s2, w, DataType::kInt, 1e-3);
  QueryGraph q = b.Sink(joined);

  Cluster small{{HardwareNode{800, 1000, 10000, 1}}};
  Cluster large{{HardwareNode{800, 32000, 10000, 1}}};
  Placement placement(q.num_operators(), 0);
  FluidReport small_ram = EvaluateFluid(q, small, placement, Noiseless());
  FluidReport large_ram = EvaluateFluid(q, large, placement, Noiseless());
  // Memory pressure on the small node must be visible: GC slowdown or crash.
  EXPECT_TRUE(small_ram.node_stats[0].gc_factor > 1.05 ||
              small_ram.node_stats[0].crashed);
  EXPECT_NEAR(large_ram.node_stats[0].gc_factor, 1.0, 0.3);
}

TEST(FluidEngineTest, NoOutputMeansFailure) {
  // Selectivity so low that < 1 tuple arrives in the execution window.
  QueryGraph q = SimpleFilterQuery(100.0, 1e-9);
  // The filter selectivity grid bottoms at 0; force an extreme value.
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  FluidReport report = EvaluateFluid(q, cluster, placement, Noiseless());
  EXPECT_FALSE(report.metrics.success);
}

TEST(FluidEngineTest, E2eAlwaysAtLeastProcessingLatency) {
  QueryGraph q = SimpleFilterQuery(1000.0, 0.5);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  FluidReport report = EvaluateFluid(q, cluster, placement, Noiseless());
  EXPECT_GE(report.metrics.e2e_latency_ms,
            report.metrics.processing_latency_ms);
}

TEST(FluidEngineTest, NoiseIsDeterministicPerSeed) {
  QueryGraph q = SimpleFilterQuery(1000.0, 0.5);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  FluidConfig config;
  config.noise_sigma = 0.1;
  config.noise_seed = 7;
  const FluidReport a = EvaluateFluid(q, cluster, placement, config);
  const FluidReport b = EvaluateFluid(q, cluster, placement, config);
  EXPECT_EQ(a.metrics.throughput, b.metrics.throughput);
  config.noise_seed = 8;
  const FluidReport c = EvaluateFluid(q, cluster, placement, config);
  EXPECT_NE(a.metrics.throughput, c.metrics.throughput);
}

TEST(FluidEngineTest, NoiselessMetricsMatchWhenSigmaZero) {
  QueryGraph q = SimpleFilterQuery(1000.0, 0.5);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  FluidReport report = EvaluateFluid(q, cluster, placement, Noiseless());
  EXPECT_EQ(report.metrics.throughput, report.noiseless_metrics.throughput);
}

TEST(FluidEngineTest, PerOpDiagnosticsExposed) {
  QueryGraph q = SimpleFilterQuery(1000.0, 0.5);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);
  FluidReport report = EvaluateFluid(q, cluster, placement, Noiseless());
  ASSERT_EQ(report.op_cpu_load_us.size(),
            static_cast<size_t>(q.num_operators()));
  for (double load : report.op_cpu_load_us) EXPECT_GT(load, 0.0);
}

// Property sweep: every random workload/placement combination yields finite,
// internally consistent metrics.
class FluidPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FluidPropertyTest, MetricsAreFiniteAndConsistent) {
  workload::CorpusConfig config;
  config.num_queries = 40;
  config.seed = 1000 + GetParam();
  const auto records = workload::BuildCorpus(config);
  for (const auto& record : records) {
    const auto& m = record.metrics;
    EXPECT_TRUE(std::isfinite(m.throughput));
    EXPECT_TRUE(std::isfinite(m.processing_latency_ms));
    EXPECT_TRUE(std::isfinite(m.e2e_latency_ms));
    EXPECT_GE(m.throughput, 0.0);
    EXPECT_GE(m.processing_latency_ms, 0.0);
    EXPECT_GE(m.e2e_latency_ms, m.processing_latency_ms * 0.5);
    if (m.success) {
      EXPECT_GT(m.throughput, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidPropertyTest, ::testing::Range(0, 5));

// Property: throttling never reports higher throughput than the no-pressure
// bound given by source rates.
class FluidBoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(FluidBoundsTest, SinkRateNeverExceedsNominalFlow) {
  workload::CorpusConfig config;
  config.num_queries = 25;
  config.seed = 2000 + GetParam();
  config.noise_sigma = 0.0;
  const auto records = workload::BuildCorpus(config);
  for (const auto& record : records) {
    FluidConfig noiseless;
    noiseless.noise_sigma = 0.0;
    const FluidReport report = EvaluateFluid(record.query, record.cluster,
                                             record.placement, noiseless);
    if (!report.metrics.backpressure) continue;
    // Under backpressure the sustained scale is < 1 and utilization ~1.
    EXPECT_LT(report.source_scale, 1.0);
    EXPECT_GT(report.bottleneck_utilization, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidBoundsTest, ::testing::Range(0, 4));

// Property: throughput is monotone in the filter selectivity.
class FluidSelectivityTest : public ::testing::TestWithParam<double> {};

TEST_P(FluidSelectivityTest, ThroughputMonotoneInSelectivity) {
  const double rate = GetParam();
  Cluster cluster{{StrongNode()}};
  double prev = -1.0;
  for (double sel : {0.05, 0.2, 0.5, 0.8, 1.0}) {
    QueryGraph q = SimpleFilterQuery(rate, sel);
    Placement placement(q.num_operators(), 0);
    const double t =
        EvaluateFluid(q, cluster, placement, Noiseless()).metrics.throughput;
    EXPECT_GE(t, prev - 1e-9) << "rate " << rate << " sel " << sel;
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, FluidSelectivityTest,
                         ::testing::Values(100.0, 1000.0, 10000.0));

// Property: more RAM never hurts (GC pressure and crashes only relax).
TEST(FluidEngineTest, MoreRamNeverHurts) {
  QueryBuilder b;
  auto s1 = b.Source(1500.0, std::vector<DataType>(8, DataType::kString));
  auto s2 = b.Source(1500.0, std::vector<DataType>(8, DataType::kString));
  dsps::WindowSpec w;
  w.policy = dsps::WindowPolicy::kTimeBased;
  w.type = dsps::WindowType::kSliding;
  w.size = 8.0;
  w.slide = 4.0;
  auto joined = b.WindowedJoin(s1, s2, w, DataType::kInt, 1e-3);
  QueryGraph q = b.Sink(joined);
  Placement placement(q.num_operators(), 0);
  double prev_throughput = -1.0;
  for (double ram : {1000.0, 2000.0, 4000.0, 8000.0, 32000.0}) {
    Cluster cluster{{HardwareNode{800.0, ram, 10000.0, 1.0}}};
    const FluidReport report =
        EvaluateFluid(q, cluster, placement, Noiseless());
    EXPECT_GE(report.metrics.throughput, prev_throughput - 1e-9)
        << "ram " << ram;
    prev_throughput = report.metrics.throughput;
  }
}

// Property: raising one source's rate never lowers sink throughput when the
// system stays un-backpressured.
TEST(FluidEngineTest, ThroughputMonotoneInRateWithoutBackpressure) {
  Cluster cluster{{StrongNode()}};
  double prev = -1.0;
  for (double rate : {100.0, 400.0, 1600.0, 6400.0}) {
    QueryGraph q = SimpleFilterQuery(rate, 0.5);
    Placement placement(q.num_operators(), 0);
    const FluidReport report =
        EvaluateFluid(q, cluster, placement, Noiseless());
    ASSERT_FALSE(report.metrics.backpressure);
    EXPECT_GT(report.metrics.throughput, prev);
    prev = report.metrics.throughput;
  }
}

// Property: an extra network hop never reduces the processing latency.
TEST(FluidEngineTest, ExtraHopNeverFaster) {
  QueryGraph q = SimpleFilterQuery(500.0, 0.5);
  Cluster cluster{{HardwareNode{400, 8000, 1000, 10.0},
                   HardwareNode{400, 8000, 1000, 10.0},
                   StrongNode()}};
  const double one_hop =
      EvaluateFluid(q, cluster, {0, 2, 2}, Noiseless())
          .metrics.processing_latency_ms;
  const double two_hops =
      EvaluateFluid(q, cluster, {0, 1, 2}, Noiseless())
          .metrics.processing_latency_ms;
  EXPECT_GE(two_hops, one_hop);
}

// Regression (label noise vs. success bit): a query whose noiseless latency
// sits just under the duration cap. Log-normal noise pushes some seeds past
// the cap; the success bit must flip with them, or labels contradict the
// invariant success == 1 => processing_latency_ms <= duration_s * 1000.
TEST(FluidEngineTest, SuccessImpliesLatencyUnderCapUnderNoise) {
  QueryBuilder b;
  auto s = b.Source(100.0, {DataType::kInt});
  dsps::WindowSpec w;
  w.policy = dsps::WindowPolicy::kTimeBased;
  w.type = dsps::WindowType::kSliding;
  w.size = 300.0;   // window wait ~(300+150)/2 s = 225000 ms, cap is 240000
  w.slide = 150.0;
  auto agg = b.WindowedAggregate(s, w, dsps::AggregateFunction::kMean,
                                 dsps::GroupByType::kNone, DataType::kInt,
                                 1.0);
  QueryGraph q = b.Sink(agg);
  Cluster cluster{{StrongNode()}};
  Placement placement(q.num_operators(), 0);

  int flipped = 0;
  for (int seed = 0; seed < 200; ++seed) {
    FluidConfig config;
    config.noise_sigma = 0.08;
    config.noise_seed = seed;
    const FluidReport r = EvaluateFluid(q, cluster, placement, config);
    ASSERT_TRUE(r.noiseless_metrics.success) << "seed " << seed;
    const double cap_ms = config.duration_s * 1000.0;
    if (r.metrics.processing_latency_ms > cap_ms) {
      ++flipped;
      EXPECT_FALSE(r.metrics.success) << "seed " << seed;
    }
    if (r.metrics.success) {
      EXPECT_LE(r.metrics.processing_latency_ms, cap_ms) << "seed " << seed;
    }
  }
  // The scenario must actually exercise the boundary, otherwise this test
  // proves nothing.
  EXPECT_GT(flipped, 0);
}

// Regression (crashed labels are exact): a crashed query's capped metrics
// (zero throughput, latency pinned to the run duration) must not be noised.
TEST(FluidEngineTest, CrashedMetricsAreNotNoised) {
  QueryBuilder b;
  auto s = b.Source(200.0, std::vector<DataType>(10, DataType::kString));
  dsps::WindowSpec w;
  w.policy = dsps::WindowPolicy::kTimeBased;
  w.type = dsps::WindowType::kSliding;
  w.size = 200.0;  // ~647 MB window state on a 1 GB node: certain crash
  w.slide = 100.0;
  auto agg = b.WindowedAggregate(s, w, dsps::AggregateFunction::kMax,
                                 dsps::GroupByType::kNone, DataType::kInt,
                                 1.0);
  QueryGraph q = b.Sink(agg);
  Cluster cluster{{HardwareNode{800.0, 1000.0, 10000.0, 1.0}}};
  Placement placement(q.num_operators(), 0);

  for (int seed = 1; seed <= 5; ++seed) {
    FluidConfig config;
    config.noise_sigma = 0.08;
    config.noise_seed = seed;
    const FluidReport r = EvaluateFluid(q, cluster, placement, config);
    bool crashed = false;
    for (const NodeStats& stats : r.node_stats) crashed |= stats.crashed;
    ASSERT_TRUE(crashed) << "seed " << seed;
    EXPECT_FALSE(r.metrics.success);
    EXPECT_DOUBLE_EQ(r.metrics.throughput, 0.0) << "seed " << seed;
    EXPECT_DOUBLE_EQ(r.metrics.e2e_latency_ms, config.duration_s * 1000.0)
        << "seed " << seed;
  }
}

// Regression (backlog GC feedback): two sources share a node whose uplink is
// the bottleneck. The backpressure backlog raises the node's gc_factor, and
// the reported cpu_utilization must reflect the raised factor — i.e. stay
// exactly consistent with the per-op cpu loads the report itself exposes.
TEST(FluidEngineTest, BacklogGcFeedbackReflectedInUtilization) {
  QueryBuilder b;
  auto s1 = b.Source(3000.0, std::vector<DataType>(10, DataType::kString));
  auto s2 = b.Source(3000.0, std::vector<DataType>(10, DataType::kString));
  dsps::WindowSpec w;
  w.policy = dsps::WindowPolicy::kCountBased;
  w.type = dsps::WindowType::kSliding;
  w.size = 100.0;
  w.slide = 50.0;
  auto joined = b.WindowedJoin(s1, s2, w, DataType::kInt, 1e-3);
  QueryGraph q = b.Sink(joined);

  // Node 0: both sources, narrow uplink (the bottleneck), 1 GB RAM so the
  // accrued backlog pushes it into GC pressure without crashing it.
  Cluster cluster{{HardwareNode{400.0, 1000.0, 12.5, 1.0}, StrongNode()}};
  Placement placement(q.num_operators(), 1);
  std::vector<int> sources;
  for (int id = 0; id < q.num_operators(); ++id) {
    if (q.op(id).type == dsps::OperatorType::kSource) {
      placement[id] = 0;
      sources.push_back(id);
    }
  }
  ASSERT_EQ(sources.size(), 2u);

  const FluidReport r = EvaluateFluid(q, cluster, placement, Noiseless());
  ASSERT_TRUE(r.metrics.backpressure);
  const NodeStats& stats = r.node_stats[0];
  ASSERT_FALSE(stats.crashed);
  ASSERT_GT(stats.gc_factor, 1.05);

  // cpu_utilization must equal the node's cpu load scaled by the *final*
  // gc_factor (the one the report carries after backlog was applied).
  const double cpu_load_us =
      r.op_cpu_load_us[sources[0]] + r.op_cpu_load_us[sources[1]];
  const double cores = cluster.nodes[0].cpu_pct / 100.0;
  const double expected = cpu_load_us * stats.gc_factor / 1e6 / cores;
  EXPECT_NEAR(stats.cpu_utilization, expected, expected * 1e-9);
}

}  // namespace
}  // namespace costream::sim
