// Property tests of the negotiated-congestion rip-up loop: escalating
// history/overflow penalties must make Converge() terminate on adversarial
// fixtures where every query initially prefers the same node — spreading the
// load when a conforming spread exists, and stopping at the iteration cap
// when none does — and the converged placement's aggregate DES throughput
// must be no worse than greedy first-fit admission.
//
// Fixture sizing (ComputeBackgroundLoad of the heavy query on a 4-core
// node): one query demands ~0.44 utilization, so 3+ piled on one node
// overflow it, up to 2 per node conform, and 12 queries overflow even a
// perfect spread.
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "dsps/query_builder.h"
#include "service/placement_service.h"
#include "sim/fluid_engine.h"
#include "workload/corpus.h"

namespace costream::service {
namespace {

using dsps::DataType;
using dsps::FilterFunction;
using dsps::QueryBuilder;
using dsps::QueryGraph;

QueryGraph HeavyQuery() {
  QueryBuilder b;
  auto s = b.Source(12800.0, std::vector<DataType>(8, DataType::kString));
  auto f = b.Filter(s, FilterFunction::kStartsWith, DataType::kString, 0.8);
  return b.Sink(f);
}

sim::Cluster FourNodeCluster() {
  sim::Cluster cluster;
  for (int i = 0; i < 4; ++i) {
    cluster.nodes.push_back({400.0, 16000.0, 2000.0, 5.0});
  }
  return cluster;
}

core::Ensemble TinyThroughputEnsemble() {
  workload::CorpusConfig cc;
  cc.num_queries = 50;
  cc.seed = 41;
  cc.duration_s = 30.0;
  const auto records = workload::BuildCorpus(cc);
  core::CostModelConfig config;
  config.hidden_dim = 8;
  core::Ensemble ensemble(config, 1);
  auto samples = workload::ToTrainSamples(records, sim::Metric::kThroughput);
  core::TrainConfig tc;
  tc.epochs = 3;
  ensemble.Train(samples, {}, tc);
  return ensemble;
}

ServiceConfig LearnedConfig() {
  ServiceConfig config;
  config.target = sim::Metric::kThroughput;
  config.num_candidates = 16;
  config.seed = 3;
  config.num_threads = 1;
  return config;
}

// N queries forced onto node 0; a conforming spread exists for every N here
// (at most 2 heavy queries fit one node, 4 nodes).
class RipUpConvergenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RipUpConvergenceTest, EscalatingPenaltiesSpreadThePileup) {
  const int n_queries = GetParam();
  const core::Ensemble target = TinyThroughputEnsemble();
  PlacementService service(FourNodeCluster(), &target, nullptr, nullptr,
                           LearnedConfig());

  const QueryGraph query = HeavyQuery();
  for (int i = 0; i < n_queries; ++i) {
    service.AdmitWithPlacement(query,
                               sim::Placement(query.num_operators(), 0));
  }
  ASSERT_GT(service.ledger().NodeUtilization(0), 1.0);
  ASSERT_EQ(service.ledger().OverflowedNodes(), std::vector<int>{0});

  const ConvergeResult result = service.Converge();
  EXPECT_TRUE(result.converged) << "N=" << n_queries;
  EXPECT_TRUE(result.overflowed_nodes.empty());
  EXPECT_TRUE(service.ledger().OverflowedNodes().empty());
  EXPECT_GE(result.iterations, 1);
  EXPECT_LE(result.iterations, service.config().max_iterations);
  // Every pile-up query was ripped up at least once in the first iteration.
  EXPECT_GE(result.ripups, n_queries);
  // The contended node accumulated history, so it stays expensive: its
  // price reflects the contention even after the overflow clears.
  EXPECT_GE(service.ledger().history(0), 1);
  EXPECT_GT(service.ledger().NodePenalty(0), 1.0);
  EXPECT_EQ(service.ledger().CheckInvariants(), "");

  // All re-placements still conform to the placement rules.
  for (const int64_t id : service.QueryIds()) {
    EXPECT_EQ(sim::ValidatePlacement(service.QueryOf(id),
                                     service.ledger().cluster(),
                                     service.PlacementOf(id)),
              "");
  }
}

INSTANTIATE_TEST_SUITE_P(PileupSizes, RipUpConvergenceTest,
                         ::testing::Values(3, 4, 6));

TEST(RipUpTerminationTest, HopelessFixtureStopsAtIterationCap) {
  // 12 heavy queries demand ~1.32 utilization per node even when spread
  // perfectly — no conforming assignment exists, so the only correct
  // behaviour is to terminate at the cap with the overflow reported.
  const core::Ensemble target = TinyThroughputEnsemble();
  ServiceConfig config = LearnedConfig();
  config.max_iterations = 6;
  PlacementService service(FourNodeCluster(), &target, nullptr, nullptr,
                           config);
  const QueryGraph query = HeavyQuery();
  for (int i = 0; i < 12; ++i) {
    service.AdmitWithPlacement(query,
                               sim::Placement(query.num_operators(), 0));
  }
  const ConvergeResult result = service.Converge();
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, config.max_iterations);
  EXPECT_FALSE(result.overflowed_nodes.empty());
  EXPECT_EQ(service.ledger().CheckInvariants(), "");
  // Penalties stayed finite despite the escalation (clamped table).
  for (int n = 0; n < service.ledger().num_nodes(); ++n) {
    EXPECT_LE(service.ledger().NodePenalty(n),
              (1.0 + 0.5 * config.max_iterations * 2.0) *
                  service.ledger().config().max_penalty);
  }
}

TEST(ConvergedThroughputTest, NoWorseThanGreedyFirstFit) {
  const core::Ensemble target = TinyThroughputEnsemble();
  const QueryGraph query = HeavyQuery();
  constexpr int kQueries = 6;

  // Greedy first-fit admission, no convergence loop.
  ServiceConfig greedy_config = LearnedConfig();
  greedy_config.policy = AdmissionPolicy::kGreedyFirstFit;
  PlacementService greedy(FourNodeCluster(), nullptr, nullptr, nullptr,
                          greedy_config);
  for (int i = 0; i < kQueries; ++i) greedy.Admit(query);

  // Learned admission + negotiated-congestion convergence.
  PlacementService learned(FourNodeCluster(), &target, nullptr, nullptr,
                           LearnedConfig());
  for (int i = 0; i < kQueries; ++i) learned.Admit(query);
  const ConvergeResult converge = learned.Converge();
  EXPECT_TRUE(converge.converged);

  const AggregateThroughput g = greedy.MeasureAggregateThroughput(0, 1.0);
  const AggregateThroughput l = learned.MeasureAggregateThroughput(0, 1.0);
  ASSERT_EQ(g.queries, kQueries);
  ASSERT_EQ(l.queries, kQueries);
  EXPECT_GT(g.des, 0.0);
  EXPECT_GT(l.des, 0.0);
  EXPECT_GT(l.predicted, 0.0);
  // The converged learned placement must not lose throughput against the
  // greedy baseline (small tolerance for DES noise).
  EXPECT_GE(l.des, 0.95 * g.des);
}

}  // namespace
}  // namespace costream::service
