#include "eval/metrics.h"
#include "eval/table.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

namespace costream::eval {
namespace {

TEST(QErrorTest, PerfectEstimateIsOne) {
  EXPECT_DOUBLE_EQ(QError(5.0, 5.0), 1.0);
}

TEST(QErrorTest, Symmetric) {
  EXPECT_DOUBLE_EQ(QError(10.0, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(QError(5.0, 10.0), 2.0);
}

TEST(QErrorTest, AlwaysAtLeastOne) {
  for (double a : {0.001, 1.0, 1e6}) {
    for (double p : {0.001, 1.0, 1e6}) {
      EXPECT_GE(QError(a, p), 1.0);
    }
  }
}

TEST(QErrorTest, HandlesZeroGracefully) {
  EXPECT_TRUE(std::isfinite(QError(0.0, 5.0)));
  EXPECT_TRUE(std::isfinite(QError(5.0, 0.0)));
}

TEST(QuantileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(Quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(QuantileTest, Extremes) {
  EXPECT_DOUBLE_EQ(Quantile({4.0, 2.0, 9.0}, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(Quantile({4.0, 2.0, 9.0}, 1.0), 9.0);
}

TEST(QuantileTest, Interpolates) {
  EXPECT_DOUBLE_EQ(Quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.95), 7.0);
}

TEST(SummarizeQErrorsTest, MedianAndTail) {
  std::vector<double> actual = {1, 1, 1, 1, 1};
  std::vector<double> predicted = {1, 2, 1, 4, 1};
  const QErrorSummary s = SummarizeQErrors(actual, predicted);
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.q50, 1.0);
  EXPECT_GT(s.q95, 3.0);
}

TEST(AccuracyTest, AllCorrect) {
  EXPECT_DOUBLE_EQ(Accuracy({true, false}, {true, false}), 1.0);
}

TEST(AccuracyTest, HalfCorrect) {
  EXPECT_DOUBLE_EQ(Accuracy({true, false}, {true, true}), 0.5);
}

TEST(BalancedIndicesTest, EqualClassCounts) {
  const std::vector<bool> labels = {true, true, true, false, true, false};
  const std::vector<int> indices = BalancedIndices(labels);
  int pos = 0;
  int neg = 0;
  for (int i : indices) (labels[i] ? pos : neg)++;
  EXPECT_EQ(pos, 2);
  EXPECT_EQ(neg, 2);
}

TEST(BalancedIndicesTest, EmptyWhenOneClassMissing) {
  EXPECT_TRUE(BalancedIndices({true, true}).empty());
}

TEST(TableTest, AlignsColumns) {
  Table t({"metric", "value"});
  t.AddRow({"throughput", "1.33"});
  t.AddRow({"e2e", "12345.67"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| metric"), std::string::npos);
  EXPECT_NE(s.find("1.33"), std::string::npos);
  // Each rendered line has the same width.
  size_t first_line_len = s.find('\n');
  size_t pos = first_line_len + 1;
  while (pos < s.size()) {
    const size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, first_line_len);
    pos = next + 1;
  }
}

TEST(TableTest, CsvFormat) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TableTest, WriteCsvToFile) {
  Table t({"x"});
  t.AddRow({"42"});
  const std::string path = ::testing::TempDir() + "/costream_table.csv";
  EXPECT_TRUE(t.WriteCsv(path));
  std::remove(path.c_str());
}

TEST(TableTest, NumAndPercentFormatting) {
  EXPECT_EQ(Table::Num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
  EXPECT_EQ(Table::Percent(0.876, 1), "87.6%");
}

TEST(TableDeathTest, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only one"}), "COSTREAM_CHECK");
}

}  // namespace
}  // namespace costream::eval
