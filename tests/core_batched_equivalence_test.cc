// The batched execution mode must be numerically invisible: every stage-level
// GEMM, gather, segment-sum and scatter accumulates in the exact index order
// of the per-node reference path, so predictions, gradients, per-epoch
// trained parameters and optimizer placement choices are bitwise identical —
// not merely close — at any thread count. ExecutionMode::kPerNode exists
// precisely to back this contract.
#include <vector>

#include <gtest/gtest.h>

#include "core/ensemble.h"
#include "core/trainer.h"
#include "placement/enumeration.h"
#include "placement/optimizer.h"
#include "placement/parallelism_tuner.h"
#include "placement/scorer.h"
#include "workload/corpus.h"

namespace costream {
namespace {

std::vector<workload::TraceRecord> FixedCorpus(int num_queries,
                                               uint64_t seed) {
  workload::CorpusConfig config;
  config.num_queries = num_queries;
  config.seed = seed;
  config.duration_s = 60.0;
  return workload::BuildCorpus(config);
}

void ExpectParamsIdentical(const std::vector<nn::Matrix>& a,
                           const std::vector<nn::Matrix>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].SameShape(b[i]));
    for (int j = 0; j < a[i].size(); ++j) {
      ASSERT_EQ(a[i].data()[j], b[i].data()[j])
          << "param " << i << " entry " << j;
    }
  }
}

core::CostModelConfig BaseConfig(core::MessagePassingMode mp,
                                 core::FeaturizationMode feat) {
  core::CostModelConfig config;
  config.hidden_dim = 16;
  config.message_passing = mp;
  config.featurization = feat;
  return config;
}

TEST(BatchedEquivalenceTest, PredictionsBitwiseIdentical) {
  const auto records = FixedCorpus(10, 71);
  for (const auto mp : {core::MessagePassingMode::kStaged,
                        core::MessagePassingMode::kTraditional}) {
    for (const auto feat : {core::FeaturizationMode::kFull,
                            core::FeaturizationMode::kPlacementOnly,
                            core::FeaturizationMode::kOperatorsOnly}) {
      core::CostModelConfig config = BaseConfig(mp, feat);
      config.execution = core::ExecutionMode::kBatched;
      const core::CostModel batched(config);
      config.execution = core::ExecutionMode::kPerNode;
      const core::CostModel per_node(config);

      nn::Tape reused;
      for (const auto& record : records) {
        const core::JointGraph graph = core::BuildJointGraph(
            record.query, record.cluster, record.placement, feat);
        const double reference = per_node.PredictRegression(graph);
        ASSERT_EQ(batched.PredictRegression(graph), reference);
        // Arena reuse must be invisible too: the same tape, reset and
        // refilled across differently-shaped graphs, yields the same value.
        ASSERT_EQ(batched.PredictRegression(graph, reused), reference);
        ASSERT_EQ(batched.PredictProbability(graph),
                  per_node.PredictProbability(graph));
      }
    }
  }
}

TEST(BatchedEquivalenceTest, GradientsBitwiseIdentical) {
  const auto records = FixedCorpus(6, 83);
  for (const auto mp : {core::MessagePassingMode::kStaged,
                        core::MessagePassingMode::kTraditional}) {
    core::CostModelConfig config =
        BaseConfig(mp, core::FeaturizationMode::kFull);
    config.execution = core::ExecutionMode::kBatched;
    core::CostModel batched(config);
    config.execution = core::ExecutionMode::kPerNode;
    core::CostModel per_node(config);

    for (const auto& record : records) {
      const core::JointGraph graph = core::BuildJointGraph(
          record.query, record.cluster, record.placement);
      const nn::Matrix target = nn::Matrix::Scalar(1.7);

      for (nn::Parameter* p : batched.parameters()) p->ZeroGrad();
      nn::Tape tape_b;
      tape_b.Backward(tape_b.MseLoss(batched.Forward(tape_b, graph), target));

      for (nn::Parameter* p : per_node.parameters()) p->ZeroGrad();
      nn::Tape tape_p;
      tape_p.Backward(
          tape_p.MseLoss(per_node.Forward(tape_p, graph), target));

      const auto& bp = batched.parameters();
      const auto& pp = per_node.parameters();
      ASSERT_EQ(bp.size(), pp.size());
      for (size_t i = 0; i < bp.size(); ++i) {
        ASSERT_TRUE(bp[i]->grad.SameShape(pp[i]->grad));
        for (int j = 0; j < bp[i]->grad.size(); ++j) {
          ASSERT_EQ(bp[i]->grad.data()[j], pp[i]->grad.data()[j])
              << "param " << i << " entry " << j;
        }
      }
    }
  }
}

TEST(BatchedEquivalenceTest, TrainedParametersIdenticalEveryEpoch) {
  const auto records = FixedCorpus(30, 91);
  const auto samples =
      workload::ToTrainSamples(records, sim::Metric::kThroughput);
  ASSERT_GE(samples.size(), 16u);

  core::CostModelConfig config = BaseConfig(
      core::MessagePassingMode::kStaged, core::FeaturizationMode::kFull);
  config.execution = core::ExecutionMode::kBatched;
  core::CostModel batched(config);
  core::CostModel batched_mt(config);
  config.execution = core::ExecutionMode::kPerNode;
  core::CostModel per_node(config);

  for (int epoch = 0; epoch < 3; ++epoch) {
    core::TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 8;
    tc.seed = 300 + epoch;
    tc.num_threads = 1;
    const core::TrainResult reference =
        core::TrainModel(per_node, samples, {}, tc);
    const core::TrainResult serial = core::TrainModel(batched, samples, {}, tc);
    tc.num_threads = 4;
    const core::TrainResult threaded =
        core::TrainModel(batched_mt, samples, {}, tc);

    ASSERT_EQ(reference.train_losses, serial.train_losses);
    ASSERT_EQ(reference.train_losses, threaded.train_losses);
    ExpectParamsIdentical(per_node.SnapshotParameters(),
                          batched.SnapshotParameters());
    ExpectParamsIdentical(per_node.SnapshotParameters(),
                          batched_mt.SnapshotParameters());
  }
}

TEST(BatchedEquivalenceTest, CachedScorerMatchesFreshGraphs) {
  // The PlacementScorer rewrites only the host tail (and, for the tuner,
  // single parallelism features) of cached graphs. Reusing one workspace
  // across many candidates must give exactly the predictions of featurizing
  // every candidate from scratch.
  const auto records = FixedCorpus(4, 107);

  core::CostModelConfig regression = BaseConfig(
      core::MessagePassingMode::kStaged, core::FeaturizationMode::kFull);
  regression.hidden_dim = 12;
  core::CostModelConfig classification = regression;
  classification.head = core::HeadKind::kClassification;
  // A second featurization mode exercises the per-mode graph caching.
  classification.featurization = core::FeaturizationMode::kPlacementOnly;
  const core::Ensemble target(regression, 2);
  const core::Ensemble success(classification, 2);

  for (const auto& record : records) {
    const placement::PlacementScorer scorer(record.query, record.cluster,
                                            &target, &success, nullptr);
    placement::PlacementScorer::Workspace ws = scorer.MakeWorkspace();

    placement::EnumerationConfig enumeration;
    enumeration.num_candidates = 12;
    const auto candidates = placement::EnumerateCandidates(
        record.query, record.cluster, enumeration);
    for (const sim::Placement& candidate : candidates) {
      const auto score = scorer.Score(ws, candidate);
      const core::JointGraph full = core::BuildJointGraph(
          record.query, record.cluster, candidate,
          core::FeaturizationMode::kFull);
      const core::JointGraph placement_only = core::BuildJointGraph(
          record.query, record.cluster, candidate,
          core::FeaturizationMode::kPlacementOnly);
      ASSERT_EQ(score.cost, target.PredictRegression(full));
      ASSERT_EQ(score.feasible, success.PredictBinary(placement_only));
    }

    // Parallelism rewrites: flipping one degree in the cached graphs equals
    // re-featurizing a query whose operator has that degree.
    dsps::QueryGraph modified = record.query;
    const int op = modified.num_operators() / 2;
    modified.mutable_op(op).parallelism = 4;
    scorer.SetParallelism(ws, op, 4);
    ASSERT_EQ(scorer.PredictTarget(ws, record.placement),
              target.PredictRegression(core::BuildJointGraph(
                  modified, record.cluster, record.placement,
                  core::FeaturizationMode::kFull)));
    scorer.SetParallelism(ws, op, record.query.op(op).parallelism);
    ASSERT_EQ(scorer.PredictTarget(ws, record.placement),
              target.PredictRegression(core::BuildJointGraph(
                  record.query, record.cluster, record.placement,
                  core::FeaturizationMode::kFull)));
  }
}

TEST(BatchedEquivalenceTest, OptimizerPlacementChoiceIdentical) {
  const auto records = FixedCorpus(4, 97);

  const auto make_ensembles = [](core::ExecutionMode exec) {
    core::CostModelConfig regression = BaseConfig(
        core::MessagePassingMode::kStaged, core::FeaturizationMode::kFull);
    regression.hidden_dim = 12;
    regression.execution = exec;
    core::CostModelConfig classification = regression;
    classification.head = core::HeadKind::kClassification;
    classification.seed = 11;
    auto target = std::make_unique<core::Ensemble>(regression, 2);
    auto success = std::make_unique<core::Ensemble>(classification, 2);
    classification.seed = 21;
    auto backpressure = std::make_unique<core::Ensemble>(classification, 2);
    return std::tuple(std::move(target), std::move(success),
                      std::move(backpressure));
  };

  const auto [bt, bs, bb] = make_ensembles(core::ExecutionMode::kBatched);
  const auto [pt, ps, pb] = make_ensembles(core::ExecutionMode::kPerNode);
  const placement::PlacementOptimizer batched(bt.get(), bs.get(), bb.get());
  const placement::PlacementOptimizer per_node(pt.get(), ps.get(), pb.get());

  for (const auto& record : records) {
    placement::OptimizerConfig config;
    config.enumeration.num_candidates = 30;
    config.num_threads = 1;
    config.enumeration.num_threads = 1;
    const auto reference = per_node.Optimize(record.query, record.cluster,
                                             config);
    for (int threads : {1, 4}) {
      config.num_threads = threads;
      const auto result = batched.Optimize(record.query, record.cluster,
                                           config);
      ASSERT_EQ(reference.best, result.best);
      ASSERT_EQ(reference.predicted_cost, result.predicted_cost);
      ASSERT_EQ(reference.any_feasible, result.any_feasible);
      ASSERT_EQ(reference.candidates_evaluated, result.candidates_evaluated);
      ASSERT_EQ(reference.candidates_filtered, result.candidates_filtered);
    }
  }
}

TEST(BatchedEquivalenceTest, ParallelismTunerChoiceIdentical) {
  const auto records = FixedCorpus(3, 101);

  core::CostModelConfig config = BaseConfig(
      core::MessagePassingMode::kStaged, core::FeaturizationMode::kFull);
  config.hidden_dim = 12;
  config.execution = core::ExecutionMode::kBatched;
  core::Ensemble batched(config, 2);
  config.execution = core::ExecutionMode::kPerNode;
  core::Ensemble per_node(config, 2);

  for (const auto& record : records) {
    placement::ParallelismTunerConfig tuner_config;
    tuner_config.max_rounds = 3;
    tuner_config.num_threads = 1;
    const auto reference = placement::TuneParallelism(
        record.query, record.cluster, record.placement, per_node,
        tuner_config);
    for (int threads : {1, 4}) {
      tuner_config.num_threads = threads;
      const auto result = placement::TuneParallelism(
          record.query, record.cluster, record.placement, batched,
          tuner_config);
      ASSERT_EQ(reference.parallelism, result.parallelism);
      ASSERT_EQ(reference.predicted_initial, result.predicted_initial);
      ASSERT_EQ(reference.predicted_tuned, result.predicted_tuned);
      ASSERT_EQ(reference.changes, result.changes);
    }
  }
}

}  // namespace
}  // namespace costream
