// Unit tests of the low-precision weight copies behind the placement
// fast path's ranking tier: bf16 round-to-nearest-even conversion, int8
// per-column symmetric scales, and QuantizedMlp forwards staying close to
// (and deterministic against) the full-precision Mlp they snapshot.
#include "nn/quantized.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "nn/autograd.h"
#include "nn/layers.h"
#include "nn/random.h"

namespace costream::nn {
namespace {

float FromBits(uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

uint32_t ToBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

TEST(Bf16Test, ExactValuesPassThrough) {
  EXPECT_EQ(Bf16FromFloat(0.0f), 0x0000);
  EXPECT_EQ(Bf16FromFloat(1.0f), 0x3f80);
  EXPECT_EQ(Bf16FromFloat(-2.0f), 0xc000);
  EXPECT_EQ(FloatFromBf16(Bf16FromFloat(1.5f)), 1.5f);
}

TEST(Bf16Test, RoundsToNearestEven) {
  // Tie (lower half exactly 0x8000) with even upper half: stays.
  EXPECT_EQ(Bf16FromFloat(FromBits(0x3f808000u)), 0x3f80);
  // Tie with odd upper half: rounds up to even.
  EXPECT_EQ(Bf16FromFloat(FromBits(0x3f818000u)), 0x3f82);
  // Just above the tie: always rounds up.
  EXPECT_EQ(Bf16FromFloat(FromBits(0x3f808001u)), 0x3f81);
  // Just below the tie: always rounds down.
  EXPECT_EQ(Bf16FromFloat(FromBits(0x3f807fffu)), 0x3f80);
}

TEST(Bf16Test, RoundTripErrorBounded) {
  // bf16 keeps 8 mantissa bits: relative round-trip error < 2^-8.
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.Uniform(-100.0, 100.0));
    const float back = FloatFromBf16(Bf16FromFloat(v));
    EXPECT_LE(std::fabs(back - v), std::fabs(v) * (1.0f / 256.0f) + 1e-30f);
  }
}

TEST(Bf16Test, SpecialsSurvive) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(FloatFromBf16(Bf16FromFloat(inf)), inf);
  EXPECT_EQ(FloatFromBf16(Bf16FromFloat(-inf)), -inf);
  // NaN stays NaN; the rounding carry must not overflow it into infinity.
  const float nan_payload = FromBits(0x7f800001u | 0x00007fffu);
  EXPECT_TRUE(std::isnan(FloatFromBf16(Bf16FromFloat(nan_payload))));
  EXPECT_TRUE(std::isnan(
      FloatFromBf16(Bf16FromFloat(std::numeric_limits<float>::quiet_NaN()))));
}

Matrix RandomMatrix(int rows, int cols, uint64_t seed, double lo = -2.0,
                    double hi = 2.0) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng.Uniform(lo, hi);
  }
  return m;
}

TEST(Int8Test, PerColumnScaleAndBounds) {
  const Matrix w = RandomMatrix(9, 5, 11);
  const Int8Matrix q = QuantizeInt8(w);
  ASSERT_EQ(q.rows, 9);
  ASSERT_EQ(q.cols, 5);
  ASSERT_EQ(static_cast<int>(q.scale.size()), 5);
  for (int c = 0; c < 5; ++c) {
    double max_abs = 0.0;
    for (int r = 0; r < 9; ++r) max_abs = std::max(max_abs, std::fabs(w(r, c)));
    // The scale is stored as float; compare at float precision.
    EXPECT_NEAR(q.scale[c], max_abs / 127.0, max_abs * 1e-6);
    for (int r = 0; r < 9; ++r) {
      const int code = q.data[static_cast<size_t>(r) * 5 + c];
      EXPECT_GE(code, -127);
      EXPECT_LE(code, 127);
      // Reconstruction error is at most half a quantization step.
      const double back = static_cast<double>(code) * q.scale[c];
      EXPECT_LE(std::fabs(back - w(r, c)), q.scale[c] * 0.500001 + 1e-12);
    }
  }
}

TEST(Int8Test, AllZeroColumnGetsZeroScale) {
  Matrix w(4, 2);
  w(0, 1) = 3.0;
  const Int8Matrix q = QuantizeInt8(w);
  EXPECT_EQ(q.scale[0], 0.0f);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(q.data[static_cast<size_t>(r) * 2], 0);
}

// Full-precision reference forward of `mlp` on `x`.
Matrix ReferenceForward(const Mlp& mlp, const Matrix& x) {
  Tape tape;
  const Var y = mlp.Apply(tape, tape.Input(x));
  return tape.value(y);
}

void FillFloat(const Matrix& src, FloatMatrix& dst) {
  dst.ResizeUninit(src.rows(), src.cols());
  for (int r = 0; r < src.rows(); ++r) {
    for (int c = 0; c < src.cols(); ++c) {
      dst.row(r)[c] = static_cast<float>(src(r, c));
    }
  }
}

void CheckClose(const Mlp& mlp, QuantKind kind, double rel_tol) {
  const Matrix x = RandomMatrix(7, mlp.in_features(), 23, -1.5, 1.5);
  const Matrix ref = ReferenceForward(mlp, x);

  const QuantizedMlp qmlp(mlp, kind);
  FloatMatrix xf, y, scratch;
  FillFloat(x, xf);
  qmlp.Apply(xf, y, scratch);
  ASSERT_EQ(y.rows(), ref.rows());
  ASSERT_EQ(y.cols(), ref.cols());
  double ref_scale = 1.0;
  for (int r = 0; r < ref.rows(); ++r) {
    for (int c = 0; c < ref.cols(); ++c) {
      ref_scale = std::max(ref_scale, std::fabs(ref(r, c)));
    }
  }
  for (int r = 0; r < ref.rows(); ++r) {
    for (int c = 0; c < ref.cols(); ++c) {
      EXPECT_NEAR(y.row(r)[c], ref(r, c), rel_tol * ref_scale)
          << ToString(kind) << " at (" << r << "," << c << ")";
    }
  }
}

TEST(QuantizedMlpTest, Bf16TracksFullPrecision) {
  Rng rng(41);
  const Mlp mlp({6, 16, 16, 3}, rng);
  CheckClose(mlp, QuantKind::kBf16, 0.02);
}

TEST(QuantizedMlpTest, Int8TracksFullPrecision) {
  Rng rng(42);
  const Mlp mlp({6, 16, 16, 3}, rng);
  CheckClose(mlp, QuantKind::kInt8, 0.08);
}

TEST(QuantizedMlpTest, ReluFusionMatchesHiddenActivations) {
  // A 2-layer MLP without output activation: hidden layer relu'd, output
  // not. With non-negative weights and inputs the bf16 copy is exact for
  // representable values, so activations can be compared tightly.
  Rng rng(43);
  const Mlp mlp({4, 8, 2}, rng);
  CheckClose(mlp, QuantKind::kBf16, 0.02);
}

TEST(QuantizedMlpTest, ApplyIsDeterministic) {
  Rng rng(44);
  const Mlp mlp({5, 12, 4}, rng);
  const QuantizedMlp qmlp(mlp, QuantKind::kInt8);
  const Matrix x = RandomMatrix(9, 5, 77);
  FloatMatrix xf, y1, y2, scratch;
  FillFloat(x, xf);
  qmlp.Apply(xf, y1, scratch);
  qmlp.Apply(xf, y2, scratch);
  ASSERT_EQ(y1.size(), y2.size());
  for (int i = 0; i < y1.size(); ++i) {
    EXPECT_EQ(ToBits(y1.data()[i]), ToBits(y2.data()[i])) << "element " << i;
  }
}

TEST(QuantizedMlpTest, SnapshotIsDecoupledFromSource) {
  Rng rng(45);
  Mlp mlp({3, 6, 2}, rng);
  const QuantizedMlp qmlp(mlp, QuantKind::kBf16);
  const Matrix x = RandomMatrix(2, 3, 5);
  FloatMatrix xf, before, after, scratch;
  FillFloat(x, xf);
  qmlp.Apply(xf, before, scratch);
  // Perturb the source weights; the snapshot must not move.
  std::vector<Parameter*> params;
  mlp.CollectParameters(params);
  for (Parameter* p : params) {
    for (int r = 0; r < p->value.rows(); ++r) {
      for (int c = 0; c < p->value.cols(); ++c) p->value(r, c) += 0.5;
    }
  }
  qmlp.Apply(xf, after, scratch);
  for (int i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before.data()[i], after.data()[i]);
  }
}

}  // namespace
}  // namespace costream::nn
