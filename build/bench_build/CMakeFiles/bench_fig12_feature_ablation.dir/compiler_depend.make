# Empty compiler generated dependencies file for bench_fig12_feature_ablation.
# This may be replaced when dependencies are built.
