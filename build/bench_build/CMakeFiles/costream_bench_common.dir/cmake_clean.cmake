file(REMOVE_RECURSE
  "CMakeFiles/costream_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/costream_bench_common.dir/bench_common.cc.o.d"
  "libcostream_bench_common.a"
  "libcostream_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costream_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
