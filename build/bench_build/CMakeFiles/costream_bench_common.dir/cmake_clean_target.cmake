file(REMOVE_RECURSE
  "libcostream_bench_common.a"
)
