# Empty compiler generated dependencies file for costream_bench_common.
# This may be replaced when dependencies are built.
