file(REMOVE_RECURSE
  "../bench/bench_fig10_monitoring"
  "../bench/bench_fig10_monitoring.pdb"
  "CMakeFiles/bench_fig10_monitoring.dir/bench_fig10_monitoring.cc.o"
  "CMakeFiles/bench_fig10_monitoring.dir/bench_fig10_monitoring.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
