# Empty compiler generated dependencies file for bench_fig07_hardware_groups.
# This may be replaced when dependencies are built.
