file(REMOVE_RECURSE
  "../bench/bench_fig07_hardware_groups"
  "../bench/bench_fig07_hardware_groups.pdb"
  "CMakeFiles/bench_fig07_hardware_groups.dir/bench_fig07_hardware_groups.cc.o"
  "CMakeFiles/bench_fig07_hardware_groups.dir/bench_fig07_hardware_groups.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_hardware_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
