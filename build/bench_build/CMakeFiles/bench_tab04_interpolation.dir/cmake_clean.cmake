file(REMOVE_RECURSE
  "../bench/bench_tab04_interpolation"
  "../bench/bench_tab04_interpolation.pdb"
  "CMakeFiles/bench_tab04_interpolation.dir/bench_tab04_interpolation.cc.o"
  "CMakeFiles/bench_tab04_interpolation.dir/bench_tab04_interpolation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
