# Empty compiler generated dependencies file for bench_tab06a_unseen_patterns.
# This may be replaced when dependencies are built.
