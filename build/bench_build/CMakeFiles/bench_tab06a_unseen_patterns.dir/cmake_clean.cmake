file(REMOVE_RECURSE
  "../bench/bench_tab06a_unseen_patterns"
  "../bench/bench_tab06a_unseen_patterns.pdb"
  "CMakeFiles/bench_tab06a_unseen_patterns.dir/bench_tab06a_unseen_patterns.cc.o"
  "CMakeFiles/bench_tab06a_unseen_patterns.dir/bench_tab06a_unseen_patterns.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab06a_unseen_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
