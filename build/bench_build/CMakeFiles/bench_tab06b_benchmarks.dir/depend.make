# Empty dependencies file for bench_tab06b_benchmarks.
# This may be replaced when dependencies are built.
