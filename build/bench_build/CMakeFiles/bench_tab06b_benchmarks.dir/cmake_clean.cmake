file(REMOVE_RECURSE
  "../bench/bench_tab06b_benchmarks"
  "../bench/bench_tab06b_benchmarks.pdb"
  "CMakeFiles/bench_tab06b_benchmarks.dir/bench_tab06b_benchmarks.cc.o"
  "CMakeFiles/bench_tab06b_benchmarks.dir/bench_tab06b_benchmarks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab06b_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
