# Empty dependencies file for bench_ext_parallelism.
# This may be replaced when dependencies are built.
