file(REMOVE_RECURSE
  "../bench/bench_fig08_query_types"
  "../bench/bench_fig08_query_types.pdb"
  "CMakeFiles/bench_fig08_query_types.dir/bench_fig08_query_types.cc.o"
  "CMakeFiles/bench_fig08_query_types.dir/bench_fig08_query_types.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_query_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
