# Empty compiler generated dependencies file for bench_fig09_placement_speedup.
# This may be replaced when dependencies are built.
