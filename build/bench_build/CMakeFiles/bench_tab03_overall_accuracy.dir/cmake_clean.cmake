file(REMOVE_RECURSE
  "../bench/bench_tab03_overall_accuracy"
  "../bench/bench_tab03_overall_accuracy.pdb"
  "CMakeFiles/bench_tab03_overall_accuracy.dir/bench_tab03_overall_accuracy.cc.o"
  "CMakeFiles/bench_tab03_overall_accuracy.dir/bench_tab03_overall_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_overall_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
