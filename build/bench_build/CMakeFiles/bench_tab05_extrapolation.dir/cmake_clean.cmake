file(REMOVE_RECURSE
  "../bench/bench_tab05_extrapolation"
  "../bench/bench_tab05_extrapolation.pdb"
  "CMakeFiles/bench_tab05_extrapolation.dir/bench_tab05_extrapolation.cc.o"
  "CMakeFiles/bench_tab05_extrapolation.dir/bench_tab05_extrapolation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab05_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
