# Empty dependencies file for bench_tab05_extrapolation.
# This may be replaced when dependencies are built.
