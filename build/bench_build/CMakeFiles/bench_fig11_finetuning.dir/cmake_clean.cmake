file(REMOVE_RECURSE
  "../bench/bench_fig11_finetuning"
  "../bench/bench_fig11_finetuning.pdb"
  "CMakeFiles/bench_fig11_finetuning.dir/bench_fig11_finetuning.cc.o"
  "CMakeFiles/bench_fig11_finetuning.dir/bench_fig11_finetuning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_finetuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
