# Empty dependencies file for bench_fig13_mp_ablation.
# This may be replaced when dependencies are built.
