file(REMOVE_RECURSE
  "CMakeFiles/placement_multi_query_test.dir/placement_multi_query_test.cc.o"
  "CMakeFiles/placement_multi_query_test.dir/placement_multi_query_test.cc.o.d"
  "placement_multi_query_test"
  "placement_multi_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_multi_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
