# Empty dependencies file for placement_multi_query_test.
# This may be replaced when dependencies are built.
