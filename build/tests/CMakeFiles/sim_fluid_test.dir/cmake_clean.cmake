file(REMOVE_RECURSE
  "CMakeFiles/sim_fluid_test.dir/sim_fluid_test.cc.o"
  "CMakeFiles/sim_fluid_test.dir/sim_fluid_test.cc.o.d"
  "sim_fluid_test"
  "sim_fluid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_fluid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
