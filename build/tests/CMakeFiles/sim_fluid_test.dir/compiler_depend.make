# Empty compiler generated dependencies file for sim_fluid_test.
# This may be replaced when dependencies are built.
