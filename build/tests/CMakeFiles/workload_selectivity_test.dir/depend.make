# Empty dependencies file for workload_selectivity_test.
# This may be replaced when dependencies are built.
