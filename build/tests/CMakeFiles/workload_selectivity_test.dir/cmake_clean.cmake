file(REMOVE_RECURSE
  "CMakeFiles/workload_selectivity_test.dir/workload_selectivity_test.cc.o"
  "CMakeFiles/workload_selectivity_test.dir/workload_selectivity_test.cc.o.d"
  "workload_selectivity_test"
  "workload_selectivity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_selectivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
