
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/placement_parallelism_test.cc" "tests/CMakeFiles/placement_parallelism_test.dir/placement_parallelism_test.cc.o" "gcc" "tests/CMakeFiles/placement_parallelism_test.dir/placement_parallelism_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/costream_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/costream_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/costream_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/costream_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/costream_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/costream_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsps/CMakeFiles/costream_dsps.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/costream_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
