file(REMOVE_RECURSE
  "CMakeFiles/placement_parallelism_test.dir/placement_parallelism_test.cc.o"
  "CMakeFiles/placement_parallelism_test.dir/placement_parallelism_test.cc.o.d"
  "placement_parallelism_test"
  "placement_parallelism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_parallelism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
