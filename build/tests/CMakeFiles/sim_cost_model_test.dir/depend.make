# Empty dependencies file for sim_cost_model_test.
# This may be replaced when dependencies are built.
