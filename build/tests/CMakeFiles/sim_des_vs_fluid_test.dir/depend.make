# Empty dependencies file for sim_des_vs_fluid_test.
# This may be replaced when dependencies are built.
