file(REMOVE_RECURSE
  "CMakeFiles/sim_des_vs_fluid_test.dir/sim_des_vs_fluid_test.cc.o"
  "CMakeFiles/sim_des_vs_fluid_test.dir/sim_des_vs_fluid_test.cc.o.d"
  "sim_des_vs_fluid_test"
  "sim_des_vs_fluid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_des_vs_fluid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
