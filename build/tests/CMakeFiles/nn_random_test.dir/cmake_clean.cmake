file(REMOVE_RECURSE
  "CMakeFiles/nn_random_test.dir/nn_random_test.cc.o"
  "CMakeFiles/nn_random_test.dir/nn_random_test.cc.o.d"
  "nn_random_test"
  "nn_random_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
