# Empty dependencies file for nn_random_test.
# This may be replaced when dependencies are built.
