file(REMOVE_RECURSE
  "CMakeFiles/core_featurizer_test.dir/core_featurizer_test.cc.o"
  "CMakeFiles/core_featurizer_test.dir/core_featurizer_test.cc.o.d"
  "core_featurizer_test"
  "core_featurizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_featurizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
