# Empty compiler generated dependencies file for core_featurizer_test.
# This may be replaced when dependencies are built.
