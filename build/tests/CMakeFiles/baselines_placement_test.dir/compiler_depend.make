# Empty compiler generated dependencies file for baselines_placement_test.
# This may be replaced when dependencies are built.
