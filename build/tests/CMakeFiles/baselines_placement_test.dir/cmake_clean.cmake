file(REMOVE_RECURSE
  "CMakeFiles/baselines_placement_test.dir/baselines_placement_test.cc.o"
  "CMakeFiles/baselines_placement_test.dir/baselines_placement_test.cc.o.d"
  "baselines_placement_test"
  "baselines_placement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
