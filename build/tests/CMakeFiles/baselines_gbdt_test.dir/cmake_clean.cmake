file(REMOVE_RECURSE
  "CMakeFiles/baselines_gbdt_test.dir/baselines_gbdt_test.cc.o"
  "CMakeFiles/baselines_gbdt_test.dir/baselines_gbdt_test.cc.o.d"
  "baselines_gbdt_test"
  "baselines_gbdt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_gbdt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
