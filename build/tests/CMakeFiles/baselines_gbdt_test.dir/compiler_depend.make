# Empty compiler generated dependencies file for baselines_gbdt_test.
# This may be replaced when dependencies are built.
