file(REMOVE_RECURSE
  "CMakeFiles/workload_trace_io_test.dir/workload_trace_io_test.cc.o"
  "CMakeFiles/workload_trace_io_test.dir/workload_trace_io_test.cc.o.d"
  "workload_trace_io_test"
  "workload_trace_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_trace_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
