file(REMOVE_RECURSE
  "CMakeFiles/dsps_query_builder_test.dir/dsps_query_builder_test.cc.o"
  "CMakeFiles/dsps_query_builder_test.dir/dsps_query_builder_test.cc.o.d"
  "dsps_query_builder_test"
  "dsps_query_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsps_query_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
