file(REMOVE_RECURSE
  "CMakeFiles/dsps_graphviz_test.dir/dsps_graphviz_test.cc.o"
  "CMakeFiles/dsps_graphviz_test.dir/dsps_graphviz_test.cc.o.d"
  "dsps_graphviz_test"
  "dsps_graphviz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsps_graphviz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
