file(REMOVE_RECURSE
  "../examples/train_cost_model"
  "../examples/train_cost_model.pdb"
  "CMakeFiles/train_cost_model.dir/train_cost_model.cpp.o"
  "CMakeFiles/train_cost_model.dir/train_cost_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
