file(REMOVE_RECURSE
  "../examples/multi_tenant_placement"
  "../examples/multi_tenant_placement.pdb"
  "CMakeFiles/multi_tenant_placement.dir/multi_tenant_placement.cpp.o"
  "CMakeFiles/multi_tenant_placement.dir/multi_tenant_placement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
