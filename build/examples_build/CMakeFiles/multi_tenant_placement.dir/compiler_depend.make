# Empty compiler generated dependencies file for multi_tenant_placement.
# This may be replaced when dependencies are built.
