file(REMOVE_RECURSE
  "../examples/smart_factory_placement"
  "../examples/smart_factory_placement.pdb"
  "CMakeFiles/smart_factory_placement.dir/smart_factory_placement.cpp.o"
  "CMakeFiles/smart_factory_placement.dir/smart_factory_placement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_factory_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
