# Empty dependencies file for smart_factory_placement.
# This may be replaced when dependencies are built.
