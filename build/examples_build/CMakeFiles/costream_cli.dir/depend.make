# Empty dependencies file for costream_cli.
# This may be replaced when dependencies are built.
