file(REMOVE_RECURSE
  "../examples/costream_cli"
  "../examples/costream_cli.pdb"
  "CMakeFiles/costream_cli.dir/costream_cli.cpp.o"
  "CMakeFiles/costream_cli.dir/costream_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costream_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
