file(REMOVE_RECURSE
  "../examples/compare_simulators"
  "../examples/compare_simulators.pdb"
  "CMakeFiles/compare_simulators.dir/compare_simulators.cpp.o"
  "CMakeFiles/compare_simulators.dir/compare_simulators.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_simulators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
