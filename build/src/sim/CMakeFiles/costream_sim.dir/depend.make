# Empty dependencies file for costream_sim.
# This may be replaced when dependencies are built.
