file(REMOVE_RECURSE
  "libcostream_sim.a"
)
