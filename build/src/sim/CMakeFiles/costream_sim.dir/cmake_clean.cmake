file(REMOVE_RECURSE
  "CMakeFiles/costream_sim.dir/cost_model.cc.o"
  "CMakeFiles/costream_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/costream_sim.dir/data_generator.cc.o"
  "CMakeFiles/costream_sim.dir/data_generator.cc.o.d"
  "CMakeFiles/costream_sim.dir/des.cc.o"
  "CMakeFiles/costream_sim.dir/des.cc.o.d"
  "CMakeFiles/costream_sim.dir/fluid_engine.cc.o"
  "CMakeFiles/costream_sim.dir/fluid_engine.cc.o.d"
  "CMakeFiles/costream_sim.dir/hardware.cc.o"
  "CMakeFiles/costream_sim.dir/hardware.cc.o.d"
  "libcostream_sim.a"
  "libcostream_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costream_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
