# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("nn")
subdirs("dsps")
subdirs("sim")
subdirs("eval")
subdirs("core")
subdirs("placement")
subdirs("baselines")
subdirs("workload")
