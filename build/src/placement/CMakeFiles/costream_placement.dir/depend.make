# Empty dependencies file for costream_placement.
# This may be replaced when dependencies are built.
