file(REMOVE_RECURSE
  "CMakeFiles/costream_placement.dir/enumeration.cc.o"
  "CMakeFiles/costream_placement.dir/enumeration.cc.o.d"
  "CMakeFiles/costream_placement.dir/multi_query.cc.o"
  "CMakeFiles/costream_placement.dir/multi_query.cc.o.d"
  "CMakeFiles/costream_placement.dir/optimizer.cc.o"
  "CMakeFiles/costream_placement.dir/optimizer.cc.o.d"
  "CMakeFiles/costream_placement.dir/parallelism_tuner.cc.o"
  "CMakeFiles/costream_placement.dir/parallelism_tuner.cc.o.d"
  "libcostream_placement.a"
  "libcostream_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costream_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
