file(REMOVE_RECURSE
  "libcostream_placement.a"
)
