file(REMOVE_RECURSE
  "CMakeFiles/costream_eval.dir/metrics.cc.o"
  "CMakeFiles/costream_eval.dir/metrics.cc.o.d"
  "CMakeFiles/costream_eval.dir/table.cc.o"
  "CMakeFiles/costream_eval.dir/table.cc.o.d"
  "libcostream_eval.a"
  "libcostream_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costream_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
