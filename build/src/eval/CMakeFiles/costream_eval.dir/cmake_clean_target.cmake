file(REMOVE_RECURSE
  "libcostream_eval.a"
)
