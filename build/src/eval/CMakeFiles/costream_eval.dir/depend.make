# Empty dependencies file for costream_eval.
# This may be replaced when dependencies are built.
