file(REMOVE_RECURSE
  "CMakeFiles/costream_workload.dir/benchmarks.cc.o"
  "CMakeFiles/costream_workload.dir/benchmarks.cc.o.d"
  "CMakeFiles/costream_workload.dir/corpus.cc.o"
  "CMakeFiles/costream_workload.dir/corpus.cc.o.d"
  "CMakeFiles/costream_workload.dir/generator.cc.o"
  "CMakeFiles/costream_workload.dir/generator.cc.o.d"
  "CMakeFiles/costream_workload.dir/grids.cc.o"
  "CMakeFiles/costream_workload.dir/grids.cc.o.d"
  "CMakeFiles/costream_workload.dir/selectivity.cc.o"
  "CMakeFiles/costream_workload.dir/selectivity.cc.o.d"
  "CMakeFiles/costream_workload.dir/trace_io.cc.o"
  "CMakeFiles/costream_workload.dir/trace_io.cc.o.d"
  "libcostream_workload.a"
  "libcostream_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costream_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
