file(REMOVE_RECURSE
  "libcostream_workload.a"
)
