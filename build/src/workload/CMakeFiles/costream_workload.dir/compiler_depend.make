# Empty compiler generated dependencies file for costream_workload.
# This may be replaced when dependencies are built.
