# Empty dependencies file for costream_core.
# This may be replaced when dependencies are built.
