
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ensemble.cc" "src/core/CMakeFiles/costream_core.dir/ensemble.cc.o" "gcc" "src/core/CMakeFiles/costream_core.dir/ensemble.cc.o.d"
  "/root/repo/src/core/featurizer.cc" "src/core/CMakeFiles/costream_core.dir/featurizer.cc.o" "gcc" "src/core/CMakeFiles/costream_core.dir/featurizer.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/costream_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/costream_core.dir/model.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/costream_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/costream_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/costream_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/dsps/CMakeFiles/costream_dsps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/costream_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/costream_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
