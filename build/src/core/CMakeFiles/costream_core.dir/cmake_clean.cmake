file(REMOVE_RECURSE
  "CMakeFiles/costream_core.dir/ensemble.cc.o"
  "CMakeFiles/costream_core.dir/ensemble.cc.o.d"
  "CMakeFiles/costream_core.dir/featurizer.cc.o"
  "CMakeFiles/costream_core.dir/featurizer.cc.o.d"
  "CMakeFiles/costream_core.dir/model.cc.o"
  "CMakeFiles/costream_core.dir/model.cc.o.d"
  "CMakeFiles/costream_core.dir/trainer.cc.o"
  "CMakeFiles/costream_core.dir/trainer.cc.o.d"
  "libcostream_core.a"
  "libcostream_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costream_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
