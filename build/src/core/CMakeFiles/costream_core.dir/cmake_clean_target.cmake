file(REMOVE_RECURSE
  "libcostream_core.a"
)
