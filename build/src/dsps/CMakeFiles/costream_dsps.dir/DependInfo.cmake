
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsps/graphviz.cc" "src/dsps/CMakeFiles/costream_dsps.dir/graphviz.cc.o" "gcc" "src/dsps/CMakeFiles/costream_dsps.dir/graphviz.cc.o.d"
  "/root/repo/src/dsps/operator_descriptor.cc" "src/dsps/CMakeFiles/costream_dsps.dir/operator_descriptor.cc.o" "gcc" "src/dsps/CMakeFiles/costream_dsps.dir/operator_descriptor.cc.o.d"
  "/root/repo/src/dsps/query_builder.cc" "src/dsps/CMakeFiles/costream_dsps.dir/query_builder.cc.o" "gcc" "src/dsps/CMakeFiles/costream_dsps.dir/query_builder.cc.o.d"
  "/root/repo/src/dsps/query_graph.cc" "src/dsps/CMakeFiles/costream_dsps.dir/query_graph.cc.o" "gcc" "src/dsps/CMakeFiles/costream_dsps.dir/query_graph.cc.o.d"
  "/root/repo/src/dsps/types.cc" "src/dsps/CMakeFiles/costream_dsps.dir/types.cc.o" "gcc" "src/dsps/CMakeFiles/costream_dsps.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
