file(REMOVE_RECURSE
  "libcostream_dsps.a"
)
