file(REMOVE_RECURSE
  "CMakeFiles/costream_dsps.dir/graphviz.cc.o"
  "CMakeFiles/costream_dsps.dir/graphviz.cc.o.d"
  "CMakeFiles/costream_dsps.dir/operator_descriptor.cc.o"
  "CMakeFiles/costream_dsps.dir/operator_descriptor.cc.o.d"
  "CMakeFiles/costream_dsps.dir/query_builder.cc.o"
  "CMakeFiles/costream_dsps.dir/query_builder.cc.o.d"
  "CMakeFiles/costream_dsps.dir/query_graph.cc.o"
  "CMakeFiles/costream_dsps.dir/query_graph.cc.o.d"
  "CMakeFiles/costream_dsps.dir/types.cc.o"
  "CMakeFiles/costream_dsps.dir/types.cc.o.d"
  "libcostream_dsps.a"
  "libcostream_dsps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costream_dsps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
