# Empty dependencies file for costream_dsps.
# This may be replaced when dependencies are built.
