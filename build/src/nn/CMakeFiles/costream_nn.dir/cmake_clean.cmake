file(REMOVE_RECURSE
  "CMakeFiles/costream_nn.dir/autograd.cc.o"
  "CMakeFiles/costream_nn.dir/autograd.cc.o.d"
  "CMakeFiles/costream_nn.dir/layers.cc.o"
  "CMakeFiles/costream_nn.dir/layers.cc.o.d"
  "CMakeFiles/costream_nn.dir/serialize.cc.o"
  "CMakeFiles/costream_nn.dir/serialize.cc.o.d"
  "libcostream_nn.a"
  "libcostream_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costream_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
