# Empty compiler generated dependencies file for costream_nn.
# This may be replaced when dependencies are built.
