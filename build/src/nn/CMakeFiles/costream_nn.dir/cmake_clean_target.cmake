file(REMOVE_RECURSE
  "libcostream_nn.a"
)
