file(REMOVE_RECURSE
  "libcostream_baselines.a"
)
