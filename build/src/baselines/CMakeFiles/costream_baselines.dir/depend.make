# Empty dependencies file for costream_baselines.
# This may be replaced when dependencies are built.
