
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/flat_vector.cc" "src/baselines/CMakeFiles/costream_baselines.dir/flat_vector.cc.o" "gcc" "src/baselines/CMakeFiles/costream_baselines.dir/flat_vector.cc.o.d"
  "/root/repo/src/baselines/gbdt.cc" "src/baselines/CMakeFiles/costream_baselines.dir/gbdt.cc.o" "gcc" "src/baselines/CMakeFiles/costream_baselines.dir/gbdt.cc.o.d"
  "/root/repo/src/baselines/heuristic.cc" "src/baselines/CMakeFiles/costream_baselines.dir/heuristic.cc.o" "gcc" "src/baselines/CMakeFiles/costream_baselines.dir/heuristic.cc.o.d"
  "/root/repo/src/baselines/monitoring.cc" "src/baselines/CMakeFiles/costream_baselines.dir/monitoring.cc.o" "gcc" "src/baselines/CMakeFiles/costream_baselines.dir/monitoring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/costream_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dsps/CMakeFiles/costream_dsps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/costream_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/costream_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/costream_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
