file(REMOVE_RECURSE
  "CMakeFiles/costream_baselines.dir/flat_vector.cc.o"
  "CMakeFiles/costream_baselines.dir/flat_vector.cc.o.d"
  "CMakeFiles/costream_baselines.dir/gbdt.cc.o"
  "CMakeFiles/costream_baselines.dir/gbdt.cc.o.d"
  "CMakeFiles/costream_baselines.dir/heuristic.cc.o"
  "CMakeFiles/costream_baselines.dir/heuristic.cc.o.d"
  "CMakeFiles/costream_baselines.dir/monitoring.cc.o"
  "CMakeFiles/costream_baselines.dir/monitoring.cc.o.d"
  "libcostream_baselines.a"
  "libcostream_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costream_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
